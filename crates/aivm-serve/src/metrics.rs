//! Runtime observability: counters and log-bucketed histograms.
//!
//! The runtime keeps everything here as plain integers/floats updated on
//! the scheduler thread; [`MetricsSnapshot`] is the cheap copy handed to
//! callers (the server answers metrics requests with one).

/// A log₂-bucketed histogram of `u64` samples (nanoseconds for
/// latencies, milli-units for model costs). Bucket `i` covers values
/// with bit-length `i`, so quantiles are accurate to within 2×, which is
/// plenty for p99 tracking without allocating per sample.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram's samples into this one. Because buckets
    /// are fixed log₂ ranges, the merge is exact: quantiles of the
    /// merged histogram equal those of recording every sample into one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q ∈ [0, 1]`); 0 when empty. The true value is within a factor
    /// of 2 below the returned bound (exact for the maximum).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i); report the
                // upper bound, capped by the observed maximum.
                let bound = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Condenses the histogram into a snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            mean: if self.count == 0 {
                0.0
            } else {
                self.sum as f64 / self.count as f64
            },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// Summary statistics of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean of all samples.
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

/// A point-in-time copy of the runtime's counters.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// DML events ingested into pending delta tables.
    pub events_ingested: u64,
    /// Scheduler ticks executed (including idle ones).
    pub ticks: u64,
    /// Non-empty flush batches executed per base table.
    pub flushes_per_table: Vec<u64>,
    /// Modifications flushed per base table.
    pub mods_flushed_per_table: Vec<u64>,
    /// Flush invocations with a non-zero action (policy ticks and forced
    /// fresh-read flushes).
    pub flush_count: u64,
    /// Total model cost charged across all flushes.
    pub total_flush_cost: f64,
    /// Largest single-flush model cost observed.
    pub max_flush_cost: f64,
    /// Per-flush model cost distribution, in milli-cost-units.
    pub flush_cost_millis: HistogramSnapshot,
    /// Fresh (flush-then-read) reads served.
    pub fresh_reads: u64,
    /// Stale (current materialized `V`) reads served through the
    /// scheduler (model backend, or before the first snapshot).
    pub stale_reads: u64,
    /// Stale reads served wait-free from a published flush-boundary
    /// snapshot, bypassing the scheduler entirely (threaded server
    /// with an engine backend).
    pub snapshot_reads: u64,
    /// End-to-end fresh-read refresh latency in nanoseconds (queue wait
    /// plus flush, when served through the threaded server).
    pub refresh_latency_ns: HistogramSnapshot,
    /// Ingest-queue depth at snapshot time (threaded server only).
    pub queue_depth: usize,
    /// High-water mark of the ingest-queue depth (threaded server only).
    pub max_queue_depth: usize,
    /// Times the paper's validity invariant was broken: a post-action
    /// state left full, or a fresh read whose flush cost exceeded `C`.
    /// Must be zero for a correct policy; the CI smoke gate fails
    /// otherwise.
    pub constraint_violations: u64,
    /// Times the flush policy was demoted to `NaiveFlush` (a panic,
    /// an overdrawing decision, or an injected flush error). At most 1:
    /// demotion is permanent.
    pub policy_demotions: u64,
    /// Flush attempts that failed with an injected transient error.
    pub flush_errors: u64,
    /// Ticks whose measured flush cost exceeded the estimate by more
    /// than the drift ratio.
    pub cost_overruns: u64,
    /// Cost-model recalibrations triggered by sustained overruns.
    pub recalibrations: u64,
    /// Times this runtime's state was rebuilt from WAL + checkpoint.
    pub recoveries: u64,
    /// WAL append failures (counts-only runtimes surface them here
    /// instead of erroring the ingest path).
    pub wal_errors: u64,
    /// Records appended to the attached WAL (0 without one).
    pub wal_records: u64,
    /// WAL records appended but not yet fsynced — the window of events
    /// a crash could lose. Bounded by the writer's sync interval.
    pub wal_fsync_lag: u64,
    /// The attached WAL writer's fsync interval (0 without a WAL;
    /// 1 = every record, `u64::MAX` = never).
    pub wal_sync_every: u64,
    /// True once the runtime has entered graceful degradation: the
    /// flush policy was permanently demoted to `NaiveFlush` after a
    /// panic, an overdrawing decision, or an injected flush error.
    pub degraded: bool,
    /// Sheddable ingest messages dropped by the overloaded queue
    /// (threaded server only).
    pub shed_events: u64,
    /// Ingest messages the scheduler rejected with an error (threaded
    /// server only; e.g. DML for an unknown table).
    pub ingest_errors: u64,
    /// The most recent scheduler-loop error, if any (threaded server
    /// only). A non-`None` value means the scheduler hit a hard engine
    /// error and stopped maintaining.
    pub last_error: Option<String>,
    /// The refresh budget `C` currently in force (a shard coordinator
    /// may rebalance it mid-run).
    pub budget: f64,
    /// Times the budget was changed mid-run by
    /// [`MaintenanceRuntime::set_budget`](crate::MaintenanceRuntime::set_budget).
    pub budget_rebalances: u64,
    /// Currently heavy join keys across the view's trackers (gauge;
    /// zero when heavy-light partitioning is disabled).
    pub heavy_keys: u64,
    /// Cumulative heavy-light reclassification events (promotions +
    /// demotions).
    pub heavy_reclassifications: u64,
    /// Delta rows propagated through a heavy key's materialized partial.
    pub heavy_hits: u64,
    /// Delta rows propagated through the classic compensated index join
    /// at join steps where a heavy-light split was active.
    pub light_hits: u64,
}

/// Mutable counter state owned by the runtime.
#[derive(Clone, Debug)]
pub(crate) struct Metrics {
    pub events_ingested: u64,
    pub ticks: u64,
    pub flushes_per_table: Vec<u64>,
    pub mods_flushed_per_table: Vec<u64>,
    pub flush_count: u64,
    pub total_flush_cost: f64,
    pub max_flush_cost: f64,
    pub flush_cost_millis: LatencyHistogram,
    pub fresh_reads: u64,
    pub stale_reads: u64,
    pub refresh_latency_ns: LatencyHistogram,
    pub constraint_violations: u64,
    pub policy_demotions: u64,
    pub flush_errors: u64,
    pub cost_overruns: u64,
    pub recalibrations: u64,
    pub recoveries: u64,
    pub wal_errors: u64,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Self {
        Metrics {
            events_ingested: 0,
            ticks: 0,
            flushes_per_table: vec![0; n],
            mods_flushed_per_table: vec![0; n],
            flush_count: 0,
            total_flush_cost: 0.0,
            max_flush_cost: 0.0,
            flush_cost_millis: LatencyHistogram::new(),
            fresh_reads: 0,
            stale_reads: 0,
            refresh_latency_ns: LatencyHistogram::new(),
            constraint_violations: 0,
            policy_demotions: 0,
            flush_errors: 0,
            cost_overruns: 0,
            recalibrations: 0,
            recoveries: 0,
            wal_errors: 0,
        }
    }

    /// Records one executed flush action (model cost and per-table
    /// counts); zero actions are not flushes.
    pub(crate) fn record_flush(&mut self, action: &aivm_core::Counts, cost: f64) {
        if action.is_zero() {
            return;
        }
        self.flush_count += 1;
        self.total_flush_cost += cost;
        self.max_flush_cost = self.max_flush_cost.max(cost);
        self.flush_cost_millis
            .record((cost * 1000.0).round() as u64);
        for i in 0..action.len() {
            if action[i] > 0 {
                self.flushes_per_table[i] += 1;
                self.mods_flushed_per_table[i] += action[i];
            }
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            events_ingested: self.events_ingested,
            ticks: self.ticks,
            flushes_per_table: self.flushes_per_table.clone(),
            mods_flushed_per_table: self.mods_flushed_per_table.clone(),
            flush_count: self.flush_count,
            total_flush_cost: self.total_flush_cost,
            max_flush_cost: self.max_flush_cost,
            flush_cost_millis: self.flush_cost_millis.snapshot(),
            fresh_reads: self.fresh_reads,
            stale_reads: self.stale_reads,
            snapshot_reads: 0,
            refresh_latency_ns: self.refresh_latency_ns.snapshot(),
            queue_depth: 0,
            max_queue_depth: 0,
            constraint_violations: self.constraint_violations,
            policy_demotions: self.policy_demotions,
            flush_errors: self.flush_errors,
            cost_overruns: self.cost_overruns,
            recalibrations: self.recalibrations,
            recoveries: self.recoveries,
            wal_errors: self.wal_errors,
            wal_records: 0,
            wal_fsync_lag: 0,
            wal_sync_every: 0,
            degraded: false,
            shed_events: 0,
            ingest_errors: 0,
            last_error: None,
            budget: 0.0,
            budget_rebalances: 0,
            heavy_keys: 0,
            heavy_reclassifications: 0,
            heavy_hits: 0,
            light_hits: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let s = h.snapshot();
        assert!(s.p50 >= 500 / 2 && s.p50 <= 1023, "p50 = {}", s.p50);
        assert!(s.p99 >= 990 / 2, "p99 = {}", s.p99);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn zero_sample_is_representable() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let (mut a, mut b, mut both) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for v in [1u64, 7, 130, 9000, 3] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 65_000, 12] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn flush_recording_skips_zero_actions() {
        let mut m = Metrics::new(2);
        m.record_flush(&aivm_core::Counts::zero(2), 0.0);
        assert_eq!(m.flush_count, 0);
        m.record_flush(&aivm_core::Counts::from_slice(&[3, 0]), 2.5);
        assert_eq!(m.flush_count, 1);
        assert_eq!(m.flushes_per_table, vec![1, 0]);
        assert_eq!(m.mods_flushed_per_table, vec![3, 0]);
        assert_eq!(m.snapshot().flush_cost_millis.count, 1);
    }
}
