//! `aivm-serve` — a live streaming maintenance runtime.
//!
//! Everything else in this workspace replays pre-generated traces; this
//! crate is the *running system* the paper's ONLINE algorithm (§4.3) is
//! designed for. It layers three pieces on top of the engine and solver
//! crates:
//!
//! 1. **Ingest** — DML events from concurrent producers flow through a
//!    bounded MPSC queue ([`server`]) into per-table pending delta
//!    tables (the paper's state vector `s`).
//! 2. **Scheduling** — a scheduler loop ([`runtime`]) closes an arrival
//!    window per tick and consults a pluggable [`FlushPolicy`]
//!    ([`NaiveFlush`], [`OnlineFlush`], [`PlannedFlush`]) for which
//!    pending modifications to flush, enforcing the refresh
//!    response-time constraint `C`.
//! 3. **Reads** — views are served in [`ReadMode::Stale`] (the current
//!    materialized `V`, zero cost) or [`ReadMode::Fresh`]
//!    (flush-then-read). Because every policy action must leave the
//!    state non-full, a fresh read always costs ≤ `C` — the paper's
//!    validity invariant, checked at runtime and surfaced as a
//!    constraint-violation counter in the [`MetricsSnapshot`].
//!
//! Every live run can record a [`Trace`] of its per-step arrivals and
//! actions; `aivm-sim`'s `replay` module re-executes recorded traces
//! deterministically, so live behaviour is auditable offline and the
//! `Planned` policy's schedule can be verified to reproduce bit-for-bit.
//!
//! Since PR 3 the runtime is also *durable* and *fault-tolerant*: every
//! state-changing event can be appended to a write-ahead log ([`wal`]),
//! periodic [`Checkpoint`]s bound replay time, and
//! [`MaintenanceRuntime::recover`] rebuilds the exact state of an
//! uncrashed run from log + checkpoint. Failures short of a crash
//! degrade instead of aborting: a panicking or erroring policy is
//! demoted to [`NaiveFlush`], drifting cost models are recalibrated,
//! and overload can shed oldest-first past a high-water mark
//! ([`queue`]) — all counted in [`MetricsSnapshot`]. A deterministic
//! [`FaultPlan`] ([`fault`]) injects each failure mode on demand; the
//! `repro chaos` harness uses it to prove crash/recover equivalence at
//! every event index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod multi;
pub mod policy;
pub mod queue;
pub mod runtime;
pub mod server;
pub mod trace;
pub mod wal;

pub use fault::{CostOverrun, FaultPlan};
pub use metrics::{HistogramSnapshot, LatencyHistogram, MetricsSnapshot};
pub use multi::{
    fold_delta, DeltaBatch, FetchOutcome, MultiConfig, MultiMetricsSnapshot, RegistryApplyTicket,
    RegistryHandle, RegistryMetricsTicket, RegistryReadTicket, RegistryRuntime, RegistryServer,
    SubscriptionHub, ViewMetricsSnapshot, APPLY_SHARE, DELTA_RING_CAP,
};
pub use policy::{AsSolverPolicy, FlushPolicy, NaiveFlush, OnlineFlush, PlannedFlush};
pub use queue::TrySendError;
pub use runtime::{MaintenanceRuntime, ReadMode, ReadResult, ServeConfig, TickReport};
pub use server::{
    ApplyTicket, DeadlineError, MetricsTicket, ReadTicket, ServeError, ServeHandle, ServeServer,
    ServerConfig,
};
pub use trace::{Trace, TraceStep};
pub use wal::{
    decode_segment, read_wal, Checkpoint, EngineCheckpoint, FileWal, MemWal, WalReadOutcome,
    WalRecord, WalSegment, WalStorage, WalSyncPolicy, WalTail, WalWriter,
};
