//! A bounded MPSC channel with optional overload shedding.
//!
//! The PR-2 server used `std::sync::mpsc::sync_channel`, whose only
//! overload behaviour is to block the producer. That is the right
//! default — backpressure preserves every event — but it has two
//! failure modes this layer fixes:
//!
//! * **a dead consumer hangs producers**: if the scheduler thread dies
//!   while the queue is full, blocked producers wait forever. Here the
//!   receiver's drop wakes all blocked senders with a disconnect error.
//! * **no load-shedding option**: past a configured high-water mark the
//!   queue can switch from *block* to *drop-oldest-sheddable*,
//!   counting every dropped message. Only messages marked sheddable
//!   (fire-and-forget ingest) are ever dropped; request/reply messages
//!   (reads, metrics) always survive, so callers never hang on a reply
//!   that was shed.
//!
//! Plain `Mutex<VecDeque>` + two `Condvar`s — the same building blocks
//! as `sync_channel`, with the queue state open for inspection
//! (`len`, `shed_count`).
//!
//! ## Weighted admission
//!
//! Capacity is measured in *weight units*, not messages. A message
//! admitted with [`Sender::send_weighted`] or
//! [`Sender::try_send_weighted`] charges its weight (a DML batch
//! charges one unit per modification) against the capacity, so the
//! bound is on outstanding *events*, however they are framed. This is
//! what keeps the maintenance backlog — and with it the cost of any
//! single flush — bounded no matter how ingest is batched on the wire.
//! Control messages (reads, metrics) are admitted with
//! [`Sender::send_control`], which bypasses the capacity check
//! entirely: they are few (at most one in flight per connection), must
//! never be refused for backlog reasons, and a frontend event loop
//! must never block on them.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Sending half of the channel (clonable).
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half of the channel (single consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// The consumer disconnected; the message was not delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError;

/// Why a non-blocking send failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrySendError {
    /// The queue is at capacity (and shedding, if enabled, could not
    /// make room). The message was not enqueued — callers that must not
    /// block (event loops) translate this to an `Overloaded` rejection.
    Full,
    /// The consumer disconnected; the message was not delivered.
    Disconnected,
}

/// Why a receive returned without a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// Every sender disconnected and the queue is drained.
    Disconnected,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    high_water: Option<usize>,
}

struct State<T> {
    /// `(message, sheddable, weight)`.
    buf: VecDeque<(T, bool, usize)>,
    /// Sum of queued weights (what capacity bounds).
    weight: usize,
    senders: usize,
    receiver_alive: bool,
    shed: u64,
}

impl<T> State<T> {
    /// Evicts the oldest sheddable message, crediting its weight.
    /// Returns false when nothing sheddable is queued.
    fn shed_one(&mut self) -> bool {
        let Some(idx) = self.buf.iter().position(|(_, s, _)| *s) else {
            return false;
        };
        let (_, _, w) = self.buf.remove(idx).expect("index from position");
        self.weight -= w;
        // The counter is in weight units (events), matching what the
        // message carried.
        self.shed += w as u64;
        true
    }
}

impl<T> Inner<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A panicking thread cannot leave the queue state inconsistent
        // (every mutation is a single push/pop), so poison is ignored.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Creates a bounded channel of `capacity` messages. With
/// `high_water: Some(h)`, a send that finds `h` or more messages queued
/// sheds the oldest *sheddable* message instead of blocking (the shed
/// count is readable on both halves); with `None` the channel always
/// blocks when full.
pub fn channel<T>(capacity: usize, high_water: Option<usize>) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "queue capacity must be positive");
    if let Some(h) = high_water {
        assert!(
            h > 0 && h <= capacity,
            "high-water mark must be in 1..=capacity"
        );
    }
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            weight: 0,
            senders: 1,
            receiver_alive: true,
            shed: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        high_water,
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Sends a weight-1 message, blocking while the queue is full.
    /// `sheddable` marks the message as droppable under overload — any
    /// send arriving past the high-water mark evicts the oldest queued
    /// *sheddable* message (if one exists) instead of blocking.
    pub fn send(&self, item: T, sheddable: bool) -> Result<(), SendError> {
        self.send_weighted(item, sheddable, 1)
    }

    /// [`Sender::send`] with an explicit weight: the message charges
    /// `weight` units (clamped to `1..=capacity` so one oversized
    /// message can still be admitted into an empty queue) against the
    /// channel's capacity.
    pub fn send_weighted(&self, item: T, sheddable: bool, weight: usize) -> Result<(), SendError> {
        let w = weight.clamp(1, self.inner.capacity);
        let mut st = self.inner.lock();
        loop {
            if !st.receiver_alive {
                return Err(SendError);
            }
            if let Some(h) = self.inner.high_water {
                // Past the high-water mark: shed the oldest sheddable
                // messages to make room.
                while st.weight + w > h && st.shed_one() {}
            }
            if st.weight + w <= self.inner.capacity {
                st.buf.push_back((item, sheddable, w));
                st.weight += w;
                drop(st);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .inner
                .not_full
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Sends a weight-1 message without blocking: a full queue (after
    /// any shedding) is a typed [`TrySendError::Full`] instead of a
    /// wait. Same admission semantics as [`Sender::send`] otherwise.
    pub fn try_send(&self, item: T, sheddable: bool) -> Result<(), TrySendError> {
        self.try_send_weighted(item, sheddable, 1)
    }

    /// [`Sender::try_send`] with an explicit weight (see
    /// [`Sender::send_weighted`]).
    pub fn try_send_weighted(
        &self,
        item: T,
        sheddable: bool,
        weight: usize,
    ) -> Result<(), TrySendError> {
        let w = weight.clamp(1, self.inner.capacity);
        let mut st = self.inner.lock();
        if !st.receiver_alive {
            return Err(TrySendError::Disconnected);
        }
        if let Some(h) = self.inner.high_water {
            while st.weight + w > h && st.shed_one() {}
        }
        if st.weight + w <= self.inner.capacity {
            st.buf.push_back((item, sheddable, w));
            st.weight += w;
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        } else {
            Err(TrySendError::Full)
        }
    }

    /// Sends a control message (request/reply traffic: reads, metrics),
    /// bypassing the capacity check: it occupies no weight, is never
    /// sheddable, and never blocks. The only failure is a dead
    /// consumer. Bounded in practice by one in-flight request per
    /// connection.
    pub fn send_control(&self, item: T) -> Result<(), SendError> {
        let mut st = self.inner.lock();
        if !st.receiver_alive {
            return Err(SendError);
        }
        st.buf.push_back((item, false, 0));
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Queued weight (events, not messages; control messages are free).
    pub fn len(&self) -> usize {
        self.inner.lock().weight
    }

    /// True when nothing is queued (not even control messages).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// Weight units (events) dropped by overload shedding so far.
    pub fn shed_count(&self) -> u64 {
        self.inner.lock().shed
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake a receiver blocked on an empty queue so it can
            // observe the disconnect.
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.lock();
        loop {
            if let Some((item, _, w)) = st.buf.pop_front() {
                st.weight -= w;
                drop(st);
                self.inner.not_full.notify_all();
                return Ok(item);
            }
            if st.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvError::Timeout);
            }
            let (guard, _) = self
                .inner
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Receives without waiting. `Err(Timeout)` doubles as "empty".
    pub fn try_recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.lock();
        if let Some((item, _, w)) = st.buf.pop_front() {
            st.weight -= w;
            drop(st);
            self.inner.not_full.notify_all();
            return Ok(item);
        }
        if st.senders == 0 {
            return Err(RecvError::Disconnected);
        }
        Err(RecvError::Timeout)
    }

    /// Queued weight (events, not messages; control messages are free).
    pub fn len(&self) -> usize {
        self.inner.lock().weight
    }

    /// True when nothing is queued (not even control messages).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().buf.is_empty()
    }

    /// Weight units (events) dropped by overload shedding so far.
    pub fn shed_count(&self) -> u64 {
        self.inner.lock().shed
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.lock();
        st.receiver_alive = false;
        drop(st);
        // Wake every sender blocked on a full queue: the consumer is
        // gone and they must error out instead of hanging.
        self.inner.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = channel(8, None);
        for i in 0..5 {
            tx.send(i, true).unwrap();
        }
        for i in 0..5 {
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(RecvError::Timeout));
    }

    #[test]
    fn blocking_send_resumes_when_drained() {
        let (tx, rx) = channel(2, None);
        tx.send(1, true).unwrap();
        tx.send(2, true).unwrap();
        let t = thread::spawn(move || {
            tx.send(3, true).unwrap(); // blocks until a recv
            tx
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        let tx = t.join().unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 3);
    }

    #[test]
    fn shedding_drops_oldest_sheddable_past_high_water() {
        let (tx, rx) = channel(8, Some(3));
        tx.send("a", true).unwrap();
        tx.send("b", false).unwrap();
        tx.send("c", true).unwrap();
        // Queue is at the high-water mark: this send evicts "a" (the
        // oldest sheddable), not "b" (unsheddable).
        tx.send("d", true).unwrap();
        assert_eq!(tx.shed_count(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "b");
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "c");
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "d");
        assert_eq!(rx.shed_count(), 1);
    }

    #[test]
    fn unsheddable_messages_never_dropped() {
        // Capacity must fit every unsheddable message, else the sender
        // (correctly) blocks rather than drop one.
        let (tx, rx) = channel(8, Some(2));
        for i in 0..10 {
            tx.send(i, i % 2 == 0).unwrap();
        }
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        // All odd (unsheddable) messages survived.
        for odd in [1, 3, 5, 7, 9] {
            assert!(got.contains(&odd), "{odd} was shed: {got:?}");
        }
        assert_eq!(tx.shed_count(), 10 - got.len() as u64);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel(2, None);
        tx.try_send(1, true).unwrap();
        tx.try_send(2, true).unwrap();
        assert_eq!(tx.try_send(3, true), Err(TrySendError::Full));
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 1);
        tx.try_send(3, true).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4, true), Err(TrySendError::Disconnected));
    }

    #[test]
    fn try_send_sheds_past_high_water_like_send() {
        let (tx, rx) = channel(4, Some(2));
        tx.try_send("a", true).unwrap();
        tx.try_send("b", true).unwrap();
        // At the mark: the oldest sheddable is evicted, the new message
        // lands.
        tx.try_send("c", true).unwrap();
        assert_eq!(tx.shed_count(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "b");
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "c");
    }

    #[test]
    fn dead_receiver_unblocks_full_senders() {
        let (tx, rx) = channel(1, None);
        tx.send(0, true).unwrap();
        let t = thread::spawn(move || tx.send(1, true));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(t.join().unwrap(), Err(SendError));
    }

    #[test]
    fn receiver_sees_disconnect_after_drain() {
        let (tx, rx) = channel(4, None);
        tx.send(7, true).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
    }

    #[test]
    fn concurrent_producers_deliver_everything_without_shedding() {
        let (tx, rx) = channel(64, None);
        let mut handles = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 1000 + i, true).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got = 0;
        while rx.recv_timeout(Duration::from_secs(5)).is_ok() {
            got += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, 1000);
        assert_eq!(rx.shed_count(), 0);
    }
}
