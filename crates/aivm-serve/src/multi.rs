//! Multi-view serving: one scheduler over a [`ViewRegistry`], with
//! seq-tagged delta publication for push subscriptions.
//!
//! [`RegistryRuntime`] generalizes [`MaintenanceRuntime`] from one view
//! to a registry of N views over shared base tables. The paper's
//! knapsack stays intact — only the axis changes: instead of one cost
//! function per base table, the policy sees one per *(sharing group ×
//! table)* **cell** of the registry's flattened scheduling axis, so a
//! single asymmetric budget `C` drives "which view × which table to
//! flush". A cell's cost function is the per-table model scaled by
//! `1 + APPLY_SHARE·(m − 1)` for a group of `m` views: propagation runs
//! once per group (the sharing win), but every member still pays its
//! own apply/projection share.
//!
//! ## Delta publication
//!
//! Every flush boundary publishes, per touched view, a [`DeltaBatch`]:
//! the signed row difference between consecutive snapshots, tagged with
//! the snapshot's `seq` and content checksum. Batches land in the
//! [`SubscriptionHub`] — a bounded per-view ring the network layer
//! reads when pushing `ViewDelta` frames to subscribers. Because view
//! snapshot `seq`s increment by exactly one per flush, a subscriber
//! holding `seq = s` resumes with no gap and no duplicate by asking for
//! `s + 1`; when the ring has already evicted that seq (a slow or
//! long-disconnected subscriber), [`SubscriptionHub::fetch`] degrades
//! to a snapshot resync instead of stalling the flush path or queueing
//! without bound.
//!
//! ## Durability
//!
//! The WAL story is the single-view one with a view axis: `Dml` records
//! carry the *registry-global* table index, `Tick` records replay the
//! (deterministic) policy, and per-view fresh reads log
//! [`WalRecord::ForcedView`]. Recovery is a single deterministic replay
//! from the genesis registry — registry checkpoints are future work, so
//! [`RegistryRuntime::recover`] replays the whole log (bounded in tests
//! and benches; production-scale logs would add a checkpoint exactly
//! like the single-view runtime's).
//!
//! [`RegistryServer`]/[`RegistryHandle`] mirror the single-view
//! [`ServeServer`](crate::server::ServeServer): a bounded weighted MPSC
//! queue in front of a scheduler thread, wait-free stale reads from hub
//! snapshots, poll-style tickets for event-loop frontends, and a
//! poisoned last-error slot on hard failures.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::policy::{FlushPolicy, NaiveFlush};
use crate::queue::{channel, Receiver, RecvError, Sender, TrySendError};
use crate::runtime::{ReadMode, ReadResult};
use crate::server::{DeadlineError, ServeError, ServerConfig};
use crate::wal::{read_wal, WalRecord, WalWriter};
use aivm_core::{fits, total_cost, CostModel, Counts};
use aivm_engine::exec::consolidate;
use aivm_engine::{EngineError, Modification, ViewRegistry, ViewSnapshot, WRow};
use aivm_solver::PolicyContext;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError as MpscTrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Fraction of a table's propagation cost charged per *additional*
/// group member: propagation runs once per group, but each member pays
/// its own apply/projection work on the shared join delta.
pub const APPLY_SHARE: f64 = 0.1;

/// Capacity of each view's delta ring in the [`SubscriptionHub`]. A
/// subscriber more than this many flushes behind is resynced from the
/// snapshot instead of replayed delta-by-delta.
pub const DELTA_RING_CAP: usize = 64;

/// One seq-tagged delta batch published at a flush boundary.
#[derive(Clone, Debug)]
pub struct DeltaBatch {
    /// The registry view this batch belongs to.
    pub view: u32,
    /// The snapshot seq this batch *produces*: folding it into the
    /// state at `seq - 1` yields the state at `seq`.
    pub seq: u64,
    /// Signed row difference (consolidated; weight > 0 added, < 0
    /// removed). Empty when the flush left the view unchanged.
    pub rows: Vec<WRow>,
    /// Content checksum of the post-fold state (the snapshot's
    /// checksum) — subscribers verify their folded state against it.
    pub checksum: u64,
    /// Total pending modifications not yet reflected at publication
    /// (the view's staleness at this flush boundary).
    pub staleness: u64,
}

/// What [`SubscriptionHub::fetch`] found for a subscriber's position.
pub enum FetchOutcome {
    /// The subscriber is at the head: nothing new to push.
    AtHead,
    /// In-ring delta batches starting exactly at the requested seq.
    Deltas(Vec<Arc<DeltaBatch>>),
    /// The requested seq fell off the ring (or is from a different
    /// incarnation): the subscriber must restart from this snapshot.
    Resync(Arc<ViewSnapshot>),
}

struct ViewChannel {
    /// Seq of `batches[0]`; `batches[i].seq == base_seq + i`.
    base_seq: u64,
    batches: VecDeque<Arc<DeltaBatch>>,
    /// The latest published snapshot (resync source).
    snapshot: Arc<ViewSnapshot>,
    /// Delta batches published over this view's lifetime.
    deltas_pushed: u64,
}

/// The handoff point between the scheduler (publisher) and network
/// workers (subscribers): per-view bounded delta rings plus the latest
/// snapshot. All methods are short critical sections — the flush path
/// never blocks on a slow subscriber, and a subscriber that outruns the
/// ring is degraded to a snapshot resync by construction.
pub struct SubscriptionHub {
    channels: Vec<Mutex<ViewChannel>>,
    subscribers: Vec<AtomicU64>,
    sub_lag_max: Vec<AtomicU64>,
    snapshot_reads: AtomicU64,
}

impl SubscriptionHub {
    fn new(snapshots: Vec<Arc<ViewSnapshot>>) -> Self {
        let n = snapshots.len();
        SubscriptionHub {
            channels: snapshots
                .into_iter()
                .map(|snapshot| {
                    Mutex::new(ViewChannel {
                        base_seq: snapshot.seq + 1,
                        batches: VecDeque::new(),
                        snapshot,
                        deltas_pushed: 0,
                    })
                })
                .collect(),
            subscribers: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sub_lag_max: (0..n).map(|_| AtomicU64::new(0)).collect(),
            snapshot_reads: AtomicU64::new(0),
        }
    }

    /// Number of views the hub carries.
    pub fn views(&self) -> usize {
        self.channels.len()
    }

    fn lock(&self, view: usize) -> std::sync::MutexGuard<'_, ViewChannel> {
        self.channels[view]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes one flush boundary (scheduler thread only).
    fn publish(&self, view: usize, batch: DeltaBatch, snapshot: Arc<ViewSnapshot>) {
        let mut ch = self.lock(view);
        let head = ch.base_seq + ch.batches.len() as u64;
        if batch.seq != head {
            // A seq discontinuity (recovery restart): the ring's
            // history no longer chains to this batch. Drop it — every
            // subscriber resyncs.
            ch.batches.clear();
            ch.base_seq = batch.seq;
        }
        ch.batches.push_back(Arc::new(batch));
        while ch.batches.len() > DELTA_RING_CAP {
            ch.batches.pop_front();
            ch.base_seq += 1;
        }
        ch.snapshot = snapshot;
        ch.deltas_pushed += 1;
    }

    /// The latest published snapshot of a view (O(1) `Arc` clone).
    pub fn snapshot(&self, view: usize) -> Arc<ViewSnapshot> {
        Arc::clone(&self.lock(view).snapshot)
    }

    /// [`SubscriptionHub::snapshot`], counted as a served stale read.
    pub fn snapshot_for_read(&self, view: usize) -> Arc<ViewSnapshot> {
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        self.snapshot(view)
    }

    /// Stale reads served straight from hub snapshots so far.
    pub fn snapshot_reads(&self) -> u64 {
        self.snapshot_reads.load(Ordering::Relaxed)
    }

    /// The seq of the latest published batch (the head a subscriber
    /// lags behind); equals the latest snapshot's seq.
    pub fn head_seq(&self, view: usize) -> u64 {
        self.lock(view).snapshot.seq
    }

    /// Collects everything a subscriber at `from_seq` should receive
    /// next (at most `max` batches per call, bounding one push's frame
    /// burst). `from_seq` is the *next* seq the subscriber expects.
    pub fn fetch(&self, view: usize, from_seq: u64, max: usize) -> FetchOutcome {
        let ch = self.lock(view);
        let head = ch.base_seq + ch.batches.len() as u64;
        if from_seq == head {
            return FetchOutcome::AtHead;
        }
        if from_seq < ch.base_seq || from_seq > head {
            // Fell off the ring (slow subscriber) or from a different
            // incarnation (seq ahead of everything we published).
            return FetchOutcome::Resync(Arc::clone(&ch.snapshot));
        }
        let start = (from_seq - ch.base_seq) as usize;
        let end = ch.batches.len().min(start + max.max(1));
        FetchOutcome::Deltas(ch.batches.range(start..end).cloned().collect())
    }

    /// Registers a connected subscriber (network layer bookkeeping).
    pub fn subscriber_opened(&self, view: usize) {
        self.subscribers[view].fetch_add(1, Ordering::Relaxed);
    }

    /// Unregisters a disconnected subscriber.
    pub fn subscriber_closed(&self, view: usize) {
        let prev = self.subscribers[view].fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "subscriber count underflow for view {view}");
    }

    /// Live subscriber count for a view.
    pub fn subscriber_count(&self, view: usize) -> u64 {
        self.subscribers[view].load(Ordering::Relaxed)
    }

    /// Records an observed subscriber lag (seqs behind head); the
    /// per-view maximum is surfaced in metrics.
    pub fn note_lag(&self, view: usize, lag: u64) {
        self.sub_lag_max[view].fetch_max(lag, Ordering::Relaxed);
    }

    /// The largest subscriber lag observed for a view.
    pub fn sub_lag_max(&self, view: usize) -> u64 {
        self.sub_lag_max[view].load(Ordering::Relaxed)
    }

    /// Delta batches published for a view over its lifetime.
    pub fn deltas_pushed(&self, view: usize) -> u64 {
        self.lock(view).deltas_pushed
    }
}

/// Folds a delta batch into a subscriber's local state (consolidated
/// weighted rows). The inverse of the publisher's snapshot diff:
/// `fold(state@seq-1, batch@seq) = state@seq`. Subscribers verify the
/// result against [`DeltaBatch::checksum`] with
/// [`aivm_engine::rows_checksum`].
pub fn fold_delta(state: Vec<WRow>, batch: &DeltaBatch) -> Vec<WRow> {
    if batch.rows.is_empty() {
        return state;
    }
    let mut rows = state;
    rows.extend(batch.rows.iter().cloned());
    consolidate(rows)
}

/// Per-view counters in a [`MultiMetricsSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct ViewMetricsSnapshot {
    /// Registry view id.
    pub view: u32,
    /// Sharing-group index.
    pub group: u32,
    /// Flushes this view has closed (its snapshot seq head).
    pub flushes: u64,
    /// Pending modifications per base table of the view — the per-view
    /// staleness vector.
    pub staleness: Vec<u64>,
    /// Total pending modifications (sum of `staleness`).
    pub pending: u64,
    /// Ticks after which refreshing this view's group would have
    /// exceeded the budget `C` (must stay 0 for a correct policy).
    pub violations: u64,
    /// Delta batches published for this view.
    pub deltas_pushed: u64,
    /// Live push subscribers.
    pub subscribers: u64,
    /// Largest observed subscriber lag (seqs behind head).
    pub sub_lag_max: u64,
}

/// A [`MetricsSnapshot`] with the view axis attached.
#[derive(Clone, Debug, Default)]
pub struct MultiMetricsSnapshot {
    /// Scheduler-global counters. Per-table vectors run over the
    /// registry's flattened (group × table) cell axis.
    pub global: MetricsSnapshot,
    /// Per-view rows, indexed by view id.
    pub views: Vec<ViewMetricsSnapshot>,
    /// Sharing groups in the registry.
    pub groups: u64,
    /// Join propagations actually executed.
    pub propagations: u64,
    /// Propagations saved by sharing (each would have been paid by an
    /// independent runtime).
    pub shared_propagations: u64,
}

/// Configuration of a [`RegistryRuntime`].
#[derive(Clone, Debug)]
pub struct MultiConfig {
    /// Per-base-table cost functions over the runtime's *global* table
    /// axis (distinct tables across all registered views, in first-
    /// appearance order — see [`RegistryRuntime::table_names`]). Cell
    /// costs are derived from these by fan-out scaling.
    pub table_costs: Vec<CostModel>,
    /// The refresh response-time budget `C` (shared across all views).
    pub budget: f64,
    /// Return typed errors on constraint violations instead of only
    /// counting them.
    pub strict: bool,
    /// Worker threads for delta propagation inside flushes.
    pub flush_threads: usize,
}

impl MultiConfig {
    /// A config with strict mode off and serial flushes.
    pub fn new(table_costs: Vec<CostModel>, budget: f64) -> Self {
        MultiConfig {
            table_costs,
            budget,
            strict: false,
            flush_threads: 1,
        }
    }
}

/// The synchronous multi-view maintenance core. See the module docs.
pub struct RegistryRuntime {
    registry: ViewRegistry,
    /// Global ingest axis: distinct table names across all views, in
    /// first-appearance order. `Dml` WAL records and the wire `Submit`
    /// frame address tables by index into this axis.
    table_names: Vec<String>,
    /// Engine table id per global table index.
    table_ids: Vec<aivm_engine::TableId>,
    /// Cells fed by each global table index.
    cell_routes: Vec<Vec<usize>>,
    ctx: PolicyContext,
    policy: Box<dyn FlushPolicy>,
    /// Pending counts over the cell axis (the paper's `s`, view-major).
    pending: Counts,
    window: Counts,
    t: usize,
    strict: bool,
    metrics: Metrics,
    wal: Option<WalWriter>,
    hub: Arc<SubscriptionHub>,
    /// Last snapshot pushed to the hub, per view (diff base).
    published: Vec<Arc<ViewSnapshot>>,
    view_violations: Vec<u64>,
    demoted: bool,
    rebalances: u64,
    recoveries: u64,
}

impl RegistryRuntime {
    /// Wraps a registry (register all views first — the scheduling axis
    /// is fixed at construction). `cfg.table_costs` must have one entry
    /// per distinct base table across the registered views.
    pub fn new(
        cfg: MultiConfig,
        mut policy: Box<dyn FlushPolicy>,
        mut registry: ViewRegistry,
    ) -> Result<Self, EngineError> {
        if registry.view_count() == 0 {
            return Err(EngineError::Maintenance {
                message: "registry runtime needs at least one registered view".into(),
            });
        }
        registry.set_flush_threads(cfg.flush_threads.max(1));
        // Global table axis: first-appearance order across views.
        let mut table_names: Vec<String> = Vec::new();
        for v in 0..registry.view_count() {
            for name in &registry.view(v).def().tables {
                if !table_names.iter().any(|t| t == name) {
                    table_names.push(name.clone());
                }
            }
        }
        if cfg.table_costs.len() != table_names.len() {
            return Err(EngineError::Maintenance {
                message: format!(
                    "cost vector arity {} != {} distinct base tables",
                    cfg.table_costs.len(),
                    table_names.len()
                ),
            });
        }
        let table_ids = table_names
            .iter()
            .map(|t| registry.db().table_id(t))
            .collect::<Result<Vec<_>, _>>()?;
        // Cell axis: costs scaled by fan-out, routes from global tables.
        let cells = registry.cells().to_vec();
        let fanout = registry.cell_fanout();
        let mut cell_costs = Vec::with_capacity(cells.len());
        let mut cell_routes = vec![Vec::new(); table_names.len()];
        for (c, cell) in cells.iter().enumerate() {
            let leader = registry.group_members(cell.group)[0];
            let name = &registry.view(leader).def().tables[cell.table];
            let g = table_names
                .iter()
                .position(|t| t == name)
                .expect("cell table is on the global axis");
            cell_routes[g].push(c);
            let share = 1.0 + APPLY_SHARE * (fanout[c] as f64 - 1.0);
            cell_costs.push(cfg.table_costs[g].scaled(share));
        }
        let ctx = PolicyContext {
            costs: cell_costs,
            budget: cfg.budget,
        };
        policy.reset(&ctx);
        let pending = Counts::from_slice(&registry.cell_counts());
        let n_cells = cells.len();
        let n_views = registry.view_count();
        let snapshots: Vec<Arc<ViewSnapshot>> =
            (0..n_views).map(|v| registry.snapshot(v)).collect();
        Ok(RegistryRuntime {
            hub: Arc::new(SubscriptionHub::new(snapshots.clone())),
            published: snapshots,
            registry,
            table_names,
            table_ids,
            cell_routes,
            ctx,
            policy,
            window: Counts::zero(n_cells),
            pending,
            t: 0,
            strict: cfg.strict,
            metrics: Metrics::new(n_cells),
            wal: None,
            view_violations: vec![0; n_views],
            demoted: false,
            rebalances: 0,
            recoveries: 0,
        })
    }

    /// Rebuilds a registry runtime from a WAL image: constructs the
    /// genesis registry via `make_registry` and deterministically
    /// replays every record. The returned runtime has no WAL attached;
    /// call [`RegistryRuntime::attach_wal`] to resume logging.
    pub fn recover(
        cfg: MultiConfig,
        policy: Box<dyn FlushPolicy>,
        wal_bytes: &[u8],
        make_registry: &dyn Fn() -> Result<ViewRegistry, EngineError>,
    ) -> Result<Self, EngineError> {
        let outcome = read_wal(wal_bytes)?;
        let mut rt = Self::new(cfg, policy, make_registry()?)?;
        for rec in &outcome.records {
            match rec {
                WalRecord::Dml { table, m } => rt.ingest_dml(*table, m.clone())?,
                WalRecord::Tick => {
                    rt.tick()?;
                }
                WalRecord::ForcedView { view } => {
                    rt.forced_refresh_view(*view as usize)?;
                }
                WalRecord::SetBudget { budget } => rt.set_budget(*budget)?,
                WalRecord::Forced | WalRecord::Count { .. } => {
                    return Err(EngineError::Corrupt {
                        context: "wal".into(),
                        offset: 0,
                        message: "single-view record in a registry log".into(),
                    })
                }
            }
        }
        rt.recoveries += 1;
        Ok(rt)
    }

    /// Attaches a write-ahead log; every subsequent state-changing
    /// event is appended to it.
    pub fn attach_wal(&mut self, wal: WalWriter) {
        self.wal = Some(wal);
    }

    /// The wrapped registry (read access for harnesses and benches).
    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// The subscription hub shared with network workers.
    pub fn hub(&self) -> Arc<SubscriptionHub> {
        Arc::clone(&self.hub)
    }

    /// The global ingest axis: distinct base-table names in
    /// first-appearance order. `ingest_dml` indexes into this.
    pub fn table_names(&self) -> &[String] {
        &self.table_names
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.registry.view_count()
    }

    /// Number of cells on the scheduling axis.
    pub fn cell_count(&self) -> usize {
        self.ctx.n()
    }

    /// The current pending-counts state over the cell axis.
    pub fn pending(&self) -> &Counts {
        &self.pending
    }

    /// The refresh budget `C` currently in force.
    pub fn budget(&self) -> f64 {
        self.ctx.budget
    }

    /// The active policy's name (`"naive"` after a demotion).
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Whether the original policy was demoted to [`NaiveFlush`].
    pub fn demoted(&self) -> bool {
        self.demoted
    }

    /// Records appended to the attached WAL (0 when none is attached).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map(|w| w.records()).unwrap_or(0)
    }

    /// Forces durability of the attached WAL (no-op when none).
    pub fn sync_wal(&mut self) -> Result<(), EngineError> {
        match &mut self.wal {
            Some(w) => w.sync(),
            None => Ok(()),
        }
    }

    /// Content checksum of one view.
    pub fn view_checksum(&self, view: usize) -> u64 {
        self.registry.view(view).result_checksum()
    }

    /// Changes the refresh budget `C` mid-run (WAL-logged; bitwise-same
    /// is a no-op) — same semantics as the single-view runtime.
    pub fn set_budget(&mut self, budget: f64) -> Result<(), EngineError> {
        if budget.to_bits() == self.ctx.budget.to_bits() {
            return Ok(());
        }
        if !(budget.is_finite() && budget > 0.0) {
            return Err(EngineError::Maintenance {
                message: format!("refresh budget must be finite and positive, got {budget}"),
            });
        }
        self.ctx.budget = budget;
        self.policy.reset(&self.ctx);
        self.rebalances += 1;
        self.wal_log(WalRecord::SetBudget { budget })?;
        Ok(())
    }

    /// Ingests one DML event for the `table`-th *global* base table:
    /// applies it to the shared database once and enqueues it into
    /// every dependent view's delta table (each dependent cell's
    /// pending count grows by one — the event's maintenance debt is per
    /// group, which is exactly what the cell cost models charge for).
    pub fn ingest_dml(&mut self, table: usize, m: Modification) -> Result<(), EngineError> {
        if table >= self.table_ids.len() {
            return Err(EngineError::Maintenance {
                message: format!(
                    "table index {table} out of range for {} base tables",
                    self.table_ids.len()
                ),
            });
        }
        self.registry.ingest(self.table_ids[table], m.clone())?;
        for &c in &self.cell_routes[table] {
            self.pending[c] += 1;
            self.window[c] += 1;
        }
        self.metrics.events_ingested += 1;
        self.wal_log(WalRecord::Dml { table, m })?;
        Ok(())
    }

    /// Closes the arrival window and runs one scheduler step over the
    /// cell axis: policy decision (guarded — a panicking or overdrawing
    /// policy is demoted to [`NaiveFlush`]), shared flush, validity
    /// check, per-view violation accounting, delta publication.
    pub fn tick(&mut self) -> Result<crate::runtime::TickReport, EngineError> {
        let t = self.t;
        self.window = Counts::zero(self.ctx.n());
        let action = self.decide_guarded(t);
        let cost = self.execute_flush(&action)?;
        let violated = self.ctx.is_full(&self.pending);
        self.metrics.ticks += 1;
        self.note_view_violations();
        self.finish_step(&action, cost, violated, t)?;
        self.wal_log(WalRecord::Tick)?;
        Ok(crate::runtime::TickReport {
            t,
            action,
            cost,
            violated,
        })
    }

    /// Serves a per-view read. Stale returns the view's current
    /// maintained rows with its group's lag; Fresh runs one policy tick
    /// then force-flushes the view's group (cost ≤ `C` for any valid
    /// policy — the per-view freshness guarantee).
    pub fn read_view_at(
        &mut self,
        view: usize,
        mode: ReadMode,
        enqueued: Instant,
    ) -> Result<ReadResult, EngineError> {
        if view >= self.registry.view_count() {
            return Err(EngineError::Maintenance {
                message: format!(
                    "view {view} out of range for {} views",
                    self.registry.view_count()
                ),
            });
        }
        match mode {
            ReadMode::Stale => {
                self.metrics.stale_reads += 1;
                Ok(ReadResult {
                    rows: Some(self.registry.result(view)),
                    lag: self.registry.pending_counts(view).iter().sum(),
                    flush_cost: 0.0,
                    violated: false,
                })
            }
            ReadMode::Fresh => {
                self.tick()?;
                let (cost, violated) = self.forced_refresh_view(view)?;
                self.metrics
                    .refresh_latency_ns
                    .record(enqueued.elapsed().as_nanos() as u64);
                Ok(ReadResult {
                    rows: Some(self.registry.result(view)),
                    lag: 0,
                    flush_cost: cost,
                    violated,
                })
            }
        }
    }

    /// [`RegistryRuntime::read_view_at`] measured from now.
    pub fn read_view(&mut self, view: usize, mode: ReadMode) -> Result<ReadResult, EngineError> {
        self.read_view_at(view, mode, Instant::now())
    }

    /// A snapshot of the runtime's counters with the view axis.
    pub fn metrics(&self) -> MultiMetricsSnapshot {
        let mut global = self.metrics.snapshot();
        if let Some(w) = &self.wal {
            global.wal_records = w.records();
            global.wal_fsync_lag = w.unsynced();
            global.wal_sync_every = w.sync_every();
        }
        global.degraded = self.demoted;
        global.budget = self.ctx.budget;
        global.budget_rebalances = self.rebalances;
        global.recoveries = self.recoveries;
        global.snapshot_reads = self.hub.snapshot_reads();
        let stats = self.registry.stats();
        let views = (0..self.registry.view_count())
            .map(|v| {
                let staleness = self.registry.pending_counts(v);
                ViewMetricsSnapshot {
                    view: v as u32,
                    group: self.registry.group_of(v) as u32,
                    flushes: self.registry.view(v).stats.flushes,
                    pending: staleness.iter().sum(),
                    staleness,
                    violations: self.view_violations[v],
                    deltas_pushed: self.hub.deltas_pushed(v),
                    subscribers: self.hub.subscriber_count(v),
                    sub_lag_max: self.hub.sub_lag_max(v),
                }
            })
            .collect();
        MultiMetricsSnapshot {
            global,
            views,
            groups: self.registry.group_count() as u64,
            propagations: stats.propagations,
            shared_propagations: stats.shared_propagations,
        }
    }

    /// The forced flush completing a per-view fresh read (and replaying
    /// `ForcedView` records): empties the view's group at refresh cost,
    /// bypassing the policy. Other groups are untouched.
    fn forced_refresh_view(&mut self, view: usize) -> Result<(f64, bool), EngineError> {
        let t = self.t;
        let mut action = Counts::zero(self.ctx.n());
        for c in self.registry.cells_of_view(view) {
            action[c] = self.pending[c];
        }
        let cost = self.ctx.refresh_cost(&action);
        // The per-view freshness guarantee: any valid policy leaves the
        // *whole* post-action state non-full, so refreshing one group
        // (a subset of it) fits C a fortiori.
        let violated = !fits(cost, self.ctx.budget);
        self.execute_flush(&action)?;
        self.metrics.fresh_reads += 1;
        self.finish_step(&action, cost, violated, t)?;
        if violated {
            self.view_violations[view] += 1;
        }
        self.wal_log(WalRecord::ForcedView { view: view as u32 })?;
        Ok((cost, violated))
    }

    /// Runs the policy under `catch_unwind`; a panic or overdraw
    /// permanently demotes to [`NaiveFlush`].
    fn decide_guarded(&mut self, t: usize) -> Counts {
        let pending = &self.pending;
        let policy = &mut self.policy;
        let decided = catch_unwind(AssertUnwindSafe(|| policy.decide(t, pending)));
        match decided {
            Ok(a) if a.len() == self.ctx.n() && a.dominated_by(&self.pending) => return a,
            Ok(_) | Err(_) => {}
        }
        self.demote();
        let fallback = self.policy.decide(t, &self.pending);
        if fallback.len() == self.ctx.n() && fallback.dominated_by(&self.pending) {
            fallback
        } else {
            Counts::zero(self.ctx.n())
        }
    }

    fn demote(&mut self) {
        if self.demoted {
            return;
        }
        self.demoted = true;
        self.metrics.policy_demotions += 1;
        let mut naive: Box<dyn FlushPolicy> = Box::new(NaiveFlush::new());
        naive.reset(&self.ctx);
        self.policy = naive;
    }

    /// Executes a flush action over the cell axis, publishing a delta
    /// batch for every touched view, and returns its model cost.
    fn execute_flush(&mut self, action: &Counts) -> Result<f64, EngineError> {
        let cost = total_cost(&self.ctx.costs, action);
        if !action.is_zero() {
            let counts: Vec<u64> = action.iter().collect();
            let report = self.registry.flush_cells(&counts)?;
            self.pending = self
                .pending
                .checked_sub(action)
                .expect("flush ≤ pending by policy contract");
            self.publish_deltas(&report.touched);
        }
        Ok(cost)
    }

    /// Publishes one [`DeltaBatch`] per touched view: the signed row
    /// difference between the previously published snapshot and the
    /// new one. O(|old| + |new|) per touched view — the price of push
    /// semantics, paid only for views a flush actually advanced.
    fn publish_deltas(&mut self, touched: &[usize]) {
        for &v in touched {
            let snap = self.registry.snapshot(v);
            if Arc::ptr_eq(&snap, &self.published[v]) {
                continue;
            }
            let mut rows: Vec<WRow> =
                Vec::with_capacity(snap.rows.len() + self.published[v].rows.len());
            rows.extend(snap.rows.iter().cloned());
            rows.extend(self.published[v].rows.iter().map(|(r, w)| (r.clone(), -w)));
            let batch = DeltaBatch {
                view: v as u32,
                seq: snap.seq,
                rows: consolidate(rows),
                checksum: snap.checksum,
                staleness: snap.lag(),
            };
            self.hub.publish(v, batch, Arc::clone(&snap));
            self.published[v] = snap;
        }
    }

    /// Counts, per view, ticks whose post-state would break the
    /// per-view freshness guarantee (group refresh cost > C). A valid
    /// policy never lets any cell subset exceed the budget the whole
    /// state fits in, so these stay 0 exactly when global violations
    /// do — but they are *attributed* to views, which is what the
    /// loadgen's per-view staleness gate asserts on.
    fn note_view_violations(&mut self) {
        for g in 0..self.registry.group_count() {
            let leader = self.registry.group_members(g)[0];
            let mut action = Counts::zero(self.ctx.n());
            for c in self.registry.cells_of_view(leader) {
                action[c] = self.pending[c];
            }
            if fits(self.ctx.refresh_cost(&action), self.ctx.budget) {
                continue;
            }
            for &v in self.registry.group_members(g) {
                self.view_violations[v] += 1;
            }
        }
    }

    fn finish_step(
        &mut self,
        action: &Counts,
        cost: f64,
        violated: bool,
        t: usize,
    ) -> Result<(), EngineError> {
        self.metrics.record_flush(action, cost);
        self.t = t + 1;
        if violated {
            self.metrics.constraint_violations += 1;
            if self.strict {
                return Err(EngineError::Maintenance {
                    message: format!(
                        "constraint violation at t = {t}: refresh cost exceeds budget {}",
                        self.ctx.budget
                    ),
                });
            }
        }
        Ok(())
    }

    fn wal_log(&mut self, rec: WalRecord) -> Result<(), EngineError> {
        match &mut self.wal {
            Some(w) => w.append(&rec),
            None => Ok(()),
        }
    }
}

enum Msg {
    Dml {
        table: usize,
        m: Modification,
    },
    DmlBatch {
        table: usize,
        mods: Vec<Modification>,
        done: Option<SyncSender<Result<(), EngineError>>>,
    },
    Read {
        view: usize,
        mode: ReadMode,
        enqueued: Instant,
        reply: SyncSender<Result<ReadResult, EngineError>>,
    },
    Metrics {
        reply: SyncSender<MultiMetricsSnapshot>,
    },
    SetBudget {
        budget: f64,
    },
}

/// A cloneable producer/client handle to a running [`RegistryServer`].
#[derive(Clone)]
pub struct RegistryHandle {
    tx: Sender<Msg>,
    last_error: Arc<Mutex<Option<ServeError>>>,
    hub: Arc<SubscriptionHub>,
    views: usize,
    tables: usize,
}

impl RegistryHandle {
    /// The subscription hub (network workers pull delta batches and
    /// snapshots from it without scheduler round-trips).
    pub fn hub(&self) -> &Arc<SubscriptionHub> {
        &self.hub
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.views
    }

    /// Number of base tables on the global ingest axis.
    pub fn table_count(&self) -> usize {
        self.tables
    }

    /// The latest published snapshot of a view, counted as a served
    /// stale read. Wait-free with respect to maintenance.
    pub fn snapshot_for_read(&self, view: usize) -> Option<Arc<ViewSnapshot>> {
        (view < self.views).then(|| self.hub.snapshot_for_read(view))
    }

    /// Ingests one DML event for a global base table. Blocks while the
    /// queue is full; returns `false` if the server is gone.
    pub fn ingest_dml(&self, table: usize, m: Modification) -> bool {
        self.tx.send(Msg::Dml { table, m }, true).is_ok()
    }

    /// Ingests a whole DML batch as one queue message without blocking
    /// (a full queue is a typed [`TrySendError::Full`]); the batch
    /// charges one capacity unit per modification.
    pub fn try_ingest_batch(
        &self,
        table: usize,
        mods: Vec<Modification>,
    ) -> Result<(), TrySendError> {
        let weight = mods.len();
        self.tx.try_send_weighted(
            Msg::DmlBatch {
                table,
                mods,
                done: None,
            },
            true,
            weight,
        )
    }

    /// [`RegistryHandle::try_ingest_batch`] with an apply + WAL-append
    /// acknowledgement through the returned ticket.
    pub fn try_ingest_batch_tracked(
        &self,
        table: usize,
        mods: Vec<Modification>,
    ) -> Result<RegistryApplyTicket, TrySendError> {
        let weight = mods.len();
        let (done, rx) = sync_channel(1);
        self.tx.try_send_weighted(
            Msg::DmlBatch {
                table,
                mods,
                done: Some(done),
            },
            true,
            weight,
        )?;
        Ok(RegistryApplyTicket { rx })
    }

    /// Serves a per-view read. Stale reads are answered wait-free from
    /// the hub snapshot; fresh reads travel through the scheduler.
    /// `None` if the server is gone.
    pub fn read_view(
        &self,
        view: usize,
        mode: ReadMode,
    ) -> Option<Result<ReadResult, EngineError>> {
        if mode == ReadMode::Stale {
            let snap = self.snapshot_for_read(view)?;
            return Some(Ok(ReadResult {
                lag: snap.lag(),
                rows: Some(snap.rows.clone()),
                flush_cost: 0.0,
                violated: false,
            }));
        }
        let (reply, rx) = sync_channel(1);
        self.tx
            .send_control(Msg::Read {
                view,
                mode,
                enqueued: Instant::now(),
                reply,
            })
            .ok()?;
        rx.recv().ok()
    }

    /// Starts a per-view read without waiting for the reply; poll the
    /// returned ticket. Built for event-loop frontends.
    pub fn begin_read(&self, view: usize, mode: ReadMode) -> Option<RegistryReadTicket> {
        let (reply, rx) = sync_channel(1);
        self.tx
            .send_control(Msg::Read {
                view,
                mode,
                enqueued: Instant::now(),
                reply,
            })
            .ok()?;
        Some(RegistryReadTicket { rx })
    }

    /// Starts a metrics fetch without waiting; poll the returned
    /// ticket. `None` if the server is gone.
    pub fn begin_metrics(&self) -> Option<RegistryMetricsTicket> {
        let (reply, rx) = sync_channel(1);
        self.tx.send_control(Msg::Metrics { reply }).ok()?;
        Some(RegistryMetricsTicket { rx })
    }

    /// Fetches a metrics snapshot. `None` if the server is gone.
    pub fn metrics(&self) -> Option<MultiMetricsSnapshot> {
        let (reply, rx) = sync_channel(1);
        self.tx.send_control(Msg::Metrics { reply }).ok()?;
        rx.recv().ok()
    }

    /// Requests a refresh-budget change, applied in queue order.
    /// Returns `false` if the server is gone.
    pub fn set_budget(&self, budget: f64) -> bool {
        self.tx.send_control(Msg::SetBudget { budget }).is_ok()
    }

    /// Current ingest-queue depth (approximate).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// The error that stopped (or is poisoning) the scheduler, if any.
    pub fn last_error(&self) -> Option<ServeError> {
        self.last_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// An in-flight per-view read started with
/// [`RegistryHandle::begin_read`].
pub struct RegistryReadTicket {
    rx: std::sync::mpsc::Receiver<Result<ReadResult, EngineError>>,
}

impl RegistryReadTicket {
    /// Polls for the reply without blocking. `Ok(None)` means "not
    /// yet"; `Err` means the scheduler is gone.
    pub fn try_take(&self) -> Result<Option<Result<ReadResult, EngineError>>, DeadlineError> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(DeadlineError::Disconnected),
        }
    }
}

/// An in-flight durable-ack batch started with
/// [`RegistryHandle::try_ingest_batch_tracked`].
pub struct RegistryApplyTicket {
    rx: std::sync::mpsc::Receiver<Result<(), EngineError>>,
}

impl RegistryApplyTicket {
    /// Polls for completion without blocking. `Ok(None)` means "not
    /// yet"; `Err` means the scheduler died, batch outcome unknown.
    pub fn try_take(&self) -> Result<Option<Result<(), EngineError>>, DeadlineError> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(DeadlineError::Disconnected),
        }
    }
}

/// An in-flight metrics fetch started with
/// [`RegistryHandle::begin_metrics`].
pub struct RegistryMetricsTicket {
    rx: std::sync::mpsc::Receiver<MultiMetricsSnapshot>,
}

impl RegistryMetricsTicket {
    /// Polls for the snapshot without blocking. `Ok(None)` means "not
    /// yet"; `Err` means the scheduler is gone.
    pub fn try_take(&self) -> Result<Option<MultiMetricsSnapshot>, DeadlineError> {
        match self.rx.try_recv() {
            Ok(snap) => Ok(Some(snap)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(DeadlineError::Disconnected),
        }
    }
}

/// A scheduler thread driving a [`RegistryRuntime`]. Reuses
/// [`ServerConfig`]; fault injection fields other than
/// `kill_at_record` are ignored (the registry runtime has no fault
/// plan), and fencing does not apply (the registry path is unsharded).
pub struct RegistryServer {
    handle: RegistryHandle,
    join: JoinHandle<RegistryRuntime>,
}

impl RegistryServer {
    /// Spawns the scheduler thread.
    pub fn spawn(runtime: RegistryRuntime, cfg: ServerConfig) -> Self {
        let capacity = cfg.queue_capacity.max(1);
        let high_water = cfg.shed_high_water.map(|h| h.clamp(1, capacity));
        let (tx, rx) = channel::<Msg>(capacity, high_water);
        let last_error = Arc::new(Mutex::new(None));
        let handle = RegistryHandle {
            tx,
            last_error: Arc::clone(&last_error),
            hub: runtime.hub(),
            views: runtime.view_count(),
            tables: runtime.table_names().len(),
        };
        let join = std::thread::spawn(move || scheduler_loop(runtime, rx, last_error, cfg));
        RegistryServer { handle, join }
    }

    /// A new producer/client handle.
    pub fn handle(&self) -> RegistryHandle {
        self.handle.clone()
    }

    /// The error that stopped (or is poisoning) the scheduler, if any.
    pub fn last_error(&self) -> Option<ServeError> {
        self.handle.last_error()
    }

    /// Drops this server's own handle and waits for the scheduler to
    /// drain and exit, returning the runtime. Any handles cloned from
    /// this server must be dropped first.
    pub fn shutdown(self) -> RegistryRuntime {
        let RegistryServer { handle, join } = self;
        drop(handle);
        join.join().expect("registry scheduler thread panicked")
    }
}

struct SchedulerState {
    ingest_errors: u64,
    max_depth: usize,
    last_error: Arc<Mutex<Option<ServeError>>>,
}

impl SchedulerState {
    fn poison(&self, err: ServeError) {
        *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(err);
    }
}

fn scheduler_loop(
    mut runtime: RegistryRuntime,
    rx: Receiver<Msg>,
    last_error: Arc<Mutex<Option<ServeError>>>,
    cfg: ServerConfig,
) -> RegistryRuntime {
    let mut st = SchedulerState {
        ingest_errors: 0,
        max_depth: 0,
        last_error,
    };
    loop {
        let mut disconnected = false;
        match rx.recv_timeout(cfg.tick_interval) {
            Ok(msg) => {
                st.max_depth = st.max_depth.max(rx.len() + 1);
                // Drain up to `max_batch` *events* (modification
                // weight) before ticking — same backlog bound as the
                // single-view scheduler.
                let mut drained = handle_msg(&mut runtime, msg, &rx, &mut st).max(1);
                while drained < cfg.max_batch.max(1) {
                    match rx.try_recv() {
                        Ok(msg) => {
                            st.max_depth = st.max_depth.max(rx.len() + 1);
                            drained += handle_msg(&mut runtime, msg, &rx, &mut st).max(1);
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Disconnected) => disconnected = true,
        }
        if disconnected {
            break;
        }
        let ticks = runtime.metrics().global.ticks;
        if let Err(source) = runtime.tick() {
            st.poison(ServeError {
                ticks,
                during: "tick",
                source,
            });
            return runtime;
        }
        if cfg.faults.should_kill(runtime.wal_records()) {
            return runtime;
        }
    }
    runtime
}

/// Applies one queue message, returning its event weight (see the
/// single-view scheduler for the weighting rationale).
fn handle_msg(
    runtime: &mut RegistryRuntime,
    msg: Msg,
    rx: &Receiver<Msg>,
    st: &mut SchedulerState,
) -> usize {
    match msg {
        Msg::Dml { table, m } => {
            if let Err(source) = runtime.ingest_dml(table, m) {
                st.ingest_errors += 1;
                st.poison(ServeError {
                    ticks: runtime.metrics().global.ticks,
                    during: "ingest",
                    source,
                });
            }
            1
        }
        Msg::DmlBatch { table, mods, done } => {
            let weight = mods.len();
            let mut first_err: Option<EngineError> = None;
            for m in mods {
                if let Err(source) = runtime.ingest_dml(table, m) {
                    st.ingest_errors += 1;
                    if first_err.is_none() {
                        first_err = Some(source.clone());
                    }
                    st.poison(ServeError {
                        ticks: runtime.metrics().global.ticks,
                        during: "ingest",
                        source,
                    });
                }
            }
            if let Some(done) = done {
                let _ = reply_best_effort(
                    done,
                    match first_err {
                        None => Ok(()),
                        Some(e) => Err(e),
                    },
                );
            }
            weight
        }
        Msg::Read {
            view,
            mode,
            enqueued,
            reply,
        } => {
            let result = runtime.read_view_at(view, mode, enqueued);
            let _ = reply_best_effort(reply, result);
            0
        }
        Msg::Metrics { reply } => {
            let mut snap = runtime.metrics();
            snap.global.queue_depth = rx.len();
            snap.global.max_queue_depth = st.max_depth;
            snap.global.shed_events = rx.shed_count();
            snap.global.ingest_errors = st.ingest_errors;
            snap.global.last_error = st
                .last_error
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(|e| e.to_string());
            let _ = reply_best_effort(reply, snap);
            0
        }
        Msg::SetBudget { budget } => {
            if let Err(source) = runtime.set_budget(budget) {
                st.poison(ServeError {
                    ticks: runtime.metrics().global.ticks,
                    during: "set-budget",
                    source,
                });
            }
            0
        }
    }
}

/// Replies without blocking the scheduler if the requester gave up.
fn reply_best_effort<T>(reply: SyncSender<T>, value: T) -> Result<(), ()> {
    match reply.try_send(value) {
        Ok(()) => Ok(()),
        Err(MpscTrySendError::Full(_)) | Err(MpscTrySendError::Disconnected(_)) => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OnlineFlush;
    use crate::wal::{MemWal, WalWriter};
    use aivm_engine::logical::AggFunc;
    use aivm_engine::{
        row, rows_checksum, AggSpec, DataType, Database, Expr, JoinPred, MinStrategy, Schema,
        ViewDef,
    };
    use std::time::Duration;

    fn base() -> Database {
        let mut db = Database::new();
        db.create_table(
            "r",
            Schema::new(vec![("k", DataType::Int), ("x", DataType::Float)]),
        )
        .unwrap();
        db.create_table(
            "s",
            Schema::new(vec![("k", DataType::Int), ("y", DataType::Int)]),
        )
        .unwrap();
        db
    }

    fn join_def(name: &str) -> ViewDef {
        ViewDef {
            name: name.into(),
            tables: vec!["r".into(), "s".into()],
            join_preds: vec![JoinPred {
                left: (0, 0),
                right: (1, 0),
            }],
            filters: vec![None, None],
            residual: None,
            projection: None,
            aggregate: None,
            distinct: false,
        }
    }

    fn sum_def(name: &str) -> ViewDef {
        ViewDef {
            aggregate: Some(AggSpec {
                group_by: vec![0],
                aggs: vec![(AggFunc::Sum, Expr::col(3), "s".into())],
            }),
            ..join_def(name)
        }
    }

    /// `n` views sharing one SPJ core (plain join, then n−1 SUMs).
    fn registry_of(n: usize) -> ViewRegistry {
        let mut reg = ViewRegistry::new(base());
        reg.register_view(join_def("v0"), MinStrategy::Multiset)
            .unwrap();
        for i in 1..n {
            reg.register_view(sum_def(&format!("v{i}")), MinStrategy::Multiset)
                .unwrap();
        }
        reg
    }

    fn config(budget: f64) -> MultiConfig {
        MultiConfig::new(
            vec![CostModel::linear(0.05, 0.2), CostModel::linear(0.02, 0.5)],
            budget,
        )
    }

    fn feed(rt: &mut RegistryRuntime, i: i64) {
        rt.ingest_dml(0, Modification::Insert(row![i % 7, (i as f64) * 0.5]))
            .unwrap();
        rt.ingest_dml(1, Modification::Insert(row![i % 7, i - 20]))
            .unwrap();
        if i % 5 == 4 {
            rt.ingest_dml(1, Modification::Delete(row![(i - 1) % 7, i - 21]))
                .unwrap();
        }
    }

    #[test]
    fn shared_scheduling_keeps_every_view_valid() {
        let mut rt =
            RegistryRuntime::new(config(40.0), Box::new(OnlineFlush::new()), registry_of(4))
                .unwrap();
        assert_eq!(rt.cell_count(), 2, "one group ⇒ one cell per table");
        for i in 0..120i64 {
            feed(&mut rt, i);
            if i % 3 == 0 {
                let rep = rt.tick().unwrap();
                assert!(!rep.violated);
            }
        }
        // Drain whatever the policy deferred; the forced refresh
        // propagates once for the whole group.
        rt.read_view(0, ReadMode::Fresh).unwrap();
        let m = rt.metrics();
        assert_eq!(m.global.constraint_violations, 0);
        assert_eq!(m.groups, 1);
        assert!(m.shared_propagations > 0, "sharing must have kicked in");
        for v in &m.views {
            assert_eq!(v.violations, 0, "view {} violated", v.view);
            assert_eq!(v.staleness.len(), 2);
        }
    }

    #[test]
    fn fresh_read_refreshes_one_group_and_fits_budget() {
        let mut reg = registry_of(2);
        // A second group with a different core (filtered).
        reg.register_view(
            ViewDef {
                filters: vec![
                    None,
                    Some(Expr::Cmp(
                        aivm_engine::CmpOp::Gt,
                        Box::new(Expr::col(1)),
                        Box::new(Expr::lit(0i64)),
                    )),
                ],
                ..join_def("other")
            },
            MinStrategy::Multiset,
        )
        .unwrap();
        let cfg = MultiConfig::new(
            vec![CostModel::linear(0.05, 0.2), CostModel::linear(0.02, 0.5)],
            40.0,
        );
        let mut rt = RegistryRuntime::new(cfg, Box::new(OnlineFlush::new()), reg).unwrap();
        assert_eq!(rt.cell_count(), 4);
        for i in 0..30i64 {
            feed(&mut rt, i);
        }
        let r = rt.read_view(0, ReadMode::Fresh).unwrap();
        assert!(!r.violated);
        assert_eq!(r.lag, 0);
        assert!(r.flush_cost <= 40.0 + 1e-9);
        // Views 0 and 1 share a group: both fresh. View 2 keeps its
        // backlog (the tick may have flushed some of it, but the fresh
        // read's forced flush only drained group 0).
        assert_eq!(rt.registry().pending_counts(0), vec![0, 0]);
        assert_eq!(rt.registry().pending_counts(1), vec![0, 0]);
        let stale = rt.read_view(2, ReadMode::Stale).unwrap();
        assert!(stale.rows.is_some());
        let m = rt.metrics();
        assert_eq!(m.global.fresh_reads, 1);
        assert_eq!(m.global.stale_reads, 1);
    }

    #[test]
    fn delta_batches_chain_seqs_and_checksums() {
        let mut rt =
            RegistryRuntime::new(config(40.0), Box::new(OnlineFlush::new()), registry_of(3))
                .unwrap();
        let hub = rt.hub();
        // State as a subscriber would hold it: start from the initial
        // snapshot, fold every published batch.
        let snap0 = hub.snapshot(1);
        let mut state = snap0.rows.clone();
        let mut next_seq = snap0.seq + 1;
        for i in 0..200i64 {
            feed(&mut rt, i);
            if i % 4 == 0 {
                rt.tick().unwrap();
            }
            loop {
                match hub.fetch(1, next_seq, 8) {
                    FetchOutcome::AtHead => break,
                    FetchOutcome::Deltas(batches) => {
                        for b in batches {
                            assert_eq!(b.seq, next_seq, "gap or duplicate");
                            state = fold_delta(state, &b);
                            assert_eq!(
                                rows_checksum(&state),
                                b.checksum,
                                "fold diverged at seq {next_seq}"
                            );
                            next_seq += 1;
                        }
                    }
                    FetchOutcome::Resync(_) => {
                        panic!("an up-to-date subscriber must never be resynced")
                    }
                }
            }
        }
        rt.read_view(1, ReadMode::Fresh).unwrap();
        // Drain the final flushes, then the folded state must equal a
        // direct read of the view.
        loop {
            match hub.fetch(1, next_seq, 64) {
                FetchOutcome::AtHead => break,
                FetchOutcome::Deltas(batches) => {
                    for b in batches {
                        state = fold_delta(state, &b);
                        next_seq += 1;
                    }
                }
                FetchOutcome::Resync(_) => panic!("no resync expected"),
            }
        }
        assert_eq!(rows_checksum(&state), rt.view_checksum(1));
        assert!(hub.deltas_pushed(1) > 0);
    }

    #[test]
    fn slow_subscriber_is_resynced_not_queued_unboundedly() {
        let mut rt =
            RegistryRuntime::new(config(40.0), Box::new(OnlineFlush::new()), registry_of(2))
                .unwrap();
        let hub = rt.hub();
        let stale_pos = hub.snapshot(0).seq + 1;
        // Push far more flush boundaries than the ring holds.
        for i in 0..((DELTA_RING_CAP as i64 + 20) * 3) {
            feed(&mut rt, i);
            rt.read_view(0, ReadMode::Fresh).unwrap();
        }
        assert!(hub.head_seq(0) > DELTA_RING_CAP as u64 + stale_pos);
        match hub.fetch(0, stale_pos, 8) {
            FetchOutcome::Resync(snap) => {
                assert_eq!(rows_checksum(&snap.rows), snap.checksum);
                // Resuming from the resync snapshot works delta-by-delta.
                match hub.fetch(0, snap.seq + 1, 8) {
                    FetchOutcome::AtHead | FetchOutcome::Deltas(_) => {}
                    FetchOutcome::Resync(_) => panic!("fresh resync point fell off"),
                }
            }
            _ => panic!("an evicted seq must force a resync"),
        }
    }

    #[test]
    fn wal_replay_reproduces_every_view() {
        let mem = MemWal::new();
        let make = || Ok(registry_of(4));
        let mut rt =
            RegistryRuntime::new(config(40.0), Box::new(OnlineFlush::new()), make().unwrap())
                .unwrap();
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 4).unwrap());
        for i in 0..90i64 {
            feed(&mut rt, i);
            if i % 3 == 0 {
                rt.tick().unwrap();
            }
            if i % 25 == 24 {
                rt.read_view((i % 4) as usize, ReadMode::Fresh).unwrap();
            }
            if i == 40 {
                rt.set_budget(25.0).unwrap();
            }
        }
        let expect: Vec<u64> = (0..4).map(|v| rt.view_checksum(v)).collect();
        let expect_pending = rt.pending().clone();
        let expect_heads: Vec<u64> = (0..4).map(|v| rt.hub().head_seq(v)).collect();
        drop(rt);
        let recovered = RegistryRuntime::recover(
            config(40.0),
            Box::new(OnlineFlush::new()),
            &mem.bytes(),
            &make,
        )
        .unwrap();
        let got: Vec<u64> = (0..4).map(|v| recovered.view_checksum(v)).collect();
        assert_eq!(got, expect);
        assert_eq!(recovered.pending(), &expect_pending);
        assert_eq!(recovered.budget(), 25.0);
        assert_eq!(recovered.metrics().global.recoveries, 1);
        let heads: Vec<u64> = (0..4).map(|v| recovered.hub().head_seq(v)).collect();
        assert_eq!(heads, expect_heads, "snapshot seqs must replay exactly");
    }

    #[test]
    fn mismatched_cost_arity_is_rejected() {
        let cfg = MultiConfig::new(vec![CostModel::linear(0.05, 0.2)], 40.0);
        let err = RegistryRuntime::new(cfg, Box::new(OnlineFlush::new()), registry_of(2))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, EngineError::Maintenance { .. }));
    }

    /// A policy that overdraws on its first decision.
    struct Overdraw;
    impl FlushPolicy for Overdraw {
        fn reset(&mut self, _ctx: &PolicyContext) {}
        fn decide(&mut self, _t: usize, pending: &Counts) -> Counts {
            let mut a = pending.clone();
            a[0] += 100;
            a
        }
        fn name(&self) -> &str {
            "overdraw"
        }
    }

    #[test]
    fn misbehaving_policy_demotes_to_naive() {
        let mut rt =
            RegistryRuntime::new(config(40.0), Box::new(Overdraw), registry_of(2)).unwrap();
        feed(&mut rt, 0);
        rt.tick().unwrap();
        assert!(rt.demoted());
        assert_eq!(rt.policy_name(), "naive");
        assert_eq!(rt.metrics().global.policy_demotions, 1);
    }

    #[test]
    fn threaded_server_serves_reads_and_per_view_metrics() {
        let rt = RegistryRuntime::new(config(40.0), Box::new(OnlineFlush::new()), registry_of(3))
            .unwrap();
        let server = RegistryServer::spawn(rt, ServerConfig::default());
        let h = server.handle();
        assert_eq!(h.view_count(), 3);
        assert_eq!(h.table_count(), 2);
        let mut producers = Vec::new();
        for p in 0..2 {
            let h = server.handle();
            producers.push(std::thread::spawn(move || {
                for i in 0..200i64 {
                    let m = Modification::Insert(row![i % 7, (p * 200 + i) as f64]);
                    assert!(h.ingest_dml(0, m));
                    assert!(h.ingest_dml(1, Modification::Insert(row![i % 7, i])));
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        for v in 0..3 {
            let r = h
                .read_view(v, ReadMode::Fresh)
                .expect("alive")
                .expect("read ok");
            assert!(!r.violated);
            assert_eq!(r.lag, 0);
            let stale = h.read_view(v, ReadMode::Stale).expect("alive").unwrap();
            assert!(stale.rows.is_some());
        }
        let m = h.metrics().expect("alive");
        assert_eq!(m.global.events_ingested, 800);
        assert_eq!(m.global.constraint_violations, 0);
        assert_eq!(m.views.len(), 3);
        assert!(m.global.snapshot_reads >= 3);
        for v in &m.views {
            assert_eq!(v.violations, 0);
        }
        drop(h);
        let rt = server.shutdown();
        // Accounting over the cell axis: ingested events fan out to one
        // pending unit per (group, table) cell they route to; here one
        // group ⇒ 800 events = 800 cell units.
        let flushed: u64 = rt.metrics().global.mods_flushed_per_table.iter().sum();
        assert_eq!(flushed + rt.pending().total(), 800);
    }

    #[test]
    fn batch_ingest_acknowledges_after_wal_append() {
        let mem = MemWal::new();
        let mut rt =
            RegistryRuntime::new(config(40.0), Box::new(OnlineFlush::new()), registry_of(2))
                .unwrap();
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 1).unwrap());
        let server = RegistryServer::spawn(rt, ServerConfig::default());
        let h = server.handle();
        let mods: Vec<Modification> = (0..5i64)
            .map(|i| Modification::Insert(row![i, i as f64]))
            .collect();
        let ticket = h.try_ingest_batch_tracked(0, mods).expect("enqueued");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match ticket.try_take().expect("scheduler alive") {
                Some(r) => {
                    r.expect("batch applied");
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "ack never arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        let dml = crate::wal::read_wal(&mem.bytes())
            .unwrap()
            .records
            .iter()
            .filter(|r| matches!(r, WalRecord::Dml { .. }))
            .count();
        assert_eq!(dml, 5);
        drop(h);
        server.shutdown();
    }

    #[test]
    fn bad_table_index_poisons_without_crashing() {
        let rt = RegistryRuntime::new(config(40.0), Box::new(OnlineFlush::new()), registry_of(2))
            .unwrap();
        let server = RegistryServer::spawn(rt, ServerConfig::default());
        let h = server.handle();
        assert!(h.ingest_dml(9, Modification::Insert(row![1i64, 1.0f64])));
        let deadline = Instant::now() + Duration::from_secs(5);
        while h.last_error().is_none() {
            assert!(Instant::now() < deadline, "error never surfaced");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.last_error().unwrap().during, "ingest");
        drop(h);
        server.shutdown();
    }
}
