//! Write-ahead log and checkpoints for the serving runtime.
//!
//! Durability follows the classic command-log design: every event that
//! changes runtime state — a DML ingest, a count ingest, a scheduler
//! tick, a forced (Fresh-read) flush — is appended to an append-only
//! log *after* it has been applied. Because the runtime is
//! deterministic given its event sequence (policies are pure functions
//! of `(t, pending)` and the engine applies modifications
//! deterministically), replaying the log reproduces the exact view
//! state, pending counts, accumulated cost and trace of an uncrashed
//! run. Periodic [`Checkpoint`]s bound replay time by snapshotting the
//! database (via `aivm-engine`'s codec) and the per-table pending
//! deltas at a known log position.
//!
//! ## Log format
//!
//! ```text
//! header: magic "AWAL" | version u16
//! record: payload_len u32 | fxhash64(payload) u64 | payload
//! payload: kind u8 (0 dml, 1 tick, 2 forced, 3 count) | kind fields
//! ```
//!
//! All integers little-endian. The per-record checksum makes torn tails
//! detectable: [`read_wal`] stops at the first incomplete or
//! checksum-failing record and reports the log as truncated, mirroring
//! how a real log is cut at the last durable record after a crash.
//! Structural damage *inside* a checksummed record is a hard
//! [`EngineError::Corrupt`] instead — the disk lied, not the crash.

use aivm_engine::codec::{get_modification, put_modification};
use aivm_engine::fxhash::FxHasher;
use aivm_engine::{EngineError, Modification};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::hash::Hasher;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const WAL_MAGIC: &[u8; 4] = b"AWAL";
const WAL_VERSION: u16 = 1;
const WAL_HEADER_LEN: usize = 6;
/// Bytes of framing before each record payload (length + checksum).
const FRAME_LEN: usize = 12;

const CKPT_MAGIC: &[u8; 4] = b"ACKP";
const CKPT_VERSION: u16 = 1;

/// Seedless content hash of a byte slice (stable across processes).
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// One durable event in the command log.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A DML modification ingested for base table `table` (the position
    /// within the view, not the database id).
    Dml {
        /// Base-table position within the view.
        table: usize,
        /// The ingested modification.
        m: Modification,
    },
    /// A scheduler tick (window close + policy flush).
    Tick,
    /// A forced full flush (the second half of a Fresh read).
    Forced,
    /// A counts-only ingest of `k` modifications for table `table`
    /// (Model-backend runtimes).
    Count {
        /// Base-table position within the view.
        table: usize,
        /// Number of modifications ingested.
        k: u64,
    },
    /// A refresh-budget change (a shard coordinator rebalancing `C`
    /// across shards). Logged so recovery replays the exact flush
    /// schedule the live run executed: `Tick` records carry no action,
    /// so the policy must see the same budget at every replayed tick.
    SetBudget {
        /// The new refresh budget `C` for this runtime.
        budget: f64,
    },
    /// A forced flush of one registered view's sharing group (the
    /// second half of a per-view Fresh read on a multi-view
    /// [`RegistryRuntime`](crate::multi::RegistryRuntime)). The plain
    /// [`WalRecord::Forced`] carries no view axis, so registry logs use
    /// this instead.
    ForcedView {
        /// The registry view id whose group was refreshed.
        view: u32,
    },
}

impl WalRecord {
    /// Encodes the record payload (framing is added by [`WalWriter`]).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(32);
        match self {
            WalRecord::Dml { table, m } => {
                b.put_u8(0);
                b.put_u32_le(*table as u32);
                put_modification(&mut b, m);
            }
            WalRecord::Tick => b.put_u8(1),
            WalRecord::Forced => b.put_u8(2),
            WalRecord::Count { table, k } => {
                b.put_u8(3);
                b.put_u32_le(*table as u32);
                b.put_u64_le(*k);
            }
            WalRecord::SetBudget { budget } => {
                b.put_u8(4);
                b.put_f64_le(*budget);
            }
            WalRecord::ForcedView { view } => {
                b.put_u8(5);
                b.put_u32_le(*view);
            }
        }
        b.freeze()
    }

    /// Decodes one record payload.
    pub fn decode(mut buf: Bytes) -> Result<WalRecord, EngineError> {
        let ctx = "wal record";
        let corrupt = |what: &str, buf: &Bytes| EngineError::Corrupt {
            context: ctx.to_string(),
            offset: buf.consumed() as u64,
            message: what.to_string(),
        };
        if buf.remaining() < 1 {
            return Err(corrupt("kind", &buf));
        }
        let rec = match buf.get_u8() {
            0 => {
                if buf.remaining() < 4 {
                    return Err(corrupt("dml table", &buf));
                }
                let table = buf.get_u32_le() as usize;
                let m = get_modification(&mut buf, ctx)?;
                WalRecord::Dml { table, m }
            }
            1 => WalRecord::Tick,
            2 => WalRecord::Forced,
            3 => {
                if buf.remaining() < 12 {
                    return Err(corrupt("count fields", &buf));
                }
                let table = buf.get_u32_le() as usize;
                let k = buf.get_u64_le();
                WalRecord::Count { table, k }
            }
            4 => {
                if buf.remaining() < 8 {
                    return Err(corrupt("budget", &buf));
                }
                WalRecord::SetBudget {
                    budget: buf.get_f64_le(),
                }
            }
            5 => {
                if buf.remaining() < 4 {
                    return Err(corrupt("view", &buf));
                }
                WalRecord::ForcedView {
                    view: buf.get_u32_le(),
                }
            }
            other => return Err(corrupt(&format!("record kind {other}"), &buf)),
        };
        if !buf.is_empty() {
            return Err(corrupt("trailing bytes", &buf));
        }
        Ok(rec)
    }
}

/// Backing storage for the write-ahead log.
///
/// Implementations must make `append` atomic with respect to
/// `read_all`: readers see a byte-prefix of everything appended (a torn
/// *tail* is fine and handled; interleaved partial writes are not).
pub trait WalStorage: Send {
    /// Appends bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError>;
    /// Makes all appended bytes durable (fsync or equivalent).
    fn sync(&mut self) -> Result<(), EngineError>;
    /// Reads the entire log contents (recovery path).
    fn read_all(&self) -> Result<Vec<u8>, EngineError>;
}

/// In-memory log storage that survives a *simulated* crash: the buffer
/// lives behind a shared handle, so dropping the runtime (the "crash")
/// leaves the bytes readable through a clone. The chaos harness's
/// crash/recover cycles and most tests use this.
#[derive(Clone, Debug, Default)]
pub struct MemWal {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemWal {
    /// A new, empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the current log bytes.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.lock().expect("wal buffer poisoned").clone()
    }

    /// Truncates the log to `len` bytes (harness helper for simulating
    /// a crash torn mid-record).
    pub fn truncate(&self, len: usize) {
        self.buf.lock().expect("wal buffer poisoned").truncate(len);
    }
}

impl WalStorage for MemWal {
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        self.buf
            .lock()
            .expect("wal buffer poisoned")
            .extend_from_slice(bytes);
        Ok(())
    }
    fn sync(&mut self) -> Result<(), EngineError> {
        Ok(())
    }
    fn read_all(&self) -> Result<Vec<u8>, EngineError> {
        Ok(self.bytes())
    }
}

/// File-backed log storage.
#[derive(Debug)]
pub struct FileWal {
    file: std::fs::File,
    path: PathBuf,
}

impl FileWal {
    /// Creates (truncating) a log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)
            .map_err(|e| EngineError::io(format!("creating wal {}", path.display()), e))?;
        Ok(FileWal { file, path })
    }

    /// Opens an existing log file for appending.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| EngineError::io(format!("opening wal {}", path.display()), e))?;
        Ok(FileWal { file, path })
    }
}

impl WalStorage for FileWal {
    fn append(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        self.file
            .write_all(bytes)
            .map_err(|e| EngineError::io(format!("wal append to {}", self.path.display()), e))
    }
    fn sync(&mut self) -> Result<(), EngineError> {
        self.file
            .sync_data()
            .map_err(|e| EngineError::io(format!("wal sync of {}", self.path.display()), e))
    }
    fn read_all(&self) -> Result<Vec<u8>, EngineError> {
        std::fs::read(&self.path)
            .map_err(|e| EngineError::io(format!("reading wal {}", self.path.display()), e))
    }
}

/// When the WAL forces durability (fsync) of appended records.
///
/// The policy trades the crash-loss window against append throughput:
/// `Always` bounds loss to zero records but pays one fsync per event;
/// `Interval(k)` bounds loss to at most `k` records (the
/// `wal_fsync_lag` metric shows the live window); `Never` leaves
/// durability to the OS page cache — a process crash loses nothing
/// (the kernel still holds the writes) but a machine crash can lose
/// the entire unflushed tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalSyncPolicy {
    /// fsync after every record (maximum durability, minimum throughput).
    Always,
    /// fsync every `n` records (bounded loss window).
    Interval(u64),
    /// Never fsync mid-run (OS decides; fastest).
    Never,
}

impl WalSyncPolicy {
    /// The [`WalWriter`] sync interval implementing this policy.
    pub fn sync_every(&self) -> u64 {
        match self {
            WalSyncPolicy::Always => 1,
            WalSyncPolicy::Interval(n) => (*n).max(1),
            WalSyncPolicy::Never => u64::MAX,
        }
    }

    /// Parses `always`, `never`, `interval` (default 64) or
    /// `interval:N`.
    pub fn parse(s: &str) -> Option<WalSyncPolicy> {
        match s {
            "always" => Some(WalSyncPolicy::Always),
            "never" => Some(WalSyncPolicy::Never),
            "interval" => Some(WalSyncPolicy::Interval(64)),
            other => {
                let n = other.strip_prefix("interval:")?.parse::<u64>().ok()?;
                (n > 0).then_some(WalSyncPolicy::Interval(n))
            }
        }
    }

    /// The canonical flag spelling of this policy.
    pub fn name(&self) -> String {
        match self {
            WalSyncPolicy::Always => "always".to_string(),
            WalSyncPolicy::Interval(n) => format!("interval:{n}"),
            WalSyncPolicy::Never => "never".to_string(),
        }
    }
}

impl std::fmt::Display for WalSyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Appender over a [`WalStorage`]: frames records, maintains the
/// per-record checksum, and syncs every `sync_every` records.
pub struct WalWriter {
    storage: Box<dyn WalStorage>,
    sync_every: u64,
    unsynced: u64,
    records: u64,
}

impl WalWriter {
    /// Starts a fresh log: writes the header and syncs it.
    /// `sync_every = 1` syncs after every record (maximum durability);
    /// larger values trade a bounded fsync lag (visible as
    /// `wal_fsync_lag` in metrics) for throughput.
    pub fn create(mut storage: Box<dyn WalStorage>, sync_every: u64) -> Result<Self, EngineError> {
        let mut header = [0u8; WAL_HEADER_LEN];
        header[..4].copy_from_slice(WAL_MAGIC);
        header[4..].copy_from_slice(&WAL_VERSION.to_le_bytes());
        storage.append(&header)?;
        storage.sync()?;
        Ok(WalWriter {
            storage,
            sync_every: sync_every.max(1),
            unsynced: 0,
            records: 0,
        })
    }

    /// Resumes appending to a log that already holds `records` valid
    /// records (the recovery path, after [`read_wal`] validated them).
    pub fn resume(storage: Box<dyn WalStorage>, records: u64, sync_every: u64) -> Self {
        WalWriter {
            storage,
            sync_every: sync_every.max(1),
            unsynced: 0,
            records,
        }
    }

    /// Appends one record, syncing when the configured interval is hit.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), EngineError> {
        let payload = rec.encode();
        let mut frame = BytesMut::with_capacity(FRAME_LEN + payload.len());
        frame.put_u32_le(payload.len() as u32);
        frame.put_u64_le(checksum(&payload));
        frame.put_slice(&payload);
        self.storage.append(&frame)?;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces durability of everything appended so far.
    pub fn sync(&mut self) -> Result<(), EngineError> {
        self.storage.sync()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Total records appended over the log's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records appended since the last sync (the fsync lag).
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// The configured sync interval (1 = every record).
    pub fn sync_every(&self) -> u64 {
        self.sync_every
    }
}

/// Result of scanning a log with [`read_wal`].
#[derive(Clone, Debug)]
pub struct WalReadOutcome {
    /// The decoded records, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset one past the last good record (a truncation point).
    pub consumed: usize,
    /// Whether a torn or checksum-failing tail was discarded.
    pub truncated: bool,
}

/// Scans a log image, tolerating a torn tail.
///
/// Returns every record whose frame is complete and whose checksum
/// matches; an incomplete or checksum-failing record ends the scan with
/// `truncated = true` (crash semantics: the tail was never durable). A
/// record that passes its checksum but fails to decode is a hard
/// [`EngineError::Corrupt`] carrying the absolute byte offset.
pub fn read_wal(bytes: &[u8]) -> Result<WalReadOutcome, EngineError> {
    let corrupt = |offset: usize, what: &str| EngineError::Corrupt {
        context: "wal".to_string(),
        offset: offset as u64,
        message: what.to_string(),
    };
    if bytes.len() < WAL_HEADER_LEN {
        return Err(corrupt(0, "header"));
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(corrupt(0, "magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != WAL_VERSION {
        return Err(EngineError::Unsupported {
            message: format!("wal version {version} (supported: {WAL_VERSION})"),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut truncated = false;
    while bytes.len() - pos >= FRAME_LEN {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload_start = pos + FRAME_LEN;
        if payload_start + len > bytes.len() {
            truncated = true;
            break;
        }
        let payload = &bytes[payload_start..payload_start + len];
        if checksum(payload) != sum {
            truncated = true;
            break;
        }
        let rec = WalRecord::decode(Bytes::from(payload)).map_err(|e| match e {
            // Payload-relative offsets become absolute log offsets.
            EngineError::Corrupt {
                context,
                offset,
                message,
            } => EngineError::Corrupt {
                context,
                offset: offset + payload_start as u64,
                message,
            },
            other => other,
        })?;
        records.push(rec);
        pos = payload_start + len;
    }
    if pos < bytes.len() && !truncated {
        // A partial frame header at the very end.
        truncated = true;
    }
    Ok(WalReadOutcome {
        records,
        consumed: pos,
        truncated,
    })
}

/// One batch of raw WAL record frames served to a tailing follower.
///
/// `bytes` holds `count` whole, checksum-valid record frames (length +
/// checksum + payload, exactly as they appear in the log, *without* the
/// log header) starting at record index `from_record`.
/// `leader_records` is the total number of checksum-valid records the
/// leader's log held at read time, so the receiver can compute its
/// replication lag as `leader_records - (from_record + count)`.
#[derive(Clone, Debug)]
pub struct WalSegment {
    /// Record index of the first frame in `bytes`.
    pub from_record: u64,
    /// Number of whole record frames in `bytes`.
    pub count: u64,
    /// Checksum-valid records in the leader's log at read time.
    pub leader_records: u64,
    /// The raw record frames (no log header).
    pub bytes: Vec<u8>,
}

/// Walks record frames in `bytes[pos..]`, returning the byte range of
/// each complete, checksum-valid frame. Stops (without error) at the
/// first torn or checksum-failing frame — the crash-semantics tail.
fn scan_frames(bytes: &[u8], mut pos: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    while bytes.len() - pos >= FRAME_LEN {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload_start = pos + FRAME_LEN;
        if payload_start + len > bytes.len()
            || checksum(&bytes[payload_start..payload_start + len]) != sum
        {
            break;
        }
        ranges.push((pos, payload_start + len));
        pos = payload_start + len;
    }
    ranges
}

/// A shared read handle over a leader's WAL, serving byte segments of
/// whole records to tailing followers.
///
/// The tail re-scans the log on every call (the log is the source of
/// truth, including after torn-tail truncation), so a segment never
/// contains a record the leader has not durably framed, and a follower
/// that reconnects after any cut can resume from its own applied count
/// with no gap and no duplicate.
#[derive(Clone)]
pub struct WalTail {
    storage: Arc<Mutex<Box<dyn WalStorage>>>,
}

impl WalTail {
    /// Wraps a log storage for tailing (typically a [`MemWal`] clone or
    /// a reopened [`FileWal`]).
    pub fn new(storage: Box<dyn WalStorage>) -> Self {
        WalTail {
            storage: Arc::new(Mutex::new(storage)),
        }
    }

    /// Reads a segment of whole records starting at `from_record`,
    /// bounded by `max_bytes` (at least one record is returned when any
    /// is available). `from_record` at or past the end of the log
    /// yields an empty segment carrying the current `leader_records`.
    pub fn segment(&self, from_record: u64, max_bytes: usize) -> Result<WalSegment, EngineError> {
        let bytes = self
            .storage
            .lock()
            .expect("wal tail storage poisoned")
            .read_all()?;
        let corrupt = |what: &str| EngineError::Corrupt {
            context: "wal tail".to_string(),
            offset: 0,
            message: what.to_string(),
        };
        if bytes.len() < WAL_HEADER_LEN || &bytes[..4] != WAL_MAGIC {
            return Err(corrupt("log header"));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != WAL_VERSION {
            return Err(EngineError::Unsupported {
                message: format!("wal version {version} (supported: {WAL_VERSION})"),
            });
        }
        let ranges = scan_frames(&bytes, WAL_HEADER_LEN);
        let leader_records = ranges.len() as u64;
        let skip = (from_record.min(leader_records)) as usize;
        let mut out = Vec::new();
        let mut count = 0u64;
        for &(start, end) in &ranges[skip..] {
            if count > 0 && out.len() + (end - start) > max_bytes {
                break;
            }
            out.extend_from_slice(&bytes[start..end]);
            count += 1;
        }
        Ok(WalSegment {
            from_record: skip as u64,
            count,
            leader_records,
            bytes: out,
        })
    }
}

/// Decodes a follower-received segment of raw record frames.
///
/// Unlike [`read_wal`], a segment has no header and no legitimate torn
/// tail — the leader only ships whole checksum-valid records — so any
/// framing or checksum failure is a hard [`EngineError::Corrupt`]
/// (transport damage; the follower should drop the connection and
/// re-subscribe from its applied count).
pub fn decode_segment(bytes: &[u8]) -> Result<Vec<WalRecord>, EngineError> {
    let corrupt = |offset: usize, what: &str| EngineError::Corrupt {
        context: "wal segment".to_string(),
        offset: offset as u64,
        message: what.to_string(),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_LEN {
            return Err(corrupt(pos, "torn frame header"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload_start = pos + FRAME_LEN;
        if payload_start + len > bytes.len() {
            return Err(corrupt(pos, "torn record payload"));
        }
        let payload = &bytes[payload_start..payload_start + len];
        if checksum(payload) != sum {
            return Err(corrupt(pos, "record checksum mismatch"));
        }
        records.push(WalRecord::decode(Bytes::from(payload))?);
        pos = payload_start + len;
    }
    Ok(records)
}

/// A durability checkpoint: everything needed to rebuild runtime state
/// at a known log position without replaying the whole log.
///
/// Policy state, metrics and the trace are *not* stored — recovery
/// rebuilds them deterministically by shadow-replaying the log prefix
/// in counts-only mode (see `MaintenanceRuntime::recover`), which keeps
/// the checkpoint format independent of policy internals.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Number of log records this checkpoint covers: recovery replays
    /// records `[wal_records..]` against the restored state.
    pub wal_records: u64,
    /// The runtime's step counter at checkpoint time.
    pub t: u64,
    /// Pending modification counts per base table (the state vector).
    pub pending: Vec<u64>,
    /// Engine-backend payload: database snapshot plus the pending
    /// delta-table contents. `None` for counts-only (Model) runtimes.
    pub engine: Option<EngineCheckpoint>,
}

/// The engine-backend portion of a [`Checkpoint`].
#[derive(Clone, Debug, PartialEq)]
pub struct EngineCheckpoint {
    /// `aivm_engine::codec::snapshot` image of the database.
    pub db: Vec<u8>,
    /// Pending modifications per base table, in arrival order.
    pub pending_mods: Vec<Vec<Modification>>,
}

impl Checkpoint {
    /// Serializes the checkpoint with a trailing content checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(256);
        b.put_slice(CKPT_MAGIC);
        b.put_u16_le(CKPT_VERSION);
        b.put_u64_le(self.wal_records);
        b.put_u64_le(self.t);
        b.put_u32_le(self.pending.len() as u32);
        for &p in &self.pending {
            b.put_u64_le(p);
        }
        match &self.engine {
            None => b.put_u8(0),
            Some(e) => {
                b.put_u8(1);
                b.put_u32_le(e.db.len() as u32);
                b.put_slice(&e.db);
                b.put_u32_le(e.pending_mods.len() as u32);
                for mods in &e.pending_mods {
                    b.put_u32_le(mods.len() as u32);
                    for m in mods {
                        put_modification(&mut b, m);
                    }
                }
            }
        }
        let sum = checksum(&b);
        b.put_u64_le(sum);
        b.freeze()
    }

    /// Deserializes and verifies a checkpoint image.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, EngineError> {
        let ctx = "checkpoint";
        let fail = |offset: usize, what: &str| EngineError::Corrupt {
            context: ctx.to_string(),
            offset: offset as u64,
            message: what.to_string(),
        };
        if bytes.len() < 14 + 8 {
            return Err(fail(0, "header"));
        }
        let body_len = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_len..].try_into().unwrap());
        if checksum(&bytes[..body_len]) != stored {
            return Err(fail(body_len, "content checksum"));
        }
        let mut buf = Bytes::from(&bytes[..body_len]);
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != CKPT_MAGIC {
            return Err(fail(0, "magic"));
        }
        let version = buf.get_u16_le();
        if version != CKPT_VERSION {
            return Err(EngineError::Unsupported {
                message: format!("checkpoint version {version} (supported: {CKPT_VERSION})"),
            });
        }
        let wal_records = buf.get_u64_le();
        let t = buf.get_u64_le();
        if buf.remaining() < 4 {
            return Err(fail(buf.consumed(), "pending arity"));
        }
        let n = buf.get_u32_le() as usize;
        if buf.remaining() < n * 8 {
            return Err(fail(buf.consumed(), "pending counts"));
        }
        let pending = (0..n).map(|_| buf.get_u64_le()).collect();
        if buf.remaining() < 1 {
            return Err(fail(buf.consumed(), "backend tag"));
        }
        let engine = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 4 {
                    return Err(fail(buf.consumed(), "db snapshot length"));
                }
                let db_len = buf.get_u32_le() as usize;
                if buf.remaining() < db_len {
                    return Err(fail(buf.consumed(), "db snapshot body"));
                }
                let db = buf.copy_to_bytes(db_len).to_vec();
                if buf.remaining() < 4 {
                    return Err(fail(buf.consumed(), "pending table count"));
                }
                let tables = buf.get_u32_le() as usize;
                let mut pending_mods = Vec::with_capacity(tables);
                for _ in 0..tables {
                    if buf.remaining() < 4 {
                        return Err(fail(buf.consumed(), "pending mod count"));
                    }
                    let count = buf.get_u32_le() as usize;
                    let mut mods = Vec::with_capacity(count.min(1024));
                    for _ in 0..count {
                        mods.push(get_modification(&mut buf, ctx)?);
                    }
                    pending_mods.push(mods);
                }
                Some(EngineCheckpoint { db, pending_mods })
            }
            other => return Err(fail(buf.consumed(), &format!("backend tag {other}"))),
        };
        if !buf.is_empty() {
            return Err(fail(buf.consumed(), "trailing bytes"));
        }
        Ok(Checkpoint {
            wal_records,
            t,
            pending,
            engine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_engine::row;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Dml {
                table: 0,
                m: Modification::Insert(row![1i64, "a"]),
            },
            WalRecord::Tick,
            WalRecord::Count { table: 1, k: 7 },
            WalRecord::Dml {
                table: 1,
                m: Modification::Update {
                    old: row![2i64],
                    new: row![3i64],
                },
            },
            WalRecord::Forced,
            WalRecord::SetBudget { budget: 12.5 },
            WalRecord::ForcedView { view: 3 },
        ]
    }

    fn write_log(records: &[WalRecord], sync_every: u64) -> MemWal {
        let mem = MemWal::new();
        let mut w = WalWriter::create(Box::new(mem.clone()), sync_every).unwrap();
        for r in records {
            w.append(r).unwrap();
        }
        mem
    }

    #[test]
    fn sync_policy_parsing_and_intervals() {
        assert_eq!(WalSyncPolicy::parse("always"), Some(WalSyncPolicy::Always));
        assert_eq!(WalSyncPolicy::parse("never"), Some(WalSyncPolicy::Never));
        assert_eq!(
            WalSyncPolicy::parse("interval"),
            Some(WalSyncPolicy::Interval(64))
        );
        assert_eq!(
            WalSyncPolicy::parse("interval:8"),
            Some(WalSyncPolicy::Interval(8))
        );
        assert_eq!(WalSyncPolicy::parse("interval:0"), None);
        assert_eq!(WalSyncPolicy::parse("sometimes"), None);
        assert_eq!(WalSyncPolicy::Always.sync_every(), 1);
        assert_eq!(WalSyncPolicy::Interval(8).sync_every(), 8);
        assert_eq!(WalSyncPolicy::Never.sync_every(), u64::MAX);
        for p in [
            WalSyncPolicy::Always,
            WalSyncPolicy::Interval(8),
            WalSyncPolicy::Never,
        ] {
            assert_eq!(WalSyncPolicy::parse(&p.name()), Some(p));
        }
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let recs = sample_records();
        let mem = write_log(&recs, 1);
        let out = read_wal(&mem.bytes()).unwrap();
        assert_eq!(out.records, recs);
        assert!(!out.truncated);
        assert_eq!(out.consumed, mem.bytes().len());
    }

    #[test]
    fn torn_tail_at_every_byte_is_tolerated() {
        let recs = sample_records();
        let mem = write_log(&recs, 1);
        let full = mem.bytes();
        for cut in WAL_HEADER_LEN..full.len() {
            let out = read_wal(&full[..cut]).unwrap();
            // The readable prefix is a prefix of the true record stream.
            assert!(out.records.len() < recs.len());
            assert_eq!(out.records[..], recs[..out.records.len()]);
            // A cut at an exact record boundary yields a shorter but
            // well-formed log; anywhere else the torn tail is reported.
            assert_eq!(
                out.truncated,
                cut != out.consumed,
                "cut at {cut} (consumed {})",
                out.consumed
            );
        }
    }

    #[test]
    fn checksum_failure_cuts_the_log() {
        let recs = sample_records();
        let mem = write_log(&recs, 1);
        let mut bytes = mem.bytes();
        // Flip a byte inside the second record's payload.
        let first_len = u32::from_le_bytes(
            bytes[WAL_HEADER_LEN..WAL_HEADER_LEN + 4]
                .try_into()
                .unwrap(),
        ) as usize;
        let second_payload = WAL_HEADER_LEN + FRAME_LEN + first_len + FRAME_LEN;
        bytes[second_payload] ^= 0xff;
        let out = read_wal(&bytes).unwrap();
        assert_eq!(out.records.len(), 1);
        assert!(out.truncated);
    }

    #[test]
    fn bad_header_is_corrupt() {
        assert!(matches!(
            read_wal(b"XXXX\x01\x00"),
            Err(EngineError::Corrupt { .. })
        ));
        assert!(matches!(
            read_wal(b"AWAL\x63\x00"),
            Err(EngineError::Unsupported { .. })
        ));
        assert!(read_wal(b"AW").is_err());
    }

    #[test]
    fn resume_appends_after_existing_records() {
        let recs = sample_records();
        let mem = write_log(&recs[..3], 1);
        let mut w = WalWriter::resume(Box::new(mem.clone()), 3, 2);
        assert_eq!(w.records(), 3);
        for r in &recs[3..] {
            w.append(r).unwrap();
        }
        let out = read_wal(&mem.bytes()).unwrap();
        assert_eq!(out.records, recs);
    }

    #[test]
    fn fsync_lag_tracks_sync_interval() {
        let mem = MemWal::new();
        let mut w = WalWriter::create(Box::new(mem), 3).unwrap();
        w.append(&WalRecord::Tick).unwrap();
        w.append(&WalRecord::Tick).unwrap();
        assert_eq!(w.unsynced(), 2);
        w.append(&WalRecord::Tick).unwrap();
        assert_eq!(w.unsynced(), 0, "third append crossed the interval");
    }

    #[test]
    fn checkpoint_roundtrip_and_tamper_detection() {
        let ck = Checkpoint {
            wal_records: 42,
            t: 17,
            pending: vec![3, 0, 5],
            engine: Some(EngineCheckpoint {
                db: vec![1, 2, 3, 4],
                pending_mods: vec![
                    vec![Modification::Insert(row![1i64])],
                    vec![],
                    vec![Modification::Delete(row![9i64])],
                ],
            }),
        };
        let bytes = ck.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), ck);
        // Any flipped byte is caught by the trailing checksum.
        for i in 0..bytes.len() {
            let mut bad = bytes.to_vec();
            bad[i] ^= 1;
            assert!(Checkpoint::decode(&bad).is_err(), "flip at {i}");
        }
        // Model-backend checkpoints omit the engine payload.
        let model = Checkpoint {
            wal_records: 1,
            t: 1,
            pending: vec![0, 0],
            engine: None,
        };
        assert_eq!(Checkpoint::decode(&model.encode()).unwrap(), model);
    }

    #[test]
    fn wal_tail_segments_resume_without_gap_or_duplicate() {
        let recs = sample_records();
        let mem = write_log(&recs, 1);
        let tail = WalTail::new(Box::new(mem.clone()));
        // Tiny max_bytes forces multi-segment paging; applied-count
        // resume must walk the whole log exactly once.
        let mut applied = Vec::new();
        let mut from = 0u64;
        loop {
            let seg = tail.segment(from, 1).unwrap();
            assert_eq!(seg.from_record, from);
            assert_eq!(seg.leader_records, recs.len() as u64);
            if seg.count == 0 {
                assert!(seg.bytes.is_empty());
                break;
            }
            applied.extend(decode_segment(&seg.bytes).unwrap());
            from += seg.count;
        }
        assert_eq!(applied, recs);
        // Past-the-end subscription is an empty segment, not an error.
        let seg = tail.segment(recs.len() as u64 + 10, 1 << 16).unwrap();
        assert_eq!(seg.count, 0);
        assert_eq!(seg.leader_records, recs.len() as u64);
    }

    #[test]
    fn wal_tail_never_serves_a_torn_record() {
        let recs = sample_records();
        let mem = write_log(&recs, 1);
        let full = mem.bytes();
        for cut in WAL_HEADER_LEN..full.len() {
            mem.truncate(cut);
            let tail = WalTail::new(Box::new(mem.clone()));
            let seg = tail.segment(0, 1 << 20).unwrap();
            let durable = read_wal(&full[..cut]).unwrap().records.len() as u64;
            assert_eq!(seg.leader_records, durable, "cut at {cut}");
            assert_eq!(seg.count, durable);
            assert_eq!(
                decode_segment(&seg.bytes).unwrap(),
                recs[..durable as usize]
            );
            // Restore for the next iteration.
            mem.truncate(0);
            let mut m = mem.clone();
            m.append(&full).unwrap();
        }
    }

    #[test]
    fn corrupted_segment_is_a_hard_error() {
        let recs = sample_records();
        let mem = write_log(&recs, 1);
        let tail = WalTail::new(Box::new(mem));
        let seg = tail.segment(0, 1 << 20).unwrap();
        for i in 0..seg.bytes.len() {
            let mut bad = seg.bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_segment(&bad).is_err(), "flip at byte {i}");
        }
        let torn = &seg.bytes[..seg.bytes.len() - 1];
        assert!(decode_segment(torn).is_err());
    }

    #[test]
    fn file_wal_roundtrip() {
        let dir = std::env::temp_dir().join(format!("aivm-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let recs = sample_records();
        {
            let mut w = WalWriter::create(Box::new(FileWal::create(&path).unwrap()), 2).unwrap();
            for r in &recs[..3] {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        {
            let mut w = WalWriter::resume(Box::new(FileWal::open_append(&path).unwrap()), 3, 2);
            for r in &recs[3..] {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
        }
        let out = read_wal(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(out.records, recs);
        std::fs::remove_dir_all(&dir).ok();
    }
}
