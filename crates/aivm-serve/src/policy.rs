//! Pluggable flush policies for the serving runtime.
//!
//! A [`FlushPolicy`] is consulted once per scheduler tick with the
//! current pending-counts state and returns the batch to flush. The
//! contract mirrors the solver's step-wise [`Policy`](aivm_solver::Policy)
//! execution model, with one difference: a serving runtime has no known
//! refresh horizon `T`, so there is no forced final flush — policies
//! must keep the state non-full forever.
//!
//! Contract (enforced by the runtime):
//!
//! * `reset` is called once before the first `decide`.
//! * `decide(t, pending)` is called with strictly increasing `t` *after*
//!   the tick's arrivals were added to `pending`; the returned action
//!   must be component-wise ≤ `pending` (no overdraw).
//! * The post-action state should satisfy `fits(f(post), C)`; leaving it
//!   full is counted as a constraint violation by the runtime (fresh
//!   reads would then exceed the budget).
//! * Forced full flushes (fresh reads) bypass the policy entirely; the
//!   policy observes them only through the shrunken `pending` on its
//!   next call.

use aivm_core::Counts;
use aivm_solver::{AdaptSchedule, NaivePolicy, OnlineConfig, OnlinePolicy, Policy, PolicyContext};

/// A step-wise flush decision procedure for the live runtime.
pub trait FlushPolicy: Send {
    /// Called once before the run with the policy-visible problem data
    /// (cost functions and budget `C`).
    fn reset(&mut self, ctx: &PolicyContext);

    /// Decides the flush batch at tick `t` given the pending counts
    /// (arrivals of this tick already included). Must not overdraw.
    fn decide(&mut self, t: usize, pending: &Counts) -> Counts;

    /// Short human-readable name for reports and metrics.
    fn name(&self) -> &str;
}

/// The NAIVE policy: flush everything whenever the state is full.
#[derive(Clone, Debug, Default)]
pub struct NaiveFlush(NaivePolicy);

impl NaiveFlush {
    /// Creates a NAIVE flush policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlushPolicy for NaiveFlush {
    fn reset(&mut self, ctx: &PolicyContext) {
        Policy::reset(&mut self.0, ctx);
    }

    fn decide(&mut self, t: usize, pending: &Counts) -> Counts {
        self.0.act(t, pending)
    }

    fn name(&self) -> &str {
        "naive"
    }
}

/// The paper's ONLINE heuristic (§4.3), wrapping
/// [`aivm_solver::OnlinePolicy`]: on a violation, flush the minimal
/// greedy valid action minimizing the amortized cost to date `H`.
#[derive(Clone, Debug, Default)]
pub struct OnlineFlush(OnlinePolicy);

impl OnlineFlush {
    /// Creates an ONLINE flush policy with the default configuration.
    pub fn new() -> Self {
        OnlineFlush(OnlinePolicy::new())
    }

    /// Creates an ONLINE flush policy with an explicit configuration.
    pub fn with_config(config: OnlineConfig) -> Self {
        OnlineFlush(OnlinePolicy::with_config(config))
    }
}

impl FlushPolicy for OnlineFlush {
    fn reset(&mut self, ctx: &PolicyContext) {
        Policy::reset(&mut self.0, ctx);
    }

    fn decide(&mut self, t: usize, pending: &Counts) -> Counts {
        self.0.act(t, pending)
    }

    fn name(&self) -> &str {
        "online"
    }
}

/// Executes a precomputed LGM/ADAPT plan: at tick `t`, flush whatever is
/// pending on the tables the schedule flushed at `t` (cyclic with period
/// `T_0 + 1`, the ADAPT semantics of §4.2).
///
/// The live stream can diverge from the arrivals the plan was optimized
/// for; when a scheduled action would leave the state full, the policy
/// permanently falls back to a freshly reset ONLINE policy from that
/// tick on ([`PlannedFlush::diverged`] reports whether that happened).
#[derive(Clone, Debug)]
pub struct PlannedFlush {
    schedule: AdaptSchedule,
    fallback: OnlinePolicy,
    ctx: Option<PolicyContext>,
    diverged_at: Option<usize>,
}

impl PlannedFlush {
    /// Creates a planned policy from a precomputed schedule.
    pub fn new(schedule: AdaptSchedule) -> Self {
        PlannedFlush {
            schedule,
            fallback: OnlinePolicy::new(),
            ctx: None,
            diverged_at: None,
        }
    }

    /// The tick at which the live trace diverged from the plan and the
    /// ONLINE fallback took over, if it did.
    pub fn diverged(&self) -> Option<usize> {
        self.diverged_at
    }

    /// The wrapped schedule.
    pub fn schedule(&self) -> &AdaptSchedule {
        &self.schedule
    }
}

impl FlushPolicy for PlannedFlush {
    fn reset(&mut self, ctx: &PolicyContext) {
        self.ctx = Some(ctx.clone());
        self.diverged_at = None;
        Policy::reset(&mut self.fallback, ctx);
    }

    fn decide(&mut self, t: usize, pending: &Counts) -> Counts {
        if self.diverged_at.is_some() {
            return self.fallback.act(t, pending);
        }
        let mut q = Counts::zero(pending.len());
        for &i in self.schedule.subset_at(t) {
            q[i] = pending[i];
        }
        let post = pending.checked_sub(&q).expect("greedy flush ≤ pending");
        let ctx = self.ctx.as_ref().expect("reset before decide");
        if ctx.is_full(&post) {
            // The live arrivals outran the plan's assumptions: hand the
            // rest of the run to ONLINE, reset so its rate estimates
            // start from the divergence point rather than stale zeros.
            self.diverged_at = Some(t);
            Policy::reset(&mut self.fallback, ctx);
            return self.fallback.act(t, pending);
        }
        q
    }

    fn name(&self) -> &str {
        "planned"
    }
}

/// Adapts a [`FlushPolicy`] to the solver's [`Policy`] trait so recorded
/// live traces can be re-executed through `aivm-sim`'s replay machinery
/// (which drives solver policies).
#[derive(Clone, Debug)]
pub struct AsSolverPolicy<F>(pub F);

impl<F: FlushPolicy> Policy for AsSolverPolicy<F> {
    fn reset(&mut self, ctx: &PolicyContext) {
        self.0.reset(ctx);
    }

    fn act(&mut self, t: usize, pre_state: &Counts) -> Counts {
        self.0.decide(t, pre_state)
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_core::{Arrivals, CostModel, Instance};

    fn ctx(budget: f64) -> PolicyContext {
        PolicyContext {
            costs: vec![CostModel::linear(1.0, 0.5), CostModel::linear(1.0, 4.0)],
            budget,
        }
    }

    #[test]
    fn naive_flushes_all_when_full() {
        let mut p = NaiveFlush::new();
        p.reset(&ctx(8.0));
        let low = Counts::from_slice(&[1, 1]);
        assert!(p.decide(0, &low).is_zero());
        let high = Counts::from_slice(&[4, 4]);
        assert_eq!(p.decide(1, &high), high);
    }

    #[test]
    fn planned_follows_schedule_then_falls_back() {
        let inst = Instance::new(
            ctx(8.0).costs,
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 20),
            8.0,
        );
        let schedule = AdaptSchedule::precompute(&inst);
        let mut p = PlannedFlush::new(schedule);
        p.reset(&PolicyContext::of(&inst));
        // Replay the plan's own arrivals: never diverges.
        let mut s = Counts::zero(2);
        for t in 0..=20 {
            s.add_assign(&inst.arrivals.at(t));
            let q = p.decide(t, &s);
            s = s.checked_sub(&q).expect("no overdraw");
        }
        assert_eq!(p.diverged(), None);
        // A flood the plan never anticipated triggers the fallback.
        let flood = Counts::from_slice(&[40, 40]);
        let q = p.decide(21, &flood);
        assert!(p.diverged().is_some());
        assert!(!q.is_zero(), "fallback must act on a full state");
    }

    #[test]
    fn adapter_exposes_flush_policy_as_solver_policy() {
        let mut p = AsSolverPolicy(NaiveFlush::new());
        Policy::reset(&mut p, &ctx(8.0));
        assert_eq!(Policy::name(&p), "naive");
        let high = Counts::from_slice(&[4, 4]);
        assert_eq!(Policy::act(&mut p, 0, &high), high);
    }
}
