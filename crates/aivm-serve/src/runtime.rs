//! The synchronous maintenance core.
//!
//! [`MaintenanceRuntime`] is single-threaded and deterministic: ingest
//! events, close arrival windows with [`MaintenanceRuntime::tick`], and
//! serve reads. The threaded [`server`](crate::server) drives one of
//! these from its scheduler loop; tests and benchmarks drive it
//! directly, which is what makes live behaviour reproducible offline.
//!
//! Two backends share the same scheduling logic:
//!
//! * **Model** — counts-only; flushes charge the configured cost
//!   functions but touch no data. For policy tests and throughput
//!   benchmarks.
//! * **Engine** — owns a [`Database`] and a [`MaterializedView`]; DML
//!   ingest applies each modification to the base table and enqueues it
//!   in the view's delta table (arrival-time semantics, §2), and flushes
//!   propagate deltas for real.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::policy::FlushPolicy;
use crate::trace::Trace;
use aivm_core::{fits, total_cost, CostModel, Counts};
use aivm_engine::{Database, EngineError, MaterializedView, Modification, WRow};
use aivm_solver::PolicyContext;
use std::time::Instant;

/// Configuration of a [`MaintenanceRuntime`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-table cost functions (the model the scheduler reasons with).
    pub costs: Vec<CostModel>,
    /// The refresh response-time budget `C`.
    pub budget: f64,
    /// Record every step into a replayable [`Trace`].
    pub record_trace: bool,
    /// Panic on a constraint violation instead of only counting it
    /// (useful in tests; the CI smoke gate checks the counter).
    pub strict: bool,
}

impl ServeConfig {
    /// A config with tracing on and strict mode off.
    pub fn new(costs: Vec<CostModel>, budget: f64) -> Self {
        ServeConfig {
            costs,
            budget,
            record_trace: true,
            strict: false,
        }
    }
}

/// How a view read trades freshness for cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// Return the current materialized `V` without flushing. Free, but
    /// pending modifications are not reflected.
    Stale,
    /// Flush everything pending, then read. By the paper's validity
    /// invariant the flush always costs ≤ `C`.
    Fresh,
}

/// Outcome of a read.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// Materialized rows (engine backend; `None` on the model backend).
    pub rows: Option<Vec<WRow>>,
    /// Pending modifications *not* reflected in `rows` (0 for fresh).
    pub lag: u64,
    /// Model cost of the flush performed to serve this read (0 for
    /// stale).
    pub flush_cost: f64,
    /// Whether this read broke the `≤ C` guarantee (a fresh read served
    /// from a full state a policy should never have left behind).
    pub violated: bool,
}

/// Outcome of one scheduler tick.
#[derive(Clone, Debug)]
pub struct TickReport {
    /// The tick index (policy time `t`).
    pub t: usize,
    /// The action the policy chose (may be zero).
    pub action: Counts,
    /// Model cost charged for the action.
    pub cost: f64,
    /// Whether the post-action state was left full.
    pub violated: bool,
}

enum Backend {
    Model,
    Engine(Box<EngineState>),
}

struct EngineState {
    db: Database,
    view: MaterializedView,
}

/// The synchronous maintenance core. See the module docs.
pub struct MaintenanceRuntime {
    ctx: PolicyContext,
    policy: Box<dyn FlushPolicy>,
    backend: Backend,
    pending: Counts,
    window: Counts,
    t: usize,
    strict: bool,
    metrics: Metrics,
    trace: Option<Trace>,
}

impl MaintenanceRuntime {
    /// Creates a counts-only (model-backed) runtime.
    pub fn model(cfg: ServeConfig, mut policy: Box<dyn FlushPolicy>) -> Self {
        let n = cfg.costs.len();
        let ctx = PolicyContext {
            costs: cfg.costs.clone(),
            budget: cfg.budget,
        };
        policy.reset(&ctx);
        MaintenanceRuntime {
            trace: cfg.record_trace.then(|| Trace::new(cfg.costs, cfg.budget)),
            ctx,
            policy,
            backend: Backend::Model,
            pending: Counts::zero(n),
            window: Counts::zero(n),
            t: 0,
            strict: cfg.strict,
            metrics: Metrics::new(n),
        }
    }

    /// Creates an engine-backed runtime owning `db` and `view`. The
    /// cost vector must have one entry per base table of the view, in
    /// view order.
    pub fn engine(
        cfg: ServeConfig,
        policy: Box<dyn FlushPolicy>,
        db: Database,
        view: MaterializedView,
    ) -> Result<Self, EngineError> {
        if cfg.costs.len() != view.n() {
            return Err(EngineError::Maintenance {
                message: format!(
                    "cost vector arity {} != view tables {}",
                    cfg.costs.len(),
                    view.n()
                ),
            });
        }
        let mut rt = Self::model(cfg, policy);
        rt.backend = Backend::Engine(Box::new(EngineState { db, view }));
        Ok(rt)
    }

    /// Number of base tables.
    pub fn n(&self) -> usize {
        self.ctx.n()
    }

    /// The current pending-counts state `s`.
    pub fn pending(&self) -> &Counts {
        &self.pending
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Position of a base table within the view, by name (engine
    /// backend only; `None` on the model backend or unknown names).
    pub fn table_position(&self, name: &str) -> Option<usize> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => e.view.table_position(name),
        }
    }

    /// Ingests `k` anonymous modification events for `table` (model
    /// backend only — the engine backend needs the actual rows).
    ///
    /// # Panics
    ///
    /// On an engine-backed runtime, or when `table` is out of range.
    pub fn ingest_count(&mut self, table: usize, k: u64) {
        assert!(
            matches!(self.backend, Backend::Model),
            "engine-backed runtimes ingest modifications, not bare counts"
        );
        self.pending[table] += k;
        self.window[table] += k;
        self.metrics.events_ingested += k;
    }

    /// Ingests one DML event for the `table`-th base table: applies it
    /// to the base table and enqueues it in the view's delta table
    /// (engine backend only).
    pub fn ingest_dml(&mut self, table: usize, m: Modification) -> Result<(), EngineError> {
        let e = match &mut self.backend {
            Backend::Model => {
                return Err(EngineError::Maintenance {
                    message: "model-backed runtimes ingest counts, not modifications".into(),
                })
            }
            Backend::Engine(e) => e,
        };
        e.view.apply_and_enqueue(&mut e.db, table, m)?;
        self.pending[table] += 1;
        self.window[table] += 1;
        self.metrics.events_ingested += 1;
        Ok(())
    }

    /// Closes the current arrival window and runs one scheduler step:
    /// consults the policy, executes its flush, and checks the
    /// post-action state against the budget.
    pub fn tick(&mut self) -> Result<TickReport, EngineError> {
        let t = self.t;
        let zero = Counts::zero(self.n());
        let arrivals = std::mem::replace(&mut self.window, zero);
        let action = self.policy.decide(t, &self.pending);
        assert!(
            action.dominated_by(&self.pending),
            "policy overdraw at t = {t}: action {action:?} > pending {:?}",
            self.pending
        );
        let cost = self.execute_flush(&action)?;
        let violated = self.ctx.is_full(&self.pending);
        self.finish_step(arrivals, action.clone(), false, cost, violated, t);
        self.metrics.ticks += 1;
        Ok(TickReport {
            t,
            action,
            cost,
            violated,
        })
    }

    /// Serves a read, measuring end-to-end latency from `enqueued`.
    ///
    /// A fresh read first runs one normal policy tick (the paper's model
    /// adds the step's arrivals *before* the action at `t`, so the
    /// policy gets to see everything that arrived since the last tick)
    /// and then force-flushes the post-action remainder — a *forced*
    /// step recorded in the trace but never shown to the policy. The
    /// forced flush is the refresh the constraint `C` governs: any
    /// correct policy leaves the post-action state non-full, so it
    /// always costs ≤ `C`.
    pub fn read_at(
        &mut self,
        mode: ReadMode,
        enqueued: Instant,
    ) -> Result<ReadResult, EngineError> {
        match mode {
            ReadMode::Stale => {
                self.metrics.stale_reads += 1;
                Ok(ReadResult {
                    rows: self.current_rows(),
                    lag: self.pending.total(),
                    flush_cost: 0.0,
                    violated: false,
                })
            }
            ReadMode::Fresh => {
                self.tick()?;
                let t = self.t;
                let action = self.pending.clone();
                let cost = self.ctx.refresh_cost(&action);
                // The validity invariant: the post-action state is never
                // full, so the refresh that empties it fits C.
                let violated = !fits(cost, self.ctx.budget);
                let flush_cost = self.execute_flush(&action)?;
                debug_assert!((flush_cost - cost).abs() < 1e-9);
                self.finish_step(Counts::zero(self.n()), action, true, cost, violated, t);
                self.metrics.fresh_reads += 1;
                self.metrics
                    .refresh_latency_ns
                    .record(enqueued.elapsed().as_nanos() as u64);
                Ok(ReadResult {
                    rows: self.current_rows(),
                    lag: 0,
                    flush_cost: cost,
                    violated,
                })
            }
        }
    }

    /// [`MaintenanceRuntime::read_at`] measured from now.
    pub fn read(&mut self, mode: ReadMode) -> Result<ReadResult, EngineError> {
        self.read_at(mode, Instant::now())
    }

    /// A snapshot of the runtime's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The recorded trace so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Consumes the runtime, returning the recorded trace.
    pub fn into_trace(self) -> Option<Trace> {
        self.trace
    }

    /// Executes a flush action against the backend, returning its model
    /// cost.
    fn execute_flush(&mut self, action: &Counts) -> Result<f64, EngineError> {
        let cost = total_cost(&self.ctx.costs, action);
        if let Backend::Engine(e) = &mut self.backend {
            if !action.is_zero() {
                let counts: Vec<u64> = (0..action.len()).map(|i| action[i]).collect();
                e.view.flush(&e.db, &counts)?;
            }
        }
        self.pending = self
            .pending
            .checked_sub(action)
            .expect("flush ≤ pending checked above");
        Ok(cost)
    }

    fn finish_step(
        &mut self,
        arrivals: Counts,
        action: Counts,
        forced: bool,
        cost: f64,
        violated: bool,
        t: usize,
    ) {
        self.metrics.record_flush(&action, cost);
        if violated {
            self.metrics.constraint_violations += 1;
            if self.strict {
                panic!(
                    "constraint violation at t = {t}: refresh cost exceeds budget {}",
                    self.ctx.budget
                );
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.push(arrivals, action, forced);
        }
        self.t = t + 1;
    }

    fn current_rows(&self) -> Option<Vec<WRow>> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => Some(e.view.result()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NaiveFlush, OnlineFlush};
    use aivm_core::CostModel;

    fn model_runtime(policy: Box<dyn FlushPolicy>) -> MaintenanceRuntime {
        let cfg = ServeConfig::new(
            vec![CostModel::linear(0.05, 0.2), CostModel::linear(0.02, 3.0)],
            6.0,
        );
        MaintenanceRuntime::model(cfg, policy)
    }

    #[test]
    fn naive_keeps_state_under_budget() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        for _ in 0..200 {
            rt.ingest_count(0, 2);
            rt.ingest_count(1, 1);
            let report = rt.tick().unwrap();
            assert!(!report.violated);
        }
        let m = rt.metrics();
        assert_eq!(m.constraint_violations, 0);
        assert_eq!(m.events_ingested, 600);
        assert!(m.flush_count > 0);
    }

    #[test]
    fn fresh_read_empties_pending_and_fits_budget() {
        let mut rt = model_runtime(Box::new(OnlineFlush::new()));
        for i in 0..50 {
            rt.ingest_count(0, 1);
            rt.ingest_count(1, 1);
            rt.tick().unwrap();
            if i % 7 == 0 {
                let r = rt.read(ReadMode::Fresh).unwrap();
                assert!(!r.violated);
                assert!(r.flush_cost <= 6.0 + 1e-9);
                assert_eq!(r.lag, 0);
                assert!(rt.pending().is_zero());
            }
        }
        let m = rt.metrics();
        assert_eq!(m.constraint_violations, 0);
        assert_eq!(m.fresh_reads, 8);
        assert_eq!(m.refresh_latency_ns.count, 8);
    }

    #[test]
    fn stale_read_reports_lag_without_flushing() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        rt.ingest_count(0, 3);
        let r = rt.read(ReadMode::Stale).unwrap();
        assert_eq!(r.lag, 3);
        assert_eq!(r.flush_cost, 0.0);
        assert_eq!(rt.pending().total(), 3);
    }

    #[test]
    fn trace_records_every_step_with_forced_flags() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        rt.ingest_count(0, 1);
        rt.tick().unwrap();
        rt.ingest_count(1, 2);
        rt.read(ReadMode::Fresh).unwrap();
        // Steps: first tick, then the fresh read's embedded policy tick,
        // then its forced full flush.
        let trace = rt.into_trace().expect("tracing on");
        assert_eq!(trace.steps.len(), 3);
        assert!(!trace.steps[0].forced);
        assert!(!trace.steps[1].forced);
        assert_eq!(trace.steps[1].arrivals, Counts::from_slice(&[0, 2]));
        assert!(trace.steps[2].forced);
        assert!(trace.steps[2].arrivals.is_zero());
        assert_eq!(trace.steps[2].action.total(), 3);
    }

    #[test]
    #[should_panic(expected = "constraint violation")]
    fn strict_mode_panics_when_policy_leaves_state_full() {
        struct Lazy;
        impl FlushPolicy for Lazy {
            fn reset(&mut self, _ctx: &PolicyContext) {}
            fn decide(&mut self, _t: usize, pending: &Counts) -> Counts {
                Counts::zero(pending.len())
            }
            fn name(&self) -> &str {
                "lazy"
            }
        }
        let mut cfg = ServeConfig::new(vec![CostModel::linear(1.0, 0.0)], 2.0);
        cfg.strict = true;
        let mut rt = MaintenanceRuntime::model(cfg, Box::new(Lazy));
        rt.ingest_count(0, 10);
        let _ = rt.tick();
    }
}
