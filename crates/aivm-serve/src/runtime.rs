//! The synchronous maintenance core.
//!
//! [`MaintenanceRuntime`] is single-threaded and deterministic: ingest
//! events, close arrival windows with [`MaintenanceRuntime::tick`], and
//! serve reads. The threaded [`server`](crate::server) drives one of
//! these from its scheduler loop; tests and benchmarks drive it
//! directly, which is what makes live behaviour reproducible offline.
//!
//! Two backends share the same scheduling logic:
//!
//! * **Model** — counts-only; flushes charge the configured cost
//!   functions but touch no data. For policy tests and throughput
//!   benchmarks.
//! * **Engine** — owns a [`Database`] and a [`MaterializedView`]; DML
//!   ingest applies each modification to the base table and enqueues it
//!   in the view's delta table (arrival-time semantics, §2), and flushes
//!   propagate deltas for real.
//!
//! ## Durability
//!
//! With a [`WalWriter`] attached, every state-changing event — ingest,
//! tick, forced flush — is appended to the log *after* it applied.
//! Because scheduling is a deterministic function of the event
//! sequence, [`MaintenanceRuntime::recover`] rebuilds the exact state
//! of an uncrashed run: it restores data from the latest
//! [`Checkpoint`] (or the genesis database), *shadow-replays* the
//! checkpointed log prefix in counts-only mode to rebuild policy
//! state, metrics and trace, then replays the log tail against the
//! engine for real.
//!
//! ## Graceful degradation
//!
//! The runtime never `panic!`s on a misbehaving policy. Decisions run
//! under `catch_unwind`; a panicking or overdrawing policy is
//! permanently demoted to [`NaiveFlush`] (the one policy that is valid
//! by construction), counted in metrics. An injected flush failure
//! (which models a transient pre-write error) demotes the same way and
//! skips the flush; a *real* engine flush error propagates, because
//! the view state can no longer be trusted. Sustained flush-cost
//! overruns beyond [`DRIFT_RATIO`] trigger a cost-model recalibration
//! after [`RECALIBRATE_AFTER`] consecutive overruns. Strict mode turns
//! constraint violations into typed [`EngineError::Maintenance`]
//! errors instead of panics.

use crate::fault::FaultPlan;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::policy::{FlushPolicy, NaiveFlush};
use crate::trace::Trace;
use crate::wal::{read_wal, Checkpoint, EngineCheckpoint, WalRecord, WalWriter};
use aivm_core::{fits, total_cost, CostModel, Counts};
use aivm_engine::{Database, EngineError, MaterializedView, Modification, ViewSnapshot, WRow};
use aivm_solver::PolicyContext;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Measured-vs-estimated flush cost ratio beyond which a tick counts as
/// a cost overrun.
pub const DRIFT_RATIO: f64 = 1.5;

/// Consecutive overruns that trigger a cost-model recalibration.
pub const RECALIBRATE_AFTER: u32 = 3;

/// Configuration of a [`MaintenanceRuntime`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-table cost functions (the model the scheduler reasons with).
    pub costs: Vec<CostModel>,
    /// The refresh response-time budget `C`.
    pub budget: f64,
    /// Record every step into a replayable [`Trace`].
    pub record_trace: bool,
    /// Return a typed error from `tick` on a constraint violation
    /// instead of only counting it (useful in tests; the CI smoke gate
    /// checks the counter).
    pub strict: bool,
    /// Worker threads for delta propagation inside engine flushes
    /// (see [`MaterializedView::set_flush_threads`]). `1` = serial.
    pub flush_threads: usize,
}

impl ServeConfig {
    /// A config with tracing on, strict mode off, serial flushes.
    pub fn new(costs: Vec<CostModel>, budget: f64) -> Self {
        ServeConfig {
            costs,
            budget,
            record_trace: true,
            strict: false,
            flush_threads: 1,
        }
    }

    /// Sets the flush propagation thread count (builder style).
    pub fn with_flush_threads(mut self, threads: usize) -> Self {
        self.flush_threads = threads.max(1);
        self
    }
}

/// How a view read trades freshness for cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadMode {
    /// Return the current materialized `V` without flushing. Free, but
    /// pending modifications are not reflected.
    Stale,
    /// Flush everything pending, then read. By the paper's validity
    /// invariant the flush always costs ≤ `C`.
    Fresh,
}

/// Outcome of a read.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// Materialized rows (engine backend; `None` on the model backend).
    pub rows: Option<Vec<WRow>>,
    /// Pending modifications *not* reflected in `rows` (0 for fresh).
    pub lag: u64,
    /// Model cost of the flush performed to serve this read (0 for
    /// stale).
    pub flush_cost: f64,
    /// Whether this read broke the `≤ C` guarantee (a fresh read served
    /// from a full state a policy should never have left behind).
    pub violated: bool,
}

/// Outcome of one scheduler tick.
#[derive(Clone, Debug)]
pub struct TickReport {
    /// The tick index (policy time `t`).
    pub t: usize,
    /// The action the policy chose (may be zero).
    pub action: Counts,
    /// Model cost charged for the action.
    pub cost: f64,
    /// Whether the post-action state was left full.
    pub violated: bool,
}

enum Backend {
    Model,
    Engine(Box<EngineState>),
}

struct EngineState {
    db: Database,
    view: MaterializedView,
}

/// The synchronous maintenance core. See the module docs.
pub struct MaintenanceRuntime {
    ctx: PolicyContext,
    /// The cost functions as configured, before any recalibration —
    /// the stand-in for "true" flush costs when simulating drift.
    original_costs: Vec<CostModel>,
    policy: Box<dyn FlushPolicy>,
    backend: Backend,
    pending: Counts,
    window: Counts,
    t: usize,
    strict: bool,
    metrics: Metrics,
    trace: Option<Trace>,
    wal: Option<WalWriter>,
    faults: FaultPlan,
    demoted: bool,
    overrun_streak: u32,
    rebalances: u64,
}

impl MaintenanceRuntime {
    /// Creates a counts-only (model-backed) runtime.
    pub fn model(cfg: ServeConfig, mut policy: Box<dyn FlushPolicy>) -> Self {
        let n = cfg.costs.len();
        let ctx = PolicyContext {
            costs: cfg.costs.clone(),
            budget: cfg.budget,
        };
        policy.reset(&ctx);
        MaintenanceRuntime {
            trace: cfg
                .record_trace
                .then(|| Trace::new(cfg.costs.clone(), cfg.budget)),
            original_costs: cfg.costs,
            ctx,
            policy,
            backend: Backend::Model,
            pending: Counts::zero(n),
            window: Counts::zero(n),
            t: 0,
            strict: cfg.strict,
            metrics: Metrics::new(n),
            wal: None,
            faults: FaultPlan::none(),
            demoted: false,
            overrun_streak: 0,
            rebalances: 0,
        }
    }

    /// Creates an engine-backed runtime owning `db` and `view`. The
    /// cost vector must have one entry per base table of the view, in
    /// view order.
    pub fn engine(
        cfg: ServeConfig,
        policy: Box<dyn FlushPolicy>,
        db: Database,
        mut view: MaterializedView,
    ) -> Result<Self, EngineError> {
        if cfg.costs.len() != view.n() {
            return Err(EngineError::Maintenance {
                message: format!(
                    "cost vector arity {} != view tables {}",
                    cfg.costs.len(),
                    view.n()
                ),
            });
        }
        view.set_flush_threads(cfg.flush_threads);
        // The serving stack reads Stale from flush-boundary snapshots,
        // so publication must be on however the view was constructed.
        view.set_snapshot_publishing(true);
        let mut rt = Self::model(cfg, policy);
        rt.backend = Backend::Engine(Box::new(EngineState { db, view }));
        Ok(rt)
    }

    /// Rebuilds an engine-backed runtime from a WAL image.
    ///
    /// Three phases:
    ///
    /// 1. **Shadow replay** — the log prefix covered by `checkpoint`
    ///    re-runs in counts-only mode: every tick consults the (fresh)
    ///    policy exactly as the original run did, rebuilding policy
    ///    state, metrics, trace and accumulated cost without touching
    ///    data. The resulting pending counts must match the checkpoint
    ///    (else the artifacts disagree and recovery fails as
    ///    [`EngineError::Corrupt`]).
    /// 2. **State restore** — database and pending delta tables come
    ///    from the checkpoint (the database snapshot already reflects
    ///    *every* logged DML up to the checkpoint, because arrivals
    ///    apply immediately under §2 semantics); `make_view`
    ///    reconstructs the view definition, which the codec does not
    ///    serialize. With no checkpoint, `genesis_db` — the database as
    ///    it was when the WAL was created — seeds phase 3 instead.
    /// 3. **Engine replay** — the log tail past the checkpoint replays
    ///    for real: DML applies to base tables, ticks flush.
    ///
    /// Determinism makes this exact: a recovered runtime reproduces the
    /// uncrashed run's view checksum, pending counts, trace and cost
    /// bit-for-bit, which `repro chaos` asserts at every kill index.
    /// The returned runtime has no WAL attached; call
    /// [`MaintenanceRuntime::attach_wal`] to resume logging.
    pub fn recover(
        cfg: ServeConfig,
        policy: Box<dyn FlushPolicy>,
        wal_bytes: &[u8],
        checkpoint: Option<&Checkpoint>,
        genesis_db: Database,
        make_view: &dyn Fn(&Database) -> Result<MaterializedView, EngineError>,
    ) -> Result<Self, EngineError> {
        let corrupt = |message: String| EngineError::Corrupt {
            context: "recovery".into(),
            offset: 0,
            message,
        };
        let outcome = read_wal(wal_bytes)?;
        let records = outcome.records;
        let prefix = match checkpoint {
            Some(ck) => {
                let covered = ck.wal_records as usize;
                if covered > records.len() {
                    return Err(corrupt(format!(
                        "checkpoint covers {covered} wal records but only {} are readable",
                        records.len()
                    )));
                }
                covered
            }
            None => 0,
        };
        let flush_threads = cfg.flush_threads;
        let mut rt = MaintenanceRuntime::model(cfg, policy);
        for rec in &records[..prefix] {
            rt.replay_shadow(rec)?;
        }
        // Install the data state at the checkpoint position.
        let state = match checkpoint {
            Some(ck) => {
                if rt.t as u64 != ck.t {
                    return Err(corrupt(format!(
                        "shadow replay reached t = {} but checkpoint says t = {}",
                        rt.t, ck.t
                    )));
                }
                if ck.pending.len() != rt.n()
                    || ck
                        .pending
                        .iter()
                        .enumerate()
                        .any(|(i, &p)| rt.pending[i] != p)
                {
                    return Err(corrupt(format!(
                        "shadow replay pending {:?} disagrees with checkpoint {:?}",
                        rt.pending, ck.pending
                    )));
                }
                let EngineCheckpoint { db, pending_mods } = ck
                    .engine
                    .as_ref()
                    .ok_or_else(|| corrupt("checkpoint has no engine payload".into()))?;
                let db = aivm_engine::restore(bytes::Bytes::from(db.as_slice()))?;
                let mut view = make_view(&db)?;
                view.set_flush_threads(flush_threads);
                view.set_snapshot_publishing(true);
                view.restore_pending(&db, pending_mods.clone())?;
                EngineState { db, view }
            }
            None => {
                let mut view = make_view(&genesis_db)?;
                view.set_flush_threads(flush_threads);
                view.set_snapshot_publishing(true);
                EngineState {
                    db: genesis_db,
                    view,
                }
            }
        };
        if state.view.n() != rt.n() {
            return Err(corrupt(format!(
                "recovered view has {} tables, config has {}",
                state.view.n(),
                rt.n()
            )));
        }
        rt.backend = Backend::Engine(Box::new(state));
        // Replay the tail for real.
        for rec in &records[prefix..] {
            rt.replay_engine(rec)?;
        }
        rt.metrics.recoveries += 1;
        Ok(rt)
    }

    /// Applies one log record in counts-only (shadow) mode.
    fn replay_shadow(&mut self, rec: &WalRecord) -> Result<(), EngineError> {
        let bounds = |table: usize, n: usize| {
            if table >= n {
                Err(EngineError::Corrupt {
                    context: "wal".into(),
                    offset: 0,
                    message: format!("record table {table} out of range for {n} tables"),
                })
            } else {
                Ok(())
            }
        };
        match rec {
            WalRecord::Dml { table, .. } => {
                bounds(*table, self.n())?;
                self.pending[*table] += 1;
                self.window[*table] += 1;
                self.metrics.events_ingested += 1;
            }
            WalRecord::Count { table, k } => {
                bounds(*table, self.n())?;
                self.pending[*table] += k;
                self.window[*table] += k;
                self.metrics.events_ingested += k;
            }
            WalRecord::Tick => {
                self.tick()?;
            }
            WalRecord::Forced => {
                self.forced_refresh()?;
            }
            WalRecord::SetBudget { budget } => {
                self.set_budget(*budget)?;
            }
            WalRecord::ForcedView { .. } => {
                return Err(EngineError::Corrupt {
                    context: "wal".into(),
                    offset: 0,
                    message: "registry record in a single-view log".into(),
                })
            }
        }
        Ok(())
    }

    /// Applies one log record against the engine backend.
    fn replay_engine(&mut self, rec: &WalRecord) -> Result<(), EngineError> {
        match rec {
            WalRecord::Dml { table, m } => self.ingest_dml(*table, m.clone()),
            WalRecord::Count { .. } => Err(EngineError::Corrupt {
                context: "wal".into(),
                offset: 0,
                message: "counts-only record in an engine-backed log".into(),
            }),
            WalRecord::Tick => self.tick().map(|_| ()),
            WalRecord::Forced => self.forced_refresh().map(|_| ()),
            WalRecord::SetBudget { budget } => self.set_budget(*budget),
            WalRecord::ForcedView { .. } => Err(EngineError::Corrupt {
                context: "wal".into(),
                offset: 0,
                message: "registry record in a single-view log".into(),
            }),
        }
    }

    /// Applies one replicated log record to this (engine-backed)
    /// runtime — the follower path of WAL tail-streaming.
    ///
    /// Semantically identical to the engine-replay phase of
    /// [`MaintenanceRuntime::recover`], but incremental: a follower
    /// applies records as segments arrive instead of replaying a whole
    /// image at once. With a WAL of its own attached, each applied
    /// record is re-logged (`ingest_dml`/`tick`/`forced_refresh` log
    /// after applying), so the follower's log mirrors the leader's and
    /// the follower is itself recoverable and promotable.
    pub fn apply_record(&mut self, rec: &WalRecord) -> Result<(), EngineError> {
        self.replay_engine(rec)
    }

    /// Attaches a write-ahead log; every subsequent state-changing
    /// event is appended to it.
    pub fn attach_wal(&mut self, wal: WalWriter) {
        self.wal = Some(wal);
    }

    /// The refresh budget `C` currently in force.
    pub fn budget(&self) -> f64 {
        self.ctx.budget
    }

    /// Changes the refresh budget `C` mid-run — the shard coordinator's
    /// rebalancing hook. The policy is re-armed with the new context,
    /// so its internal rate/amortization estimates restart from this
    /// tick (the same semantics as recovery hand-off). The change is
    /// WAL-logged: `Tick` records carry no action, so replay must see
    /// the same budget at every tick to reproduce the live flush
    /// schedule. A bitwise-unchanged budget is a no-op, keeping the log
    /// free of idle coordinator epochs.
    pub fn set_budget(&mut self, budget: f64) -> Result<(), EngineError> {
        if budget.to_bits() == self.ctx.budget.to_bits() {
            return Ok(());
        }
        if !(budget.is_finite() && budget > 0.0) {
            return Err(EngineError::Maintenance {
                message: format!("refresh budget must be finite and positive, got {budget}"),
            });
        }
        self.ctx.budget = budget;
        self.policy.reset(&self.ctx);
        self.rebalances += 1;
        self.wal_log(WalRecord::SetBudget { budget })?;
        Ok(())
    }

    /// Installs a fault-injection plan (see [`FaultPlan`]).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Records appended to the attached WAL (0 when none is attached).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map(|w| w.records()).unwrap_or(0)
    }

    /// Forces durability of the attached WAL (no-op when none).
    pub fn sync_wal(&mut self) -> Result<(), EngineError> {
        match &mut self.wal {
            Some(w) => w.sync(),
            None => Ok(()),
        }
    }

    /// Captures a checkpoint of the current state, tagged with the
    /// current WAL position. Meaningful at event boundaries (between
    /// ingests/ticks), which is the only place the scheduler takes
    /// them.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            wal_records: self.wal_records(),
            t: self.t as u64,
            pending: self.pending.iter().collect(),
            engine: match &self.backend {
                Backend::Model => None,
                Backend::Engine(e) => Some(EngineCheckpoint {
                    db: aivm_engine::snapshot(&e.db).to_vec(),
                    pending_mods: e.view.pending_snapshot(),
                }),
            },
        }
    }

    /// Content checksum of the materialized view (engine backend only).
    pub fn view_checksum(&self) -> Option<u64> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => Some(e.view.result_checksum()),
        }
    }

    /// The view's current immutable flush-boundary snapshot (engine
    /// backend only). Cloning the `Arc` is cheap; the snapshot never
    /// mutates, so the caller can hand it to other threads and serve
    /// stale reads from it without coming back here.
    pub fn view_snapshot(&self) -> Option<Arc<ViewSnapshot>> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => Some(e.view.snapshot()),
        }
    }

    /// The view's cumulative maintenance counters (engine backend
    /// only). `exec.scan_fallbacks` must stay 0 on auto-indexed views —
    /// the TPC-R repro gates on it.
    pub fn maintenance_stats(&self) -> Option<&aivm_engine::MaintenanceStats> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => Some(&e.view.stats),
        }
    }

    /// Content checksum of the database (engine backend only).
    pub fn db_checksum(&self) -> Option<u64> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => Some(e.db.content_checksum()),
        }
    }

    /// The live database (engine backend only). Equivalence and chaos
    /// harnesses use it to evaluate the view definition directly over
    /// the base tables and compare against the maintained result.
    pub fn database(&self) -> Option<&aivm_engine::Database> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => Some(&e.db),
        }
    }

    /// Number of base tables.
    pub fn n(&self) -> usize {
        self.ctx.n()
    }

    /// The current pending-counts state `s`.
    pub fn pending(&self) -> &Counts {
        &self.pending
    }

    /// The active policy's name (`"naive"` after a demotion).
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Whether the original policy was demoted to [`NaiveFlush`].
    pub fn demoted(&self) -> bool {
        self.demoted
    }

    /// Position of a base table within the view, by name (engine
    /// backend only; `None` on the model backend or unknown names).
    pub fn table_position(&self, name: &str) -> Option<usize> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => e.view.table_position(name),
        }
    }

    /// Ingests `k` anonymous modification events for `table` (model
    /// backend only — the engine backend needs the actual rows).
    ///
    /// # Panics
    ///
    /// On an engine-backed runtime, or when `table` is out of range.
    pub fn ingest_count(&mut self, table: usize, k: u64) {
        assert!(
            matches!(self.backend, Backend::Model),
            "engine-backed runtimes ingest modifications, not bare counts"
        );
        self.pending[table] += k;
        self.window[table] += k;
        self.metrics.events_ingested += k;
        if let Some(w) = &mut self.wal {
            // Counts-only runtimes are test/bench vehicles; a WAL
            // failure here still surfaces, via the metrics error count.
            if w.append(&WalRecord::Count { table, k }).is_err() {
                self.metrics.wal_errors += 1;
            }
        }
    }

    /// Ingests one DML event for the `table`-th base table: applies it
    /// to the base table and enqueues it in the view's delta table
    /// (engine backend only). On success the event is WAL-logged; a
    /// failed apply changes nothing and is safe to retry or drop.
    pub fn ingest_dml(&mut self, table: usize, m: Modification) -> Result<(), EngineError> {
        let e = match &mut self.backend {
            Backend::Model => {
                return Err(EngineError::Maintenance {
                    message: "model-backed runtimes ingest counts, not modifications".into(),
                })
            }
            Backend::Engine(e) => e,
        };
        e.view.apply_and_enqueue(&mut e.db, table, m.clone())?;
        self.pending[table] += 1;
        self.window[table] += 1;
        self.metrics.events_ingested += 1;
        self.wal_log(WalRecord::Dml { table, m })?;
        Ok(())
    }

    /// Closes the current arrival window and runs one scheduler step:
    /// consults the policy (under `catch_unwind`, demoting it on a
    /// panic or overdraw), executes its flush, checks the post-action
    /// state against the budget, and tracks cost drift.
    pub fn tick(&mut self) -> Result<TickReport, EngineError> {
        let t = self.t;
        let zero = Counts::zero(self.n());
        let arrivals = std::mem::replace(&mut self.window, zero);
        let mut action = self.decide_guarded(t);
        let cost;
        if self.faults.flush_fails(t) {
            self.faults.flush_error_at = None;
            // Injected flush failure: models a transient error surfaced
            // *before* any state mutation. The tick degrades to a
            // no-op flush and the policy is demoted — its next decision
            // will be made by NaiveFlush against the grown backlog.
            self.metrics.flush_errors += 1;
            self.demote(t);
            action = Counts::zero(self.n());
            cost = 0.0;
        } else {
            cost = self.execute_flush(&action)?;
        }
        self.track_drift(t, &action, cost);
        let violated = self.ctx.is_full(&self.pending);
        self.metrics.ticks += 1;
        self.finish_step(arrivals, action.clone(), false, cost, violated, t)?;
        self.wal_log(WalRecord::Tick)?;
        Ok(TickReport {
            t,
            action,
            cost,
            violated,
        })
    }

    /// Runs the policy under `catch_unwind`. A panic (real or injected)
    /// or an overdrawing action permanently demotes to [`NaiveFlush`]
    /// and the naive decision is used instead.
    fn decide_guarded(&mut self, t: usize) -> Counts {
        let inject = self.faults.policy_panics(t);
        if inject {
            self.faults.policy_panic_at = None;
        }
        let pending = &self.pending;
        let policy = &mut self.policy;
        let decided = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected policy fault at t = {t}");
            }
            policy.decide(t, pending)
        }));
        match decided {
            Ok(a) if a.len() == self.n() && a.dominated_by(&self.pending) => return a,
            Ok(_) | Err(_) => {}
        }
        // The policy panicked mid-decision (its internal state can no
        // longer be trusted) or overdrew. Demote and re-decide.
        self.demote(t);
        let fallback = self.policy.decide(t, &self.pending);
        if fallback.len() == self.n() && fallback.dominated_by(&self.pending) {
            fallback
        } else {
            Counts::zero(self.n())
        }
    }

    /// Permanently replaces the policy with a freshly reset
    /// [`NaiveFlush`] (idempotent; counted once).
    fn demote(&mut self, _t: usize) {
        if self.demoted {
            return;
        }
        self.demoted = true;
        self.metrics.policy_demotions += 1;
        let mut naive: Box<dyn FlushPolicy> = Box::new(NaiveFlush::new());
        naive.reset(&self.ctx);
        self.policy = naive;
    }

    /// Compares the tick's "measured" flush cost (the original cost
    /// model, times any injected overrun factor) against the estimate
    /// the scheduler charged. A sustained drift beyond [`DRIFT_RATIO`]
    /// recalibrates the cost model in place: every cost function is
    /// scaled by the observed ratio and the policy is reset against the
    /// updated context.
    fn track_drift(&mut self, t: usize, action: &Counts, estimated: f64) {
        if action.is_zero() || estimated <= 0.0 {
            return;
        }
        let measured = total_cost(&self.original_costs, action) * self.faults.overrun_factor(t);
        if measured > estimated * DRIFT_RATIO {
            self.metrics.cost_overruns += 1;
            self.overrun_streak += 1;
            if self.overrun_streak >= RECALIBRATE_AFTER {
                let factor = measured / estimated;
                self.ctx.costs = self.ctx.costs.iter().map(|c| c.scaled(factor)).collect();
                self.policy.reset(&self.ctx);
                self.metrics.recalibrations += 1;
                self.overrun_streak = 0;
            }
        } else {
            self.overrun_streak = 0;
        }
    }

    /// The forced full flush that completes a fresh read (and replays
    /// `Forced` log records): empties pending at refresh cost, bypassing
    /// the policy.
    fn forced_refresh(&mut self) -> Result<(f64, bool), EngineError> {
        let t = self.t;
        let action = self.pending.clone();
        let cost = self.ctx.refresh_cost(&action);
        // The validity invariant: the post-action state is never full,
        // so the refresh that empties it fits C.
        let violated = !fits(cost, self.ctx.budget);
        let flush_cost = self.execute_flush(&action)?;
        debug_assert!((flush_cost - cost).abs() < 1e-9);
        self.metrics.fresh_reads += 1;
        self.finish_step(Counts::zero(self.n()), action, true, cost, violated, t)?;
        self.wal_log(WalRecord::Forced)?;
        Ok((cost, violated))
    }

    /// Serves a read, measuring end-to-end latency from `enqueued`.
    ///
    /// A fresh read first runs one normal policy tick (the paper's model
    /// adds the step's arrivals *before* the action at `t`, so the
    /// policy gets to see everything that arrived since the last tick)
    /// and then force-flushes the post-action remainder — a *forced*
    /// step recorded in the trace but never shown to the policy. The
    /// forced flush is the refresh the constraint `C` governs: any
    /// correct policy leaves the post-action state non-full, so it
    /// always costs ≤ `C`.
    pub fn read_at(
        &mut self,
        mode: ReadMode,
        enqueued: Instant,
    ) -> Result<ReadResult, EngineError> {
        match mode {
            ReadMode::Stale => {
                self.metrics.stale_reads += 1;
                Ok(ReadResult {
                    rows: self.current_rows(),
                    lag: self.pending.total(),
                    flush_cost: 0.0,
                    violated: false,
                })
            }
            ReadMode::Fresh => {
                self.tick()?;
                let (cost, violated) = self.forced_refresh()?;
                self.metrics
                    .refresh_latency_ns
                    .record(enqueued.elapsed().as_nanos() as u64);
                Ok(ReadResult {
                    rows: self.current_rows(),
                    lag: 0,
                    flush_cost: cost,
                    violated,
                })
            }
        }
    }

    /// [`MaintenanceRuntime::read_at`] measured from now.
    pub fn read(&mut self, mode: ReadMode) -> Result<ReadResult, EngineError> {
        self.read_at(mode, Instant::now())
    }

    /// A snapshot of the runtime's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(w) = &self.wal {
            snap.wal_records = w.records();
            snap.wal_fsync_lag = w.unsynced();
            snap.wal_sync_every = w.sync_every();
        }
        snap.degraded = self.demoted;
        snap.budget = self.ctx.budget;
        snap.budget_rebalances = self.rebalances;
        if let Some(ms) = self.maintenance_stats() {
            snap.heavy_keys = ms.heavy.heavy_keys;
            snap.heavy_reclassifications = ms.heavy.reclassifications();
            snap.heavy_hits = ms.exec.heavy_hits;
            snap.light_hits = ms.exec.light_hits;
        }
        snap
    }

    /// The recorded trace so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Consumes the runtime, returning the recorded trace.
    pub fn into_trace(self) -> Option<Trace> {
        self.trace
    }

    /// Appends a record to the attached WAL, if any.
    fn wal_log(&mut self, rec: WalRecord) -> Result<(), EngineError> {
        match &mut self.wal {
            Some(w) => w.append(&rec),
            None => Ok(()),
        }
    }

    /// Executes a flush action against the backend, returning its model
    /// cost.
    fn execute_flush(&mut self, action: &Counts) -> Result<f64, EngineError> {
        let cost = total_cost(&self.ctx.costs, action);
        if let Backend::Engine(e) = &mut self.backend {
            if !action.is_zero() {
                let counts: Vec<u64> = action.iter().collect();
                e.view.flush(&e.db, &counts)?;
            }
        }
        self.pending = self
            .pending
            .checked_sub(action)
            .expect("flush ≤ pending checked above");
        Ok(cost)
    }

    fn finish_step(
        &mut self,
        arrivals: Counts,
        action: Counts,
        forced: bool,
        cost: f64,
        violated: bool,
        t: usize,
    ) -> Result<(), EngineError> {
        self.metrics.record_flush(&action, cost);
        if let Some(trace) = &mut self.trace {
            trace.push(arrivals, action, forced);
        }
        self.t = t + 1;
        if violated {
            self.metrics.constraint_violations += 1;
            if self.strict {
                return Err(EngineError::Maintenance {
                    message: format!(
                        "constraint violation at t = {t}: refresh cost exceeds budget {}",
                        self.ctx.budget
                    ),
                });
            }
        }
        Ok(())
    }

    fn current_rows(&self) -> Option<Vec<WRow>> {
        match &self.backend {
            Backend::Model => None,
            Backend::Engine(e) => Some(e.view.result()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NaiveFlush, OnlineFlush};
    use crate::wal::MemWal;
    use aivm_core::CostModel;
    use aivm_engine::{row, DataType, MinStrategy, Schema, Value, ViewDef};

    fn model_runtime(policy: Box<dyn FlushPolicy>) -> MaintenanceRuntime {
        let cfg = ServeConfig::new(
            vec![CostModel::linear(0.05, 0.2), CostModel::linear(0.02, 3.0)],
            6.0,
        );
        MaintenanceRuntime::model(cfg, policy)
    }

    /// A policy that never flushes (violates the contract on purpose).
    struct Lazy;
    impl FlushPolicy for Lazy {
        fn reset(&mut self, _ctx: &PolicyContext) {}
        fn decide(&mut self, _t: usize, pending: &Counts) -> Counts {
            Counts::zero(pending.len())
        }
        fn name(&self) -> &str {
            "lazy"
        }
    }

    #[test]
    fn naive_keeps_state_under_budget() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        for _ in 0..200 {
            rt.ingest_count(0, 2);
            rt.ingest_count(1, 1);
            let report = rt.tick().unwrap();
            assert!(!report.violated);
        }
        let m = rt.metrics();
        assert_eq!(m.constraint_violations, 0);
        assert_eq!(m.events_ingested, 600);
        assert!(m.flush_count > 0);
    }

    #[test]
    fn fresh_read_empties_pending_and_fits_budget() {
        let mut rt = model_runtime(Box::new(OnlineFlush::new()));
        for i in 0..50 {
            rt.ingest_count(0, 1);
            rt.ingest_count(1, 1);
            rt.tick().unwrap();
            if i % 7 == 0 {
                let r = rt.read(ReadMode::Fresh).unwrap();
                assert!(!r.violated);
                assert!(r.flush_cost <= 6.0 + 1e-9);
                assert_eq!(r.lag, 0);
                assert!(rt.pending().is_zero());
            }
        }
        let m = rt.metrics();
        assert_eq!(m.constraint_violations, 0);
        assert_eq!(m.fresh_reads, 8);
        assert_eq!(m.refresh_latency_ns.count, 8);
    }

    #[test]
    fn stale_read_reports_lag_without_flushing() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        rt.ingest_count(0, 3);
        let r = rt.read(ReadMode::Stale).unwrap();
        assert_eq!(r.lag, 3);
        assert_eq!(r.flush_cost, 0.0);
        assert_eq!(rt.pending().total(), 3);
    }

    #[test]
    fn trace_records_every_step_with_forced_flags() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        rt.ingest_count(0, 1);
        rt.tick().unwrap();
        rt.ingest_count(1, 2);
        rt.read(ReadMode::Fresh).unwrap();
        // Steps: first tick, then the fresh read's embedded policy tick,
        // then its forced full flush.
        let trace = rt.into_trace().expect("tracing on");
        assert_eq!(trace.steps.len(), 3);
        assert!(!trace.steps[0].forced);
        assert!(!trace.steps[1].forced);
        assert_eq!(trace.steps[1].arrivals, Counts::from_slice(&[0, 2]));
        assert!(trace.steps[2].forced);
        assert!(trace.steps[2].arrivals.is_zero());
        assert_eq!(trace.steps[2].action.total(), 3);
    }

    #[test]
    fn strict_mode_returns_typed_error_when_policy_leaves_state_full() {
        let mut cfg = ServeConfig::new(vec![CostModel::linear(1.0, 0.0)], 2.0);
        cfg.strict = true;
        let mut rt = MaintenanceRuntime::model(cfg, Box::new(Lazy));
        rt.ingest_count(0, 10);
        let err = rt.tick().unwrap_err();
        assert!(
            matches!(&err, EngineError::Maintenance { message }
                if message.contains("constraint violation")),
            "got {err:?}"
        );
        // The violation is still counted and the step still recorded.
        assert_eq!(rt.metrics().constraint_violations, 1);
        assert_eq!(rt.trace().unwrap().steps.len(), 1);
    }

    #[test]
    fn non_strict_mode_counts_violations_without_erroring() {
        let cfg = ServeConfig::new(vec![CostModel::linear(1.0, 0.0)], 2.0);
        let mut rt = MaintenanceRuntime::model(cfg, Box::new(Lazy));
        rt.ingest_count(0, 10);
        let report = rt.tick().unwrap();
        assert!(report.violated);
        assert_eq!(rt.metrics().constraint_violations, 1);
    }

    /// A policy that panics at a fixed tick, then would behave naively.
    struct PanicAt(usize);
    impl FlushPolicy for PanicAt {
        fn reset(&mut self, _ctx: &PolicyContext) {}
        fn decide(&mut self, t: usize, pending: &Counts) -> Counts {
            assert!(t != self.0, "scripted policy bug at t = {t}");
            pending.clone()
        }
        fn name(&self) -> &str {
            "panic-at"
        }
    }

    #[test]
    fn panicking_policy_demotes_to_naive_and_keeps_serving() {
        let mut rt = model_runtime(Box::new(PanicAt(3)));
        for _ in 0..20 {
            rt.ingest_count(0, 2);
            rt.ingest_count(1, 1);
            rt.tick().unwrap();
        }
        assert!(rt.demoted());
        assert_eq!(rt.policy_name(), "naive");
        let m = rt.metrics();
        assert_eq!(m.policy_demotions, 1);
        // After the demotion NaiveFlush maintains validity: fresh reads
        // still fit the budget.
        let r = rt.read(ReadMode::Fresh).unwrap();
        assert!(!r.violated);
        assert!(r.flush_cost <= 6.0 + 1e-9);
    }

    /// A policy that overdraws (returns more than pending).
    struct Overdraw;
    impl FlushPolicy for Overdraw {
        fn reset(&mut self, _ctx: &PolicyContext) {}
        fn decide(&mut self, _t: usize, pending: &Counts) -> Counts {
            let mut a = pending.clone();
            a[0] += 100;
            a
        }
        fn name(&self) -> &str {
            "overdraw"
        }
    }

    #[test]
    fn overdrawing_policy_demotes_instead_of_panicking() {
        let mut rt = model_runtime(Box::new(Overdraw));
        rt.ingest_count(0, 5);
        let report = rt.tick().unwrap();
        assert!(rt.demoted());
        assert_eq!(rt.metrics().policy_demotions, 1);
        // The naive fallback's decision was used (never an overdraw).
        assert!(report.action.dominated_by(&Counts::from_slice(&[5, 0])));
    }

    #[test]
    fn injected_policy_panic_via_fault_plan() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        rt.set_faults(FaultPlan {
            policy_panic_at: Some(2),
            ..FaultPlan::none()
        });
        for _ in 0..6 {
            rt.ingest_count(0, 1);
            rt.tick().unwrap();
        }
        assert_eq!(rt.metrics().policy_demotions, 1);
        assert_eq!(rt.metrics().constraint_violations, 0);
    }

    #[test]
    fn injected_flush_error_demotes_and_degrades_to_noop() {
        let mut rt = model_runtime(Box::new(OnlineFlush::new()));
        rt.set_faults(FaultPlan {
            flush_error_at: Some(1),
            ..FaultPlan::none()
        });
        for _ in 0..10 {
            rt.ingest_count(0, 2);
            rt.ingest_count(1, 1);
            rt.tick().unwrap();
        }
        let m = rt.metrics();
        assert_eq!(m.flush_errors, 1);
        assert_eq!(m.policy_demotions, 1);
        // NaiveFlush catches up after the dropped flush; no violations
        // beyond (possibly) the faulted tick itself.
        let r = rt.read(ReadMode::Fresh).unwrap();
        assert!(!r.violated);
    }

    #[test]
    fn sustained_cost_overrun_triggers_recalibration() {
        let mut rt = model_runtime(Box::new(NaiveFlush::new()));
        rt.set_faults(FaultPlan {
            cost_overrun: Some(crate::fault::CostOverrun {
                from_t: 0,
                factor: 2.0,
            }),
            ..FaultPlan::none()
        });
        for _ in 0..20 {
            rt.ingest_count(0, 30);
            rt.ingest_count(1, 10);
            rt.tick().unwrap();
        }
        let m = rt.metrics();
        assert!(m.cost_overruns >= RECALIBRATE_AFTER as u64);
        assert_eq!(
            m.recalibrations, 1,
            "one recalibration absorbs the 2x drift"
        );
        // After recalibration estimates match "measured" costs; the
        // overrun streak stops growing.
        let overruns_at_recal = m.cost_overruns;
        let mut rt2 = rt;
        for _ in 0..10 {
            rt2.ingest_count(0, 30);
            rt2.tick().unwrap();
        }
        assert_eq!(rt2.metrics().cost_overruns, overruns_at_recal);
    }

    /// A one-table engine runtime over a trivial SELECT * view.
    fn tiny_engine(
        policy: Box<dyn FlushPolicy>,
        strict_budget: f64,
    ) -> (MaintenanceRuntime, Database) {
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::new(vec![("id", DataType::Int)]))
            .unwrap();
        db.set_key_column(t, 0);
        let genesis = db.clone();
        let view = make_tiny_view(&db).unwrap();
        let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], strict_budget);
        let rt = MaintenanceRuntime::engine(cfg, policy, db, view).unwrap();
        (rt, genesis)
    }

    fn make_tiny_view(db: &Database) -> Result<MaterializedView, EngineError> {
        MaterializedView::new(
            db,
            ViewDef {
                name: "v".into(),
                tables: vec!["t".into()],
                join_preds: vec![],
                filters: vec![None],
                residual: None,
                projection: None,
                aggregate: None,
                distinct: false,
            },
            MinStrategy::Multiset,
        )
    }

    #[test]
    fn crash_recovery_reproduces_view_and_pending_exactly() {
        let mem = MemWal::new();
        let (mut rt, genesis) = tiny_engine(Box::new(NaiveFlush::new()), 5.0);
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 4).unwrap());
        let mut checkpoint = None;
        for i in 0..30i64 {
            rt.ingest_dml(0, Modification::Insert(row![i])).unwrap();
            if i % 3 == 0 {
                rt.tick().unwrap();
            }
            if i == 17 {
                checkpoint = Some(rt.checkpoint());
            }
        }
        let expect_view = rt.view_checksum().unwrap();
        let expect_db = rt.db_checksum().unwrap();
        let expect_pending = rt.pending().clone();
        let expect_t = rt.t;
        let expect_steps = rt.trace().unwrap().steps.clone();

        // "Crash": drop the runtime; recover from WAL + checkpoint.
        drop(rt);
        let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 5.0);
        let recovered = MaintenanceRuntime::recover(
            cfg.clone(),
            Box::new(NaiveFlush::new()),
            &mem.bytes(),
            checkpoint.as_ref(),
            genesis.clone(),
            &make_tiny_view,
        )
        .unwrap();
        assert_eq!(recovered.view_checksum().unwrap(), expect_view);
        assert_eq!(recovered.db_checksum().unwrap(), expect_db);
        assert_eq!(recovered.pending(), &expect_pending);
        assert_eq!(recovered.t, expect_t);
        assert_eq!(recovered.trace().unwrap().steps, expect_steps);
        assert_eq!(recovered.metrics().recoveries, 1);

        // Recovery without the checkpoint (full replay from genesis)
        // lands in the same state.
        let from_genesis = MaintenanceRuntime::recover(
            cfg,
            Box::new(NaiveFlush::new()),
            &mem.bytes(),
            None,
            genesis,
            &make_tiny_view,
        )
        .unwrap();
        assert_eq!(from_genesis.view_checksum().unwrap(), expect_view);
        assert_eq!(from_genesis.pending(), &expect_pending);
    }

    #[test]
    fn budget_rebalance_is_wal_logged_and_replayed() {
        let mem = MemWal::new();
        let (mut rt, genesis) = tiny_engine(Box::new(NaiveFlush::new()), 5.0);
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 1).unwrap());
        let mut checkpoint = None;
        for i in 0..30i64 {
            rt.ingest_dml(0, Modification::Insert(row![i])).unwrap();
            if i % 3 == 0 {
                rt.tick().unwrap();
            }
            if i == 10 {
                // A coordinator epoch shrinks the budget; the policy now
                // flushes on a different schedule than the original C.
                rt.set_budget(2.5).unwrap();
            }
            if i == 17 {
                // Checkpoint *after* the rebalance: shadow replay must
                // apply the SetBudget record to agree with it.
                checkpoint = Some(rt.checkpoint());
            }
        }
        // A bitwise-identical budget is a no-op and adds no record.
        let records_before = rt.wal_records();
        rt.set_budget(2.5).unwrap();
        assert_eq!(rt.wal_records(), records_before);
        assert_eq!(rt.metrics().budget_rebalances, 1);
        assert_eq!(rt.budget(), 2.5);
        let expect_view = rt.view_checksum().unwrap();
        let expect_pending = rt.pending().clone();
        drop(rt);
        let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 5.0);
        for ck in [checkpoint.as_ref(), None] {
            let recovered = MaintenanceRuntime::recover(
                cfg.clone(),
                Box::new(NaiveFlush::new()),
                &mem.bytes(),
                ck,
                genesis.clone(),
                &make_tiny_view,
            )
            .unwrap();
            assert_eq!(recovered.view_checksum().unwrap(), expect_view);
            assert_eq!(recovered.pending(), &expect_pending);
            assert_eq!(
                recovered.budget(),
                2.5,
                "replay must land on the live budget"
            );
        }
    }

    #[test]
    fn recovery_rejects_mismatched_checkpoint() {
        let mem = MemWal::new();
        let (mut rt, genesis) = tiny_engine(Box::new(NaiveFlush::new()), 5.0);
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 1).unwrap());
        for i in 0..10i64 {
            rt.ingest_dml(0, Modification::Insert(row![i])).unwrap();
        }
        rt.tick().unwrap();
        let mut ck = rt.checkpoint();
        ck.pending[0] += 1; // tampered state vector
        let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 5.0);
        let err = MaintenanceRuntime::recover(
            cfg,
            Box::new(NaiveFlush::new()),
            &mem.bytes(),
            Some(&ck),
            genesis,
            &make_tiny_view,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, EngineError::Corrupt { .. }), "got {err:?}");
    }

    #[test]
    fn engine_reads_reflect_recovered_rows() {
        let mem = MemWal::new();
        let (mut rt, genesis) = tiny_engine(Box::new(NaiveFlush::new()), 5.0);
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 1).unwrap());
        for i in 0..5i64 {
            rt.ingest_dml(0, Modification::Insert(row![i])).unwrap();
        }
        rt.read(ReadMode::Fresh).unwrap();
        rt.ingest_dml(0, Modification::Delete(row![2i64])).unwrap();
        drop(rt);
        let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 5.0);
        let mut recovered = MaintenanceRuntime::recover(
            cfg,
            Box::new(NaiveFlush::new()),
            &mem.bytes(),
            None,
            genesis,
            &make_tiny_view,
        )
        .unwrap();
        let r = recovered.read(ReadMode::Fresh).unwrap();
        let mut ids: Vec<i64> = r
            .rows
            .unwrap()
            .into_iter()
            .map(|(row, _)| match row.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 3, 4]);
    }
}
