//! Deterministic fault injection for the serving runtime.
//!
//! A [`FaultPlan`] is data, not hooks: a small set of trigger points
//! checked by the runtime, the server's scheduler loop and the chaos
//! harness's producers. Because every trigger is an explicit event or
//! tick index — and [`FaultPlan::seeded`] derives those indices from a
//! seed via the repo's deterministic PRNG — a failing chaos run is
//! reproducible bit-for-bit from its seed alone.
//!
//! The injected faults mirror the real failure modes the robustness
//! layer defends against:
//!
//! * **scheduler kill** — process crash; recovery must rebuild state
//!   from WAL + checkpoint (`MaintenanceRuntime::recover`).
//! * **policy panic / flush error** — a buggy or erroring flush policy;
//!   the runtime demotes to `NaiveFlush` and keeps serving.
//! * **cost overrun** — drifting cost estimates; repeated overruns
//!   trigger cost-model recalibration.
//! * **duplicate / delayed sends** — unreliable producers; ingest
//!   errors are counted and surfaced instead of killing the scheduler.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A sustained overestimate of flush throughput: from tick `from_t`
/// onward, "measured" flush costs exceed the model's estimate by
/// `factor`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostOverrun {
    /// First tick at which the overrun applies.
    pub from_t: usize,
    /// Multiplier on the estimated cost (`> 1` for an overrun).
    pub factor: f64,
}

/// A deterministic set of fault triggers. `Default` is the empty plan
/// (no faults).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Stop the scheduler silently once this many WAL records have been
    /// logged — a simulated crash point, expressed in the same unit the
    /// recovery path consumes.
    pub kill_at_record: Option<u64>,
    /// Make the flush policy panic at its first decision at or after
    /// this tick (one-shot; cleared once fired).
    pub policy_panic_at: Option<usize>,
    /// Make the first flush at or after this tick fail with an injected
    /// error, before any state is mutated, as a real pre-write failure
    /// would (one-shot; cleared once fired).
    pub flush_error_at: Option<usize>,
    /// Sustained flush-cost overrun (drives recalibration).
    pub cost_overrun: Option<CostOverrun>,
    /// Producers send every `n`-th message twice (at-least-once
    /// delivery; duplicate DML surfaces as counted ingest errors).
    pub dup_send_every: Option<u64>,
    /// Producers stall briefly before every `n`-th send (bursty
    /// arrival patterns that stress the shedding queue).
    pub delay_send_every: Option<u64>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Derives a mixed degradation plan from a seed. The plan never
    /// includes a scheduler kill — crash points are chosen exhaustively
    /// by the chaos harness, not sampled — but panics, flush errors,
    /// overruns and producer misbehaviour are each included with
    /// independent probability, their trigger points spread over
    /// `horizon` ticks.
    pub fn seeded(seed: u64, horizon: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfa17);
        let horizon = horizon.max(4);
        let mut plan = FaultPlan::none();
        if rng.gen_bool(0.7) {
            plan.policy_panic_at = Some(rng.gen_range(1..horizon));
        }
        if rng.gen_bool(0.5) {
            plan.flush_error_at = Some(rng.gen_range(1..horizon));
        }
        if rng.gen_bool(0.5) {
            plan.cost_overrun = Some(CostOverrun {
                from_t: rng.gen_range(0..horizon / 2),
                factor: rng.gen_range(1.6..4.0),
            });
        }
        if rng.gen_bool(0.4) {
            plan.dup_send_every = Some(rng.gen_range(5..40));
        }
        if rng.gen_bool(0.4) {
            plan.delay_send_every = Some(rng.gen_range(16..64));
        }
        plan
    }

    /// True when the policy should panic while deciding tick `t`.
    ///
    /// Fires at the first decision *at or after* the trigger tick: fresh
    /// reads consume a `t` without consulting the policy, so an
    /// exact-match trigger could be skipped entirely. The runtime clears
    /// the trigger after it fires (one-shot).
    pub fn policy_panics(&self, t: usize) -> bool {
        matches!(self.policy_panic_at, Some(p) if t >= p)
    }

    /// True when the flush at tick `t` should fail; like
    /// [`FaultPlan::policy_panics`], fires at the first tick at or after
    /// the trigger and is cleared by the runtime once it has.
    pub fn flush_fails(&self, t: usize) -> bool {
        matches!(self.flush_error_at, Some(p) if t >= p)
    }

    /// The injected cost-overrun factor in effect at tick `t`
    /// (`1.0` when none applies).
    pub fn overrun_factor(&self, t: usize) -> f64 {
        match self.cost_overrun {
            Some(o) if t >= o.from_t => o.factor,
            _ => 1.0,
        }
    }

    /// True when the scheduler should die after `records` WAL records.
    pub fn should_kill(&self, records: u64) -> bool {
        matches!(self.kill_at_record, Some(k) if records >= k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(!p.policy_panics(0));
        assert!(!p.flush_fails(7));
        assert_eq!(p.overrun_factor(100), 1.0);
        assert!(!p.should_kill(u64::MAX));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_vary() {
        let a = FaultPlan::seeded(1, 100);
        let b = FaultPlan::seeded(1, 100);
        assert_eq!(a, b);
        // Some seed in a small range must produce a different plan.
        assert!((2..20).any(|s| FaultPlan::seeded(s, 100) != a));
        // Kills are never sampled; the harness enumerates them.
        for s in 0..50 {
            assert_eq!(FaultPlan::seeded(s, 100).kill_at_record, None);
        }
    }

    #[test]
    fn triggers_fire_at_their_indices() {
        let p = FaultPlan {
            policy_panic_at: Some(3),
            flush_error_at: Some(5),
            cost_overrun: Some(CostOverrun {
                from_t: 10,
                factor: 2.0,
            }),
            kill_at_record: Some(8),
            ..FaultPlan::none()
        };
        assert!(!p.policy_panics(2) && p.policy_panics(3) && p.policy_panics(4));
        assert!(!p.flush_fails(4) && p.flush_fails(5) && p.flush_fails(6));
        assert_eq!(p.overrun_factor(9), 1.0);
        assert_eq!(p.overrun_factor(10), 2.0);
        assert!(!p.should_kill(7) && p.should_kill(8) && p.should_kill(9));
    }
}
