//! Recording live runs as replayable traces.
//!
//! A [`Trace`] captures everything `aivm-sim` needs to re-execute a live
//! run deterministically: the cost functions, the budget `C`, and one
//! [`TraceStep`] per scheduler step with the arrivals closed into that
//! step, the action taken, and whether the action was *forced* (a fresh
//! read's flush-everything, which bypasses the policy) or decided by the
//! policy.
//!
//! The serialization is a line-oriented text format (the build
//! environment has no serde); [`Trace::to_text`] / [`Trace::parse`]
//! round-trip exactly, using `{:?}` float formatting which is shortest
//! round-trippable in Rust.

use aivm_core::{Arrivals, CostModel, Counts};

/// One recorded scheduler step.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStep {
    /// Modifications per table that arrived during this step's window.
    pub arrivals: Counts,
    /// The flush action executed (may be zero).
    pub action: Counts,
    /// `true` when the action was a forced full flush (fresh read)
    /// rather than a policy decision.
    pub forced: bool,
}

/// A recorded live run.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Per-table cost functions in effect during the run.
    pub costs: Vec<CostModel>,
    /// The response-time budget `C`.
    pub budget: f64,
    /// The recorded steps, in execution order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(costs: Vec<CostModel>, budget: f64) -> Self {
        Trace {
            costs,
            budget,
            steps: Vec::new(),
        }
    }

    /// Number of base tables.
    pub fn n(&self) -> usize {
        self.costs.len()
    }

    pub(crate) fn push(&mut self, arrivals: Counts, action: Counts, forced: bool) {
        self.steps.push(TraceStep {
            arrivals,
            action,
            forced,
        });
    }

    /// The recorded actions, in order.
    pub fn actions(&self) -> Vec<Counts> {
        self.steps.iter().map(|s| s.action.clone()).collect()
    }

    /// Total model cost of the recorded actions.
    pub fn total_cost(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| aivm_core::total_cost(&self.costs, &s.action))
            .sum()
    }

    /// The recorded arrival sequence as an [`Arrivals`] (one entry per
    /// step; an empty trace becomes a single all-zero step because
    /// `Arrivals` cannot be empty).
    pub fn arrivals(&self) -> Arrivals {
        if self.steps.is_empty() {
            return Arrivals::new(vec![Counts::zero(self.n())]);
        }
        Arrivals::new(self.steps.iter().map(|s| s.arrivals.clone()).collect())
    }

    /// Serializes the trace to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("aivm-serve-trace v1\n");
        out.push_str(&format!("n {}\n", self.n()));
        out.push_str(&format!("budget {:?}\n", self.budget));
        for c in &self.costs {
            out.push_str(&format!("cost {}\n", cost_to_text(c)));
        }
        out.push_str(&format!("steps {}\n", self.steps.len()));
        for s in &self.steps {
            out.push_str(&format!(
                "{} {} | {}\n",
                u8::from(s.forced),
                counts_to_text(&s.arrivals),
                counts_to_text(&s.action)
            ));
        }
        out
    }

    /// Parses a trace from the text format produced by [`Trace::to_text`].
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty trace")?;
        if header != "aivm-serve-trace v1" {
            return Err(format!("unknown trace header: {header:?}"));
        }
        let n: usize = field(lines.next(), "n")?
            .parse()
            .map_err(|e| format!("bad n: {e}"))?;
        let budget: f64 = field(lines.next(), "budget")?
            .parse()
            .map_err(|e| format!("bad budget: {e}"))?;
        let mut costs = Vec::with_capacity(n);
        for _ in 0..n {
            costs.push(cost_from_text(field(lines.next(), "cost")?)?);
        }
        let step_count: usize = field(lines.next(), "steps")?
            .parse()
            .map_err(|e| format!("bad step count: {e}"))?;
        let mut steps = Vec::with_capacity(step_count);
        for _ in 0..step_count {
            let line = lines.next().ok_or("truncated trace: missing step")?;
            let (flag, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed step line: {line:?}"))?;
            let forced = match flag {
                "0" => false,
                "1" => true,
                other => return Err(format!("bad forced flag: {other:?}")),
            };
            let (a, q) = rest
                .split_once(" | ")
                .ok_or_else(|| format!("malformed step line: {line:?}"))?;
            steps.push(TraceStep {
                arrivals: counts_from_text(a, n)?,
                action: counts_from_text(q, n)?,
                forced,
            });
        }
        Ok(Trace {
            costs,
            budget,
            steps,
        })
    }
}

fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("truncated trace: missing {key}"))?;
    line.strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("expected `{key} …`, got {line:?}"))
}

fn counts_to_text(c: &Counts) -> String {
    (0..c.len())
        .map(|i| c[i].to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn counts_from_text(s: &str, n: usize) -> Result<Counts, String> {
    let vals: Vec<u64> = s
        .split_whitespace()
        .map(|v| v.parse().map_err(|e| format!("bad count {v:?}: {e}")))
        .collect::<Result<_, _>>()?;
    if vals.len() != n {
        return Err(format!("expected {n} counts, got {}", vals.len()));
    }
    Ok(Counts::from_slice(&vals))
}

fn cost_to_text(c: &CostModel) -> String {
    match c {
        CostModel::Linear { a, b } => format!("linear {a:?} {b:?}"),
        CostModel::Step {
            block,
            cost_per_block,
        } => format!("step {block} {cost_per_block:?}"),
        CostModel::Power {
            setup,
            scale,
            exponent,
        } => format!("power {setup:?} {scale:?} {exponent:?}"),
        CostModel::Capped { eps, c } => format!("capped {eps:?} {c:?}"),
        CostModel::Piecewise { points } => {
            let pts = points
                .iter()
                .map(|(k, v)| format!("{k}:{v:?}"))
                .collect::<Vec<_>>()
                .join(" ");
            format!("piecewise {pts}")
        }
    }
}

fn cost_from_text(s: &str) -> Result<CostModel, String> {
    let mut parts = s.split_whitespace();
    let kind = parts.next().ok_or("empty cost spec")?;
    let mut next_f64 = |what: &str| -> Result<f64, String> {
        parts
            .next()
            .ok_or_else(|| format!("cost spec missing {what}"))?
            .parse()
            .map_err(|e| format!("bad {what}: {e}"))
    };
    match kind {
        "linear" => Ok(CostModel::Linear {
            a: next_f64("a")?,
            b: next_f64("b")?,
        }),
        "step" => {
            let block: u64 = parts
                .next()
                .ok_or("cost spec missing block")?
                .parse()
                .map_err(|e| format!("bad block: {e}"))?;
            let cost_per_block: f64 = parts
                .next()
                .ok_or("cost spec missing cost_per_block")?
                .parse()
                .map_err(|e| format!("bad cost_per_block: {e}"))?;
            Ok(CostModel::Step {
                block,
                cost_per_block,
            })
        }
        "power" => Ok(CostModel::Power {
            setup: next_f64("setup")?,
            scale: next_f64("scale")?,
            exponent: next_f64("exponent")?,
        }),
        "capped" => Ok(CostModel::Capped {
            eps: next_f64("eps")?,
            c: next_f64("c")?,
        }),
        "piecewise" => {
            let mut points = Vec::new();
            for p in parts {
                let (k, v) = p
                    .split_once(':')
                    .ok_or_else(|| format!("bad piecewise point {p:?}"))?;
                points.push((
                    k.parse().map_err(|e| format!("bad point k: {e}"))?,
                    v.parse().map_err(|e| format!("bad point cost: {e}"))?,
                ));
            }
            Ok(CostModel::Piecewise { points })
        }
        other => Err(format!("unknown cost kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(
            vec![
                CostModel::linear(0.5, 1.25),
                CostModel::Power {
                    setup: 2.0,
                    scale: 0.1,
                    exponent: 0.5,
                },
                CostModel::Step {
                    block: 3,
                    cost_per_block: 1.5,
                },
                CostModel::Capped { eps: 0.5, c: 4.0 },
                CostModel::Piecewise {
                    points: vec![(1, 1.0), (10, 4.0)],
                },
            ],
            12.5,
        );
        t.push(Counts::from_slice(&[1, 2, 0, 0, 1]), Counts::zero(5), false);
        t.push(
            Counts::from_slice(&[0, 1, 1, 0, 0]),
            Counts::from_slice(&[1, 3, 1, 0, 1]),
            true,
        );
        t
    }

    #[test]
    fn text_round_trip_is_exact() {
        let t = sample_trace();
        let parsed = Trace::parse(&t.to_text()).expect("parse back");
        assert_eq!(parsed, t);
    }

    #[test]
    fn arrivals_and_actions_extraction() {
        let t = sample_trace();
        assert_eq!(t.arrivals().horizon(), 1);
        assert_eq!(t.actions()[0], Counts::zero(5));
        assert!(t.total_cost() > 0.0);
    }

    #[test]
    fn empty_trace_yields_single_zero_arrival() {
        let t = Trace::new(vec![CostModel::linear(1.0, 0.0)], 5.0);
        assert_eq!(t.arrivals().totals(), Counts::zero(1));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("aivm-serve-trace v2\n").is_err());
        let mut text = sample_trace().to_text();
        text.push_str("trailing garbage ignored is fine\n");
        // Extra trailing lines are ignored; truncation is not.
        assert!(Trace::parse(&text).is_ok());
        let t = sample_trace();
        let truncated: String = t
            .to_text()
            .lines()
            .take(5)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(Trace::parse(&truncated).is_err());
    }
}
