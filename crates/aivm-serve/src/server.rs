//! The threaded serving layer: bounded-MPSC ingest in front of a
//! scheduler thread.
//!
//! [`ServeServer::spawn`] moves a [`MaintenanceRuntime`] onto a
//! scheduler thread and returns a cloneable [`ServeHandle`]. Producers
//! push DML through a bounded [`std::sync::mpsc::sync_channel`] — a full
//! queue blocks the producer (backpressure) rather than growing without
//! bound. The scheduler loop alternates between draining a bounded batch
//! of queued events and running one runtime tick, so ticks keep firing
//! at `tick_interval` even when the stream goes quiet (ONLINE's rate
//! estimator sees the silence) and batches stay small enough that reads
//! queued behind a burst are served promptly.
//!
//! Reads and metrics requests travel on the same queue as DML, each
//! carrying a rendezvous channel for the reply; fresh-read latency is
//! measured from enqueue to reply, so it includes queue wait.
//!
//! [`ServeServer::shutdown`] returns the runtime (and therefore its
//! metrics and recorded trace) once the scheduler drains; all producer
//! handles must be dropped first, or the scheduler keeps waiting for
//! more events.

use crate::metrics::MetricsSnapshot;
use crate::runtime::{MaintenanceRuntime, ReadMode, ReadResult};
use aivm_engine::{EngineError, Modification};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the threaded server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Capacity of the bounded ingest queue; producers block when full.
    pub queue_capacity: usize,
    /// How long the scheduler waits for an event before running an idle
    /// tick anyway.
    pub tick_interval: Duration,
    /// Maximum events drained per tick (bounds tick latency).
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 1024,
            tick_interval: Duration::from_millis(1),
            max_batch: 256,
        }
    }
}

enum Msg {
    Count {
        table: usize,
        k: u64,
    },
    Dml {
        table: usize,
        m: Modification,
    },
    Read {
        mode: ReadMode,
        enqueued: Instant,
        reply: SyncSender<Result<ReadResult, EngineError>>,
    },
    Metrics {
        reply: SyncSender<MetricsSnapshot>,
    },
}

/// A cloneable producer/client handle to a running [`ServeServer`].
#[derive(Clone)]
pub struct ServeHandle {
    tx: SyncSender<Msg>,
    depth: Arc<AtomicUsize>,
}

impl ServeHandle {
    fn send(&self, msg: Msg) -> bool {
        self.depth.fetch_add(1, Ordering::Relaxed);
        if self.tx.send(msg).is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Ingests `k` anonymous events for `table` (model backend).
    /// Blocks while the queue is full; returns `false` if the server is
    /// gone.
    pub fn ingest_count(&self, table: usize, k: u64) -> bool {
        self.send(Msg::Count { table, k })
    }

    /// Ingests one DML event for `table` (engine backend). Blocks while
    /// the queue is full; returns `false` if the server is gone.
    pub fn ingest_dml(&self, table: usize, m: Modification) -> bool {
        self.send(Msg::Dml { table, m })
    }

    /// Serves a read, blocking until the scheduler replies. `None` if
    /// the server is gone.
    pub fn read(&self, mode: ReadMode) -> Option<Result<ReadResult, EngineError>> {
        let (reply, rx) = sync_channel(1);
        if !self.send(Msg::Read {
            mode,
            enqueued: Instant::now(),
            reply,
        }) {
            return None;
        }
        rx.recv().ok()
    }

    /// Fetches a metrics snapshot (includes live queue depths). `None`
    /// if the server is gone.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        let (reply, rx) = sync_channel(1);
        if !self.send(Msg::Metrics { reply }) {
            return None;
        }
        rx.recv().ok()
    }

    /// Current ingest-queue depth (approximate).
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

/// A scheduler thread driving a [`MaintenanceRuntime`].
pub struct ServeServer {
    handle: ServeHandle,
    join: JoinHandle<MaintenanceRuntime>,
}

impl ServeServer {
    /// Spawns the scheduler thread.
    pub fn spawn(runtime: MaintenanceRuntime, cfg: ServerConfig) -> Self {
        let (tx, rx) = sync_channel::<Msg>(cfg.queue_capacity.max(1));
        let depth = Arc::new(AtomicUsize::new(0));
        let handle = ServeHandle {
            tx,
            depth: Arc::clone(&depth),
        };
        let join = std::thread::spawn(move || scheduler_loop(runtime, rx, depth, cfg));
        ServeServer { handle, join }
    }

    /// A new producer/client handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// Drops this server's own handle and waits for the scheduler to
    /// drain and exit, returning the runtime with its final metrics and
    /// trace. Any handles cloned from this server must be dropped first.
    pub fn shutdown(self) -> MaintenanceRuntime {
        drop(self.handle);
        self.join.join().expect("scheduler thread panicked")
    }
}

fn scheduler_loop(
    mut runtime: MaintenanceRuntime,
    rx: Receiver<Msg>,
    depth: Arc<AtomicUsize>,
    cfg: ServerConfig,
) -> MaintenanceRuntime {
    let mut max_depth = 0usize;
    loop {
        let mut disconnected = false;
        match rx.recv_timeout(cfg.tick_interval) {
            Ok(msg) => {
                // fetch_sub returns the pre-decrement depth, which counts
                // the message being consumed — so a lone quickly-drained
                // message still registers as depth 1.
                max_depth = max_depth.max(depth.fetch_sub(1, Ordering::Relaxed));
                handle_msg(&mut runtime, msg, &depth, max_depth);
                let mut drained = 1usize;
                while drained < cfg.max_batch.max(1) {
                    match rx.try_recv() {
                        Ok(msg) => {
                            max_depth = max_depth.max(depth.fetch_sub(1, Ordering::Relaxed));
                            handle_msg(&mut runtime, msg, &depth, max_depth);
                            drained += 1;
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => disconnected = true,
        }
        // One scheduler tick per drain window — including idle windows,
        // so policies observe quiet periods. Skip the final tick after
        // disconnect: shutdown must not mutate state past the last
        // client interaction, or recorded traces would grow a tail no
        // client observed.
        if disconnected {
            break;
        }
        runtime.tick().expect("scheduler flush failed");
    }
    runtime
}

fn handle_msg(runtime: &mut MaintenanceRuntime, msg: Msg, depth: &AtomicUsize, max_depth: usize) {
    match msg {
        Msg::Count { table, k } => runtime.ingest_count(table, k),
        Msg::Dml { table, m } => runtime
            .ingest_dml(table, m)
            .expect("ingested DML must apply"),
        Msg::Read {
            mode,
            enqueued,
            reply,
        } => {
            let result = runtime.read_at(mode, enqueued);
            let _ = reply_best_effort(reply, result);
        }
        Msg::Metrics { reply } => {
            let mut snap = runtime.metrics();
            snap.queue_depth = depth.load(Ordering::Relaxed);
            snap.max_queue_depth = max_depth;
            let _ = reply_best_effort(reply, snap);
        }
    }
}

/// Replies without blocking the scheduler if the requester gave up.
fn reply_best_effort<T>(reply: SyncSender<T>, value: T) -> Result<(), ()> {
    match reply.try_send(value) {
        Ok(()) => Ok(()),
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OnlineFlush;
    use crate::runtime::ServeConfig;
    use aivm_core::CostModel;

    fn spawn_model_server() -> ServeServer {
        let cfg = ServeConfig::new(
            vec![CostModel::linear(0.05, 0.2), CostModel::linear(0.02, 3.0)],
            6.0,
        );
        let rt = MaintenanceRuntime::model(cfg, Box::new(OnlineFlush::new()));
        ServeServer::spawn(rt, ServerConfig::default())
    }

    #[test]
    fn concurrent_producers_and_reader_stay_consistent() {
        let server = spawn_model_server();
        let mut producers = Vec::new();
        for table in 0..2usize {
            let h = server.handle();
            producers.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    assert!(h.ingest_count(table, 1));
                }
            }));
        }
        let reader = {
            let h = server.handle();
            std::thread::spawn(move || {
                let mut fresh = 0u64;
                for i in 0..20 {
                    let mode = if i % 2 == 0 {
                        ReadMode::Fresh
                    } else {
                        ReadMode::Stale
                    };
                    let r = h.read(mode).expect("server alive").expect("read ok");
                    assert!(!r.violated);
                    if matches!(mode, ReadMode::Fresh) {
                        assert_eq!(r.lag, 0);
                        fresh += 1;
                    }
                }
                fresh
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let fresh = reader.join().unwrap();
        let m = server.handle().metrics().expect("server alive");
        assert_eq!(m.events_ingested, 1000);
        assert!(m.fresh_reads >= fresh);
        assert_eq!(m.constraint_violations, 0);
        let runtime = server.shutdown();
        // Final flush accounting: everything ingested is either still
        // pending or was flushed.
        let final_metrics = runtime.metrics();
        let flushed: u64 = final_metrics.mods_flushed_per_table.iter().sum();
        let pending = runtime.pending().total();
        assert_eq!(flushed + pending, 1000);
    }

    #[test]
    fn shutdown_returns_trace_of_everything_processed() {
        let server = spawn_model_server();
        let h = server.handle();
        for _ in 0..50 {
            assert!(h.ingest_count(0, 1));
        }
        h.read(ReadMode::Fresh).unwrap().unwrap();
        drop(h);
        let runtime = server.shutdown();
        let trace = runtime.trace().expect("tracing on");
        let ingested: u64 = trace.steps.iter().map(|s| s.arrivals.total()).sum();
        assert_eq!(ingested, 50);
        assert!(trace.steps.iter().any(|s| s.forced));
    }

    #[test]
    fn metrics_include_queue_depths() {
        let server = spawn_model_server();
        let h = server.handle();
        h.ingest_count(0, 1);
        let m = h.metrics().expect("alive");
        assert!(m.max_queue_depth >= 1);
        drop(h);
        server.shutdown();
    }
}
