//! The threaded serving layer: bounded-MPSC ingest in front of a
//! scheduler thread.
//!
//! [`ServeServer::spawn`] moves a [`MaintenanceRuntime`] onto a
//! scheduler thread and returns a cloneable [`ServeHandle`]. Producers
//! push DML through the bounded [`queue`](crate::queue) — a full queue
//! blocks the producer (backpressure) rather than growing without
//! bound, and with a configured high-water mark overload sheds the
//! oldest *sheddable* (ingest) messages instead, counted in metrics.
//! The scheduler loop alternates between draining a bounded batch of
//! queued events and running one runtime tick, so ticks keep firing at
//! `tick_interval` even when the stream goes quiet (ONLINE's rate
//! estimator sees the silence) and batches stay small enough that reads
//! queued behind a burst are served promptly.
//!
//! Reads and metrics requests travel on the same queue as DML (marked
//! unsheddable — a reply channel must never be dropped), each carrying
//! a rendezvous channel for the reply; fresh-read latency is measured
//! from enqueue to reply, so it includes queue wait.
//!
//! ## Failure behaviour
//!
//! The scheduler thread never panics on runtime errors. A failed ingest
//! (bad DML) is counted and recorded, then serving continues — nothing
//! was mutated. A failed tick (a hard engine flush error, a WAL append
//! failure, or a strict-mode constraint violation) is *poisonous*: the
//! error lands in a shared last-error slot, the scheduler stops
//! maintaining, and every subsequent client call observes the
//! disconnect (`false`/`None`) while [`ServeHandle::last_error`]
//! explains why. An injected kill from a [`FaultPlan`] stops the
//! scheduler silently mid-stream — the simulated crash the recovery
//! path and `repro chaos` are built around.
//!
//! [`ServeServer::shutdown`] returns the runtime (and therefore its
//! metrics and recorded trace) once the scheduler drains; all producer
//! handles must be dropped first, or the scheduler keeps waiting for
//! more events.

use crate::fault::FaultPlan;
use crate::metrics::MetricsSnapshot;
use crate::queue::{channel, Receiver, RecvError, Sender, TrySendError};
use crate::runtime::{MaintenanceRuntime, ReadMode, ReadResult};
use aivm_engine::{EngineError, Modification, ViewSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{
    sync_channel, RecvTimeoutError, SyncSender, TrySendError as MpscTrySendError,
};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The shared snapshot slot: the scheduler stores the view's latest
/// flush-boundary [`ViewSnapshot`] here; client handles serve stale
/// reads from it without a scheduler round-trip. The lock is held only
/// for the `Arc` store/clone — never across row evaluation — so
/// readers and the publisher exchange a pointer, not data.
type SnapshotSlot = Arc<RwLock<Option<Arc<ViewSnapshot>>>>;

/// Configuration of the threaded server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Capacity of the bounded ingest queue; producers block when full.
    pub queue_capacity: usize,
    /// Overload shedding: past this many queued messages, ingest sends
    /// drop the oldest queued ingest message (counted in metrics)
    /// instead of blocking. `None` disables shedding (pure
    /// backpressure).
    pub shed_high_water: Option<usize>,
    /// How long the scheduler waits for an event before running an idle
    /// tick anyway.
    pub tick_interval: Duration,
    /// Maximum events drained per tick (bounds tick latency).
    pub max_batch: usize,
    /// Injected faults (kills are honoured here; the rest are forwarded
    /// to the runtime at spawn).
    pub faults: FaultPlan,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 1024,
            shed_high_water: None,
            tick_interval: Duration::from_millis(1),
            max_batch: 256,
            faults: FaultPlan::none(),
        }
    }
}

/// A structured scheduler-loop failure: what the scheduler was doing,
/// at which tick, and the underlying engine error.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeError {
    /// Scheduler ticks completed when the error struck.
    pub ticks: u64,
    /// The operation that failed (`"tick"`, `"ingest"`).
    pub during: &'static str,
    /// The underlying engine error.
    pub source: EngineError,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduler {} failed after {} ticks: {}",
            self.during, self.ticks, self.source
        )
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

enum Msg {
    Count {
        table: usize,
        k: u64,
    },
    Dml {
        table: usize,
        m: Modification,
    },
    /// A whole submit batch as one queue message: one lock acquisition
    /// and one wakeup per wire frame instead of one per modification.
    /// With `done` set, the scheduler reports apply+WAL-append
    /// completion through it — the durable-ack path.
    DmlBatch {
        table: usize,
        mods: Vec<Modification>,
        done: Option<SyncSender<Result<(), EngineError>>>,
    },
    Read {
        mode: ReadMode,
        enqueued: Instant,
        reply: SyncSender<Result<ReadResult, EngineError>>,
    },
    Metrics {
        reply: SyncSender<MetricsSnapshot>,
    },
    /// A coordinator-initiated refresh-budget change (fire-and-forget:
    /// the coordinator observes the effect through the next metrics
    /// snapshot, never blocking on the scheduler).
    SetBudget {
        budget: f64,
    },
    /// A no-op control message: its only effect is forcing the
    /// scheduler through a loop iteration, where a pending fence flag
    /// is observed and acknowledged.
    FenceProbe,
}

/// Why a deadline-bounded request produced no result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlineError {
    /// The reply did not arrive within the deadline. The scheduler may
    /// still execute the request later; its reply is dropped
    /// best-effort, never blocking the scheduler.
    TimedOut,
    /// The server is gone (check [`ServeHandle::last_error`] for why).
    Disconnected,
}

/// A cloneable producer/client handle to a running [`ServeServer`].
#[derive(Clone)]
pub struct ServeHandle {
    tx: Sender<Msg>,
    last_error: Arc<Mutex<Option<ServeError>>>,
    snapshot: SnapshotSlot,
    snapshot_reads: Arc<AtomicU64>,
    fenced: Arc<AtomicBool>,
    fence_seen: Arc<AtomicBool>,
}

impl ServeHandle {
    /// The latest published flush-boundary snapshot (engine backends;
    /// `None` on the model backend or before the first publication).
    /// Wait-free with respect to maintenance: no scheduler round-trip,
    /// and the returned snapshot stays valid even while further flushes
    /// publish newer ones.
    pub fn snapshot(&self) -> Option<Arc<ViewSnapshot>> {
        self.snapshot
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// [`ServeHandle::snapshot`], counted as a served snapshot read in
    /// [`MetricsSnapshot::snapshot_reads`]. Frontends (e.g. the TCP
    /// server) that answer stale reads directly from the snapshot call
    /// this so the serve metrics still see every read.
    pub fn snapshot_for_read(&self) -> Option<Arc<ViewSnapshot>> {
        let snap = self.snapshot()?;
        self.snapshot_reads.fetch_add(1, Ordering::Relaxed);
        Some(snap)
    }

    /// Serves a stale read from the published snapshot when one exists.
    fn snapshot_read(&self) -> Option<ReadResult> {
        let snap = self.snapshot_for_read()?;
        Some(ReadResult {
            lag: snap.lag(),
            rows: Some(snap.rows.clone()),
            flush_cost: 0.0,
            violated: false,
        })
    }
    /// Fences this server: every subsequent ingest (through *any* clone
    /// of the handle) is rejected, the scheduler stops ticking and
    /// WAL-appending, and only reads and metrics keep being served.
    ///
    /// This is the stale-leader barrier of shard failover: the router
    /// fences the suspect leader *before* sealing its log and promoting
    /// the follower, so no record can be appended after the seal point
    /// and no write is double-applied. Fencing is idempotent and
    /// irreversible — a fenced leader rejoins by recovering from its
    /// log as a fresh server, never by un-fencing.
    pub fn fence(&self) {
        self.fenced.store(true, Ordering::SeqCst);
    }

    /// Whether [`ServeHandle::fence`] has been called on this server.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }

    /// Whether the fence is *effective*: the scheduler has observed the
    /// fence flag (so no further apply/append can race it), or it is
    /// gone entirely. Promotion spins briefly on this before sealing
    /// the leader's log.
    pub fn fence_acknowledged(&self) -> bool {
        if self.fence_seen.load(Ordering::SeqCst) {
            return true;
        }
        // A dead scheduler can never apply anything again: the fence is
        // vacuously effective. Probing with a control send is safe — a
        // live scheduler just answers one extra metrics request.
        self.tx.send_control(Msg::FenceProbe).is_err()
    }

    /// Ingests `k` anonymous events for `table` (model backend).
    /// Blocks while the queue is full (unless shedding is on); returns
    /// `false` if the server is gone.
    pub fn ingest_count(&self, table: usize, k: u64) -> bool {
        if self.is_fenced() {
            return false;
        }
        self.tx.send(Msg::Count { table, k }, true).is_ok()
    }

    /// Ingests one DML event for `table` (engine backend). Blocks while
    /// the queue is full (unless shedding is on); returns `false` if
    /// the server is gone.
    pub fn ingest_dml(&self, table: usize, m: Modification) -> bool {
        if self.is_fenced() {
            return false;
        }
        self.tx.send(Msg::Dml { table, m }, true).is_ok()
    }

    /// Ingests a whole DML batch as **one** queue message, without
    /// blocking: a full queue is a typed [`TrySendError::Full`] the
    /// caller can turn into an `Overloaded` rejection (nothing was
    /// enqueued, so a retry is side-effect free). The batch is applied
    /// in order by the scheduler; this is the event-loop server's
    /// ingest path — one lock acquisition and one scheduler wakeup per
    /// wire frame instead of one per modification.
    ///
    /// The batch charges one capacity unit *per modification*, so the
    /// admission bound is on outstanding events regardless of how they
    /// are batched on the wire. That keeps the maintenance backlog —
    /// and with it the cost of any single flush or forced refresh —
    /// as bounded as the old modification-at-a-time path kept it.
    pub fn try_ingest_batch(
        &self,
        table: usize,
        mods: Vec<Modification>,
    ) -> Result<(), TrySendError> {
        if self.is_fenced() {
            return Err(TrySendError::Disconnected);
        }
        let weight = mods.len();
        self.tx.try_send_weighted(
            Msg::DmlBatch {
                table,
                mods,
                done: None,
            },
            true,
            weight,
        )
    }

    /// [`ServeHandle::try_ingest_batch`] with an apply acknowledgement:
    /// the returned [`ApplyTicket`] completes once the scheduler has
    /// applied the whole batch **and** WAL-logged it (each record is
    /// appended after its modification applies). Frontends that promise
    /// "an acknowledged write survives leader failover" reply to the
    /// client only after the ticket completes: acknowledged ⟹ in the
    /// log ⟹ replayed by the promoted follower. A ticket that reports
    /// the scheduler gone means the batch outcome is *indeterminate*
    /// (it may or may not have been applied before the crash) — exactly
    /// the cases the chaos harness treats as unacknowledged.
    pub fn try_ingest_batch_tracked(
        &self,
        table: usize,
        mods: Vec<Modification>,
    ) -> Result<ApplyTicket, TrySendError> {
        if self.is_fenced() {
            return Err(TrySendError::Disconnected);
        }
        let weight = mods.len();
        let (done, rx) = sync_channel(1);
        self.tx.try_send_weighted(
            Msg::DmlBatch {
                table,
                mods,
                done: Some(done),
            },
            true,
            weight,
        )?;
        Ok(ApplyTicket { rx })
    }

    /// Serves a read. Stale reads are answered wait-free from the
    /// published [`ViewSnapshot`] when one exists (engine backends) —
    /// no scheduler round-trip, no queue wait, and they keep working
    /// even while the scheduler is busy flushing. The reported lag is
    /// as of the snapshot's publication. Fresh reads (and stale reads
    /// on the model backend) travel through the scheduler queue;
    /// `None` if the server is gone (check [`ServeHandle::last_error`]
    /// for why).
    pub fn read(&self, mode: ReadMode) -> Option<Result<ReadResult, EngineError>> {
        if mode == ReadMode::Stale {
            if let Some(r) = self.snapshot_read() {
                return Some(Ok(r));
            }
        }
        let (reply, rx) = sync_channel(1);
        self.tx
            .send_control(Msg::Read {
                mode,
                enqueued: Instant::now(),
                reply,
            })
            .ok()?;
        rx.recv().ok()
    }

    /// [`ServeHandle::read`] bounded by a deadline: gives up (but does
    /// not cancel the read) once `timeout` elapses without a reply.
    /// Queue wait counts against the deadline, which is what makes a
    /// per-request deadline meaningful under backlog.
    pub fn read_deadline(
        &self,
        mode: ReadMode,
        timeout: Duration,
    ) -> Result<Result<ReadResult, EngineError>, DeadlineError> {
        if mode == ReadMode::Stale {
            if let Some(r) = self.snapshot_read() {
                return Ok(Ok(r));
            }
        }
        let (reply, rx) = sync_channel(1);
        self.tx
            .send_control(Msg::Read {
                mode,
                enqueued: Instant::now(),
                reply,
            })
            .map_err(|_| DeadlineError::Disconnected)?;
        match rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout) => Err(DeadlineError::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Err(DeadlineError::Disconnected),
        }
    }

    /// Starts a read without waiting for the reply: the scheduler
    /// executes it in queue order and the returned [`ReadTicket`] is
    /// polled with [`ReadTicket::try_take`]. Built for event-loop
    /// frontends that must never park a thread per in-flight read.
    /// Stale reads are still best served via
    /// [`ServeHandle::snapshot_for_read`] first — this path always
    /// takes the scheduler round trip. The send itself applies the
    /// queue's backpressure (reads are unsheddable). `None` if the
    /// server is gone.
    pub fn begin_read(&self, mode: ReadMode) -> Option<ReadTicket> {
        let (reply, rx) = sync_channel(1);
        self.tx
            .send_control(Msg::Read {
                mode,
                enqueued: Instant::now(),
                reply,
            })
            .ok()?;
        Some(ReadTicket { rx })
    }

    /// Starts a metrics fetch without waiting; poll the returned
    /// [`MetricsTicket`]. `None` if the server is gone.
    pub fn begin_metrics(&self) -> Option<MetricsTicket> {
        let (reply, rx) = sync_channel(1);
        self.tx.send_control(Msg::Metrics { reply }).ok()?;
        Some(MetricsTicket {
            rx,
            snapshot_reads: Arc::clone(&self.snapshot_reads),
        })
    }

    /// Fetches a metrics snapshot (includes live queue depths, shed
    /// counts and the last scheduler error). `None` if the server is
    /// gone.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        let (reply, rx) = sync_channel(1);
        self.tx.send_control(Msg::Metrics { reply }).ok()?;
        let mut snap = rx.recv().ok()?;
        // Snapshot-served reads never pass through the scheduler; the
        // handles' shared counter is the only place they are counted.
        snap.snapshot_reads = self.snapshot_reads.load(Ordering::Relaxed);
        Some(snap)
    }

    /// Requests a refresh-budget change, applied by the scheduler in
    /// queue order (control message: charges no event weight and is
    /// never shed). Returns `false` if the server is gone. The shard
    /// coordinator calls this each rebalance epoch; the new budget is
    /// WAL-logged by the runtime so recovery replays the same flush
    /// schedule.
    pub fn set_budget(&self, budget: f64) -> bool {
        self.tx.send_control(Msg::SetBudget { budget }).is_ok()
    }

    /// Current ingest-queue depth (approximate).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// The error that stopped (or is poisoning) the scheduler, if any.
    pub fn last_error(&self) -> Option<ServeError> {
        self.last_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// An in-flight scheduler read started with [`ServeHandle::begin_read`].
/// Dropping the ticket abandons the reply (the scheduler may still
/// execute the read; its reply is discarded best-effort, never blocking
/// the scheduler) — the same give-up semantics as
/// [`ServeHandle::read_deadline`] timing out.
pub struct ReadTicket {
    rx: std::sync::mpsc::Receiver<Result<ReadResult, EngineError>>,
}

impl ReadTicket {
    /// Polls for the reply without blocking. `Ok(None)` means "not yet";
    /// `Err` means the scheduler is gone.
    pub fn try_take(&self) -> Result<Option<Result<ReadResult, EngineError>>, DeadlineError> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(DeadlineError::Disconnected),
        }
    }
}

/// An in-flight durable-ack batch started with
/// [`ServeHandle::try_ingest_batch_tracked`]. Completes after the
/// batch has applied and been WAL-logged.
pub struct ApplyTicket {
    rx: std::sync::mpsc::Receiver<Result<(), EngineError>>,
}

impl ApplyTicket {
    /// Polls for completion without blocking. `Ok(None)` means "not
    /// yet"; `Err` means the scheduler died with the batch outcome
    /// indeterminate.
    pub fn try_take(&self) -> Result<Option<Result<(), EngineError>>, DeadlineError> {
        match self.rx.try_recv() {
            Ok(r) => Ok(Some(r)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(DeadlineError::Disconnected),
        }
    }
}

/// An in-flight metrics fetch started with
/// [`ServeHandle::begin_metrics`].
pub struct MetricsTicket {
    rx: std::sync::mpsc::Receiver<MetricsSnapshot>,
    snapshot_reads: Arc<AtomicU64>,
}

impl MetricsTicket {
    /// Polls for the snapshot without blocking. `Ok(None)` means "not
    /// yet"; `Err` means the scheduler is gone.
    pub fn try_take(&self) -> Result<Option<MetricsSnapshot>, DeadlineError> {
        match self.rx.try_recv() {
            Ok(mut snap) => {
                // Snapshot-served reads never pass through the
                // scheduler; the handles' shared counter is the only
                // place they are counted.
                snap.snapshot_reads = self.snapshot_reads.load(Ordering::Relaxed);
                Ok(Some(snap))
            }
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(DeadlineError::Disconnected),
        }
    }
}

/// A scheduler thread driving a [`MaintenanceRuntime`].
pub struct ServeServer {
    handle: ServeHandle,
    join: JoinHandle<MaintenanceRuntime>,
}

impl ServeServer {
    /// Spawns the scheduler thread.
    pub fn spawn(mut runtime: MaintenanceRuntime, cfg: ServerConfig) -> Self {
        let capacity = cfg.queue_capacity.max(1);
        let high_water = cfg.shed_high_water.map(|h| h.clamp(1, capacity));
        let (tx, rx) = channel::<Msg>(capacity, high_water);
        let last_error = Arc::new(Mutex::new(None));
        // Publish the initial snapshot before the first client can
        // read, so stale reads are wait-free from the very start.
        let snapshot: SnapshotSlot = Arc::new(RwLock::new(runtime.view_snapshot()));
        let fenced = Arc::new(AtomicBool::new(false));
        let fence_seen = Arc::new(AtomicBool::new(false));
        let handle = ServeHandle {
            tx,
            last_error: Arc::clone(&last_error),
            snapshot: Arc::clone(&snapshot),
            snapshot_reads: Arc::new(AtomicU64::new(0)),
            fenced: Arc::clone(&fenced),
            fence_seen: Arc::clone(&fence_seen),
        };
        runtime.set_faults(cfg.faults.clone());
        let join = std::thread::spawn(move || {
            scheduler_loop(runtime, rx, last_error, snapshot, fenced, fence_seen, cfg)
        });
        ServeServer { handle, join }
    }

    /// A new producer/client handle.
    pub fn handle(&self) -> ServeHandle {
        self.handle.clone()
    }

    /// The error that stopped (or is poisoning) the scheduler, if any.
    pub fn last_error(&self) -> Option<ServeError> {
        self.handle.last_error()
    }

    /// Drops this server's own handle and waits for the scheduler to
    /// drain and exit, returning the runtime with its final metrics and
    /// trace. Any handles cloned from this server must be dropped first.
    pub fn shutdown(self) -> MaintenanceRuntime {
        let ServeServer { handle, join } = self;
        drop(handle);
        join.join().expect("scheduler thread panicked")
    }
}

struct SchedulerState {
    ingest_errors: u64,
    max_depth: usize,
    last_error: Arc<Mutex<Option<ServeError>>>,
    fenced: Arc<AtomicBool>,
}

impl SchedulerState {
    fn poison(&self, err: ServeError) {
        *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(err);
    }

    fn fenced(&self) -> bool {
        self.fenced.load(Ordering::SeqCst)
    }
}

/// The error a fenced server returns for mutating requests.
fn fenced_error() -> EngineError {
    EngineError::Maintenance {
        message: "server is fenced (superseded by a promoted replica)".into(),
    }
}

fn scheduler_loop(
    mut runtime: MaintenanceRuntime,
    rx: Receiver<Msg>,
    last_error: Arc<Mutex<Option<ServeError>>>,
    snapshot: SnapshotSlot,
    fenced: Arc<AtomicBool>,
    fence_seen: Arc<AtomicBool>,
    cfg: ServerConfig,
) -> MaintenanceRuntime {
    let mut st = SchedulerState {
        ingest_errors: 0,
        max_depth: 0,
        last_error,
        fenced,
    };
    // Re-publish only when the view actually flushed (the snapshot
    // `Arc` changes identity at every flush boundary and nowhere else),
    // keeping idle ticks free of write-lock traffic.
    let mut published = runtime.view_snapshot();
    let mut publish = |runtime: &MaintenanceRuntime| {
        let current = runtime.view_snapshot();
        let changed = match (&published, &current) {
            (Some(a), Some(b)) => !Arc::ptr_eq(a, b),
            (None, None) => false,
            _ => true,
        };
        if changed {
            *snapshot.write().unwrap_or_else(|e| e.into_inner()) = current.clone();
            published = current;
        }
    };
    loop {
        let mut disconnected = false;
        match rx.recv_timeout(cfg.tick_interval) {
            Ok(msg) => {
                // +1 counts the message being consumed, so a lone
                // quickly-drained message still registers as depth 1.
                st.max_depth = st.max_depth.max(rx.len() + 1);
                // Drain up to `max_batch` *events* before ticking: the
                // weight each message returns (its modification count)
                // is what the next flush must pay for, and compensation
                // cost grows superlinearly in that backlog. Counting
                // messages here would let batched ingest smuggle in
                // batch-size times more backlog per tick than the
                // single-mod path the budget was calibrated for.
                let mut drained = handle_msg(&mut runtime, msg, &rx, &mut st).max(1);
                while drained < cfg.max_batch.max(1) {
                    match rx.try_recv() {
                        Ok(msg) => {
                            st.max_depth = st.max_depth.max(rx.len() + 1);
                            drained += handle_msg(&mut runtime, msg, &rx, &mut st).max(1);
                        }
                        Err(_) => break,
                    }
                }
            }
            Err(RecvError::Timeout) => {}
            Err(RecvError::Disconnected) => disconnected = true,
        }
        // One scheduler tick per drain window — including idle windows,
        // so policies observe quiet periods. Skip the final tick after
        // disconnect: shutdown must not mutate state past the last
        // client interaction, or recorded traces would grow a tail no
        // client observed.
        if disconnected {
            break;
        }
        if st.fenced() {
            // A fenced leader must not append another log record: no
            // ticks, no kills to honour — just keep answering reads and
            // metrics until every handle is dropped. Acknowledging the
            // fence here (after the drain above rejected any ingest)
            // gives promotion a happens-before edge: once acknowledged,
            // the sealed log can no longer grow.
            fence_seen.store(true, Ordering::SeqCst);
            continue;
        }
        let ticks = runtime.metrics().ticks;
        if let Err(source) = runtime.tick() {
            // A failed tick poisons the server: the flush (or its WAL
            // record) may be half-applied, so maintaining further would
            // compound the damage. Clients observe the disconnect.
            st.poison(ServeError {
                ticks,
                during: "tick",
                source,
            });
            return runtime;
        }
        publish(&runtime);
        if cfg.faults.should_kill(runtime.wal_records()) {
            // Simulated crash: vanish without draining or replying.
            return runtime;
        }
    }
    runtime
}

/// Applies one queue message and returns its *event weight* — how many
/// pending-delta events it added. The drain loop charges this weight
/// (not a per-message unit) against [`ServerConfig::max_batch`], so the
/// backlog a tick can accumulate before flushing is bounded in events
/// however ingest is framed: 256 single-mod messages and four 64-mod
/// batches cost the same drain budget. Control messages (reads,
/// metrics) add no flush work and return 0; the drain loop still
/// charges every message a minimum of 1 so it always terminates.
fn handle_msg(
    runtime: &mut MaintenanceRuntime,
    msg: Msg,
    rx: &Receiver<Msg>,
    st: &mut SchedulerState,
) -> usize {
    match msg {
        Msg::Count { table, k } => {
            if st.fenced() {
                st.ingest_errors += 1;
            } else if table < runtime.n() {
                runtime.ingest_count(table, k);
            } else {
                st.ingest_errors += 1;
            }
            1
        }
        Msg::Dml { table, m } => {
            if st.fenced() {
                // Ingests racing the fence are dropped unapplied (and
                // therefore unlogged): the sealed log cannot grow.
                st.ingest_errors += 1;
                return 1;
            }
            // A rejected DML mutated nothing: count it, record it, keep
            // serving.
            if let Err(source) = runtime.ingest_dml(table, m) {
                st.ingest_errors += 1;
                st.poison(ServeError {
                    ticks: runtime.metrics().ticks,
                    during: "ingest",
                    source,
                });
            }
            1
        }
        Msg::DmlBatch { table, mods, done } => {
            let weight = mods.len();
            if st.fenced() {
                st.ingest_errors += weight as u64;
                if let Some(done) = done {
                    let _ = reply_best_effort(done, Err(fenced_error()));
                }
                return weight;
            }
            // Same per-modification failure semantics as a stream of
            // Msg::Dml: a bad modification is counted and recorded, the
            // rest of the batch still applies.
            let mut first_err: Option<EngineError> = None;
            for m in mods {
                if let Err(source) = runtime.ingest_dml(table, m) {
                    st.ingest_errors += 1;
                    if first_err.is_none() {
                        first_err = Some(source.clone());
                    }
                    st.poison(ServeError {
                        ticks: runtime.metrics().ticks,
                        during: "ingest",
                        source,
                    });
                }
            }
            if let Some(done) = done {
                // Every applied modification is WAL-logged by the time
                // we get here (ingest logs after applying), so this
                // acknowledgement really is a durability acknowledgement.
                let _ = reply_best_effort(
                    done,
                    match first_err {
                        None => Ok(()),
                        Some(e) => Err(e),
                    },
                );
            }
            weight
        }
        Msg::Read {
            mode,
            enqueued,
            reply,
        } => {
            let result = if st.fenced() && mode == ReadMode::Fresh {
                // A fresh read flushes (and logs); a fenced server must
                // not. Stale reads keep serving the sealed state.
                Err(fenced_error())
            } else {
                runtime.read_at(mode, enqueued)
            };
            let _ = reply_best_effort(reply, result);
            0
        }
        Msg::Metrics { reply } => {
            let mut snap = runtime.metrics();
            snap.queue_depth = rx.len();
            snap.max_queue_depth = st.max_depth;
            snap.shed_events = rx.shed_count();
            snap.ingest_errors = st.ingest_errors;
            snap.last_error = st
                .last_error
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(|e| e.to_string());
            let _ = reply_best_effort(reply, snap);
            0
        }
        Msg::SetBudget { budget } => {
            if st.fenced() {
                // A budget change is WAL-logged; the sealed log of a
                // fenced leader must not grow. Dropped silently — the
                // coordinator rebalances against the promoted replica.
                return 0;
            }
            // An invalid budget (or a WAL append failure) poisons the
            // server like a failed ingest would: the flush schedule can
            // no longer be reproduced from the log.
            if let Err(source) = runtime.set_budget(budget) {
                st.poison(ServeError {
                    ticks: runtime.metrics().ticks,
                    during: "set-budget",
                    source,
                });
            }
            0
        }
        Msg::FenceProbe => 0,
    }
}

/// Replies without blocking the scheduler if the requester gave up.
fn reply_best_effort<T>(reply: SyncSender<T>, value: T) -> Result<(), ()> {
    match reply.try_send(value) {
        Ok(()) => Ok(()),
        Err(MpscTrySendError::Full(_)) | Err(MpscTrySendError::Disconnected(_)) => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OnlineFlush;
    use crate::runtime::ServeConfig;
    use aivm_core::CostModel;

    fn model_runtime() -> MaintenanceRuntime {
        let cfg = ServeConfig::new(
            vec![CostModel::linear(0.05, 0.2), CostModel::linear(0.02, 3.0)],
            6.0,
        );
        MaintenanceRuntime::model(cfg, Box::new(OnlineFlush::new()))
    }

    fn spawn_model_server() -> ServeServer {
        ServeServer::spawn(model_runtime(), ServerConfig::default())
    }

    #[test]
    fn concurrent_producers_and_reader_stay_consistent() {
        let server = spawn_model_server();
        let mut producers = Vec::new();
        for table in 0..2usize {
            let h = server.handle();
            producers.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    assert!(h.ingest_count(table, 1));
                }
            }));
        }
        let reader = {
            let h = server.handle();
            std::thread::spawn(move || {
                let mut fresh = 0u64;
                for i in 0..20 {
                    let mode = if i % 2 == 0 {
                        ReadMode::Fresh
                    } else {
                        ReadMode::Stale
                    };
                    let r = h.read(mode).expect("server alive").expect("read ok");
                    assert!(!r.violated);
                    if matches!(mode, ReadMode::Fresh) {
                        assert_eq!(r.lag, 0);
                        fresh += 1;
                    }
                }
                fresh
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        let fresh = reader.join().unwrap();
        let m = server.handle().metrics().expect("server alive");
        assert_eq!(m.events_ingested, 1000);
        assert!(m.fresh_reads >= fresh);
        assert_eq!(m.constraint_violations, 0);
        assert_eq!(m.shed_events, 0);
        assert_eq!(m.last_error, None);
        let runtime = server.shutdown();
        // Final flush accounting: everything ingested is either still
        // pending or was flushed.
        let final_metrics = runtime.metrics();
        let flushed: u64 = final_metrics.mods_flushed_per_table.iter().sum();
        let pending = runtime.pending().total();
        assert_eq!(flushed + pending, 1000);
    }

    #[test]
    fn engine_stale_reads_are_snapshot_served_and_counted() {
        use aivm_engine::{
            row, DataType, Database, MaterializedView, MinStrategy, Schema, ViewDef,
        };
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::new(vec![("id", DataType::Int)]))
            .unwrap();
        db.set_key_column(t, 0);
        let view = MaterializedView::new(
            &db,
            ViewDef {
                name: "v".into(),
                tables: vec!["t".into()],
                join_preds: vec![],
                filters: vec![None],
                residual: None,
                projection: None,
                aggregate: None,
                distinct: false,
            },
            MinStrategy::Multiset,
        )
        .unwrap();
        let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 50.0);
        let rt =
            MaintenanceRuntime::engine(cfg, Box::new(crate::policy::NaiveFlush::new()), db, view)
                .unwrap();
        let server = ServeServer::spawn(rt, ServerConfig::default());
        let h = server.handle();
        // The initial (empty-view) snapshot is published at spawn:
        // stale reads are wait-free from the first client call.
        let snap0 = h.snapshot().expect("engine snapshot published at spawn");
        assert_eq!(snap0.rows.len(), 0);
        for i in 0..20i64 {
            assert!(h.ingest_dml(0, aivm_engine::Modification::Insert(row![i])));
        }
        // NaiveFlush only flushes a *full* state, and f(20) is far below
        // C here — force the catch-up with a Fresh read (FIFO: it queues
        // behind every DML, and its forced flush drains the remainder),
        // then wait for the published snapshot to reflect all 20 rows.
        h.read(ReadMode::Fresh).expect("alive").expect("fresh read");
        let deadline = Instant::now() + Duration::from_secs(5);
        let snap = loop {
            let s = h.snapshot().unwrap();
            if s.rows.len() == 20 {
                break s;
            }
            assert!(Instant::now() < deadline, "snapshot never caught up");
            std::thread::sleep(Duration::from_millis(2));
        };
        assert_eq!(snap.lag(), 0);
        // Stale reads serve that snapshot without a scheduler
        // round-trip and are counted separately from scheduler reads.
        let r = h.read(ReadMode::Stale).expect("alive").expect("read ok");
        assert_eq!(r.rows.as_ref().unwrap().len(), 20);
        assert_eq!(r.flush_cost, 0.0);
        let m = h.metrics().expect("alive");
        assert!(m.snapshot_reads >= 1, "got {}", m.snapshot_reads);
        assert_eq!(m.stale_reads, 0, "no stale read should reach the scheduler");
        drop(h);
        server.shutdown();
    }

    #[test]
    fn shutdown_returns_trace_of_everything_processed() {
        let server = spawn_model_server();
        let h = server.handle();
        for _ in 0..50 {
            assert!(h.ingest_count(0, 1));
        }
        h.read(ReadMode::Fresh).unwrap().unwrap();
        drop(h);
        let runtime = server.shutdown();
        let trace = runtime.trace().expect("tracing on");
        let ingested: u64 = trace.steps.iter().map(|s| s.arrivals.total()).sum();
        assert_eq!(ingested, 50);
        assert!(trace.steps.iter().any(|s| s.forced));
    }

    #[test]
    fn metrics_include_queue_depths() {
        let server = spawn_model_server();
        let h = server.handle();
        h.ingest_count(0, 1);
        let m = h.metrics().expect("alive");
        assert!(m.max_queue_depth >= 1);
        drop(h);
        server.shutdown();
    }

    #[test]
    fn deadline_read_times_out_behind_backlog_and_succeeds_when_generous() {
        let server = spawn_model_server();
        let h = server.handle();
        for _ in 0..2_000 {
            assert!(h.ingest_count(0, 1));
        }
        // 2000 queued events sit ahead of this read; a zero deadline
        // cannot be met.
        let err = h
            .read_deadline(ReadMode::Stale, Duration::ZERO)
            .expect_err("zero deadline behind a backlog must time out");
        assert_eq!(err, DeadlineError::TimedOut);
        // A generous deadline is served normally.
        let r = h
            .read_deadline(ReadMode::Fresh, Duration::from_secs(10))
            .expect("within deadline")
            .expect("read ok");
        assert!(!r.violated);
        assert_eq!(r.lag, 0);
        drop(h);
        server.shutdown();
    }

    #[test]
    fn bad_ingest_is_counted_not_fatal() {
        let server = spawn_model_server();
        let h = server.handle();
        // Table 7 does not exist; the scheduler must survive.
        assert!(h.ingest_count(7, 3));
        assert!(h.ingest_count(0, 2));
        let m = h.metrics().expect("scheduler alive after bad ingest");
        assert_eq!(m.ingest_errors, 1);
        assert_eq!(m.events_ingested, 2);
        drop(h);
        server.shutdown();
    }

    #[test]
    fn injected_policy_panic_degrades_without_violations() {
        let rt = model_runtime();
        let cfg = ServerConfig {
            faults: FaultPlan {
                policy_panic_at: Some(2),
                ..FaultPlan::none()
            },
            ..ServerConfig::default()
        };
        let server = ServeServer::spawn(rt, cfg);
        let h = server.handle();
        for _ in 0..200 {
            assert!(h.ingest_count(0, 1));
            assert!(h.ingest_count(1, 1));
        }
        // Let idle ticks pass t = 2 so the injected panic fires on a
        // policy tick (a Fresh read right now could swallow t = 2 with
        // its forced, policy-free flush).
        std::thread::sleep(Duration::from_millis(50));
        // Fresh reads keep satisfying the budget after the demotion.
        let r = h.read(ReadMode::Fresh).expect("alive").expect("read ok");
        assert!(!r.violated);
        let m = h.metrics().expect("alive");
        assert_eq!(m.policy_demotions, 1);
        assert_eq!(m.constraint_violations, 0);
        drop(h);
        let runtime = server.shutdown();
        assert!(runtime.demoted());
    }

    #[test]
    fn kill_fault_stops_scheduler_and_unblocks_clients() {
        use crate::wal::{MemWal, WalWriter};
        let mem = MemWal::new();
        let mut rt = model_runtime();
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 4).unwrap());
        let cfg = ServerConfig {
            faults: FaultPlan {
                kill_at_record: Some(10),
                ..FaultPlan::none()
            },
            tick_interval: Duration::from_micros(100),
            ..ServerConfig::default()
        };
        let server = ServeServer::spawn(rt, cfg);
        let h = server.handle();
        // Keep feeding until the scheduler dies; sends start failing.
        let mut died = false;
        for _ in 0..10_000 {
            if !h.ingest_count(0, 1) {
                died = true;
                break;
            }
        }
        assert!(died, "kill fault never fired");
        assert!(h.read(ReadMode::Stale).is_none());
        assert!(h.last_error().is_none(), "a crash is silent");
        drop(h);
        let runtime = server.shutdown();
        assert!(runtime.wal_records() >= 10);
    }

    #[test]
    fn tracked_batch_acknowledges_after_apply_and_wal_append() {
        use crate::wal::{read_wal, MemWal, WalWriter};
        use aivm_engine::{
            row, DataType, Database, MaterializedView, MinStrategy, Schema, ViewDef,
        };
        let mem = MemWal::new();
        let mut db = Database::new();
        let t = db
            .create_table("t", Schema::new(vec![("id", DataType::Int)]))
            .unwrap();
        db.set_key_column(t, 0);
        let view = MaterializedView::new(
            &db,
            ViewDef {
                name: "v".into(),
                tables: vec!["t".into()],
                join_preds: vec![],
                filters: vec![None],
                residual: None,
                projection: None,
                aggregate: None,
                distinct: false,
            },
            MinStrategy::Multiset,
        )
        .unwrap();
        let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 50.0);
        let mut rt =
            MaintenanceRuntime::engine(cfg, Box::new(crate::policy::NaiveFlush::new()), db, view)
                .unwrap();
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 1).unwrap());
        let server = ServeServer::spawn(rt, ServerConfig::default());
        let h = server.handle();
        let mods: Vec<aivm_engine::Modification> = (0..5i64)
            .map(|i| aivm_engine::Modification::Insert(row![i]))
            .collect();
        let ticket = h.try_ingest_batch_tracked(0, mods).expect("enqueued");
        let deadline = Instant::now() + Duration::from_secs(5);
        let outcome = loop {
            match ticket.try_take().expect("scheduler alive") {
                Some(r) => break r,
                None => {
                    assert!(Instant::now() < deadline, "ack never arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        };
        outcome.expect("batch applied");
        // The acknowledgement implies durability: all 5 DML records are
        // already in the log.
        let dml = read_wal(&mem.bytes())
            .unwrap()
            .records
            .iter()
            .filter(|r| matches!(r, crate::wal::WalRecord::Dml { .. }))
            .count();
        assert_eq!(dml, 5);
        drop(h);
        server.shutdown();
    }

    #[test]
    fn fenced_server_rejects_ingest_and_stops_logging() {
        use crate::wal::{MemWal, WalWriter};
        let mem = MemWal::new();
        let mut rt = model_runtime();
        rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 1).unwrap());
        let server = ServeServer::spawn(rt, ServerConfig::default());
        let h = server.handle();
        assert!(h.ingest_count(0, 1));
        h.fence();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !h.fence_acknowledged() {
            assert!(Instant::now() < deadline, "fence never acknowledged");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Every ingest path rejects without touching the scheduler.
        assert!(!h.ingest_count(0, 1));
        assert!(!h.ingest_dml(
            0,
            aivm_engine::Modification::Insert(aivm_engine::row![1i64])
        ));
        assert!(matches!(
            h.try_ingest_batch(0, vec![]),
            Err(TrySendError::Disconnected)
        ));
        // Fresh reads (which would flush and log) error; metrics and
        // stale state stay available.
        let r = h.read(ReadMode::Fresh).expect("scheduler still replies");
        assert!(r.is_err(), "fresh read on a fenced server must fail");
        assert!(h.metrics().is_some());
        // The sealed log stops growing: no ticks are appended while
        // fenced.
        let frozen = mem.bytes().len();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(mem.bytes().len(), frozen, "fenced leader appended to WAL");
        drop(h);
        server.shutdown();
    }

    #[test]
    fn overload_sheds_oldest_ingest_and_counts_it() {
        let rt = model_runtime();
        let cfg = ServerConfig {
            queue_capacity: 1024,
            shed_high_water: Some(8),
            // Slow ticks so the queue actually fills.
            tick_interval: Duration::from_millis(20),
            ..ServerConfig::default()
        };
        let server = ServeServer::spawn(rt, cfg);
        let h = server.handle();
        for _ in 0..200 {
            assert!(h.ingest_count(0, 1));
        }
        let m = h.metrics().expect("alive");
        let runtime = {
            drop(h);
            server.shutdown()
        };
        let final_shed = m.shed_events;
        assert!(final_shed > 0, "high-water mark never triggered shedding");
        // Shed + ingested accounts for every send.
        assert_eq!(runtime.metrics().events_ingested + final_shed, 200);
    }
}
