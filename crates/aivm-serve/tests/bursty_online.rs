//! ONLINE under bursty arrivals (satellite of the serve PR): the
//! paper's asymmetry claim, observed through the live runtime.
//!
//! Table 0 is probe-cheap (tiny setup `b`), table 1 pays a large setup
//! per batch. Under a bursty stream ONLINE should flush the cheap table
//! eagerly (many small batches) while batching the expensive one (few
//! large batches) — and fresh reads must never observe a constraint
//! violation.

use aivm_core::CostModel;
use aivm_serve::{MaintenanceRuntime, OnlineFlush, ReadMode, ServeConfig};
use aivm_workload::bursty_arrivals;

fn bursty_runtime() -> MaintenanceRuntime {
    let mut cfg = ServeConfig::new(
        vec![
            CostModel::linear(0.06, 0.2), // cheap per batch: probe side
            CostModel::linear(0.05, 7.0), // expensive setup: scan side
        ],
        12.0,
    );
    cfg.strict = true; // any violation fails the test immediately
    MaintenanceRuntime::model(cfg, Box::new(OnlineFlush::new()))
}

#[test]
fn online_flushes_cheap_eagerly_and_batches_expensive() {
    let mut rt = bursty_runtime();
    // Deterministic bursty stream: 4 modifications per table every 5th
    // tick, silence in between.
    let arrivals = bursty_arrivals(&[4, 4], 5, 600);
    for t in 0..=600usize {
        let a = arrivals.at(t);
        for table in 0..2 {
            if a[table] > 0 {
                rt.ingest_count(table, a[table]);
            }
        }
        let report = rt.tick().expect("model tick");
        assert!(!report.violated, "violation at tick {t}");
    }
    let m = rt.metrics();
    assert_eq!(m.constraint_violations, 0);
    assert!(
        m.flushes_per_table[0] > m.flushes_per_table[1],
        "cheap table should flush more often: {:?}",
        m.flushes_per_table
    );
    let avg_batch = |i: usize| m.mods_flushed_per_table[i] as f64 / m.flushes_per_table[i] as f64;
    assert!(
        avg_batch(1) > avg_batch(0),
        "expensive table should batch bigger: cheap {:.2} vs expensive {:.2}",
        avg_batch(0),
        avg_batch(1)
    );
}

#[test]
fn fresh_reads_never_observe_a_violation_under_bursts() {
    let mut rt = bursty_runtime();
    let arrivals = bursty_arrivals(&[6, 6], 4, 400);
    for t in 0..=400usize {
        let a = arrivals.at(t);
        for table in 0..2 {
            if a[table] > 0 {
                rt.ingest_count(table, a[table]);
            }
        }
        if t % 9 == 0 {
            // Fresh read mid-stream: runs a policy tick internally, then
            // force-flushes. Strict mode panics on any violation; check
            // the report too.
            let r = rt.read(ReadMode::Fresh).expect("model read");
            assert!(!r.violated, "fresh read violated C at tick {t}");
            assert!(r.flush_cost <= 12.0 + 1e-9);
            assert_eq!(r.lag, 0);
        } else {
            rt.tick().expect("model tick");
        }
    }
    let m = rt.metrics();
    assert_eq!(m.constraint_violations, 0);
    assert_eq!(m.fresh_reads, 45);
    assert_eq!(m.refresh_latency_ns.count, 45);
}
