//! Figure 1: the two cost-function shapes of `R ⋈ S`.
//!
//! `R` (Supplier) is indexed on the join attribute `suppkey`; `S`
//! (PartSupp) is not. Processing a batch of `ΔS` modifications probes
//! `R`'s index — cost roughly linear in the batch with a small slope —
//! while processing `ΔR` must scan the entire `S` — cost dominated by a
//! batch-size-independent scan. The driver measures both curves on the
//! live engine, exactly like the paper measured its commercial DBMS.

use crate::report::{fnum, ExpTable};
use aivm_core::CostModel;
use aivm_engine::{
    measure_cost_function, CostMeasurement, MaterializedView, MeasureConfig, MinStrategy,
};
use aivm_tpcr::{generate, TpcrConfig, UpdateGen};

/// Configuration of the Fig. 1 measurement.
#[derive(Clone, Debug)]
pub struct Fig1Config {
    /// Database scale.
    pub scale: TpcrConfig,
    /// Batch sizes to measure.
    pub batch_sizes: Vec<u64>,
    /// Trials per size (median kept).
    pub trials: usize,
    /// Seed for data and update generation.
    pub seed: u64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            scale: TpcrConfig::medium(),
            batch_sizes: vec![30, 60, 120, 240, 360, 480, 600],
            trials: 3,
            seed: 1,
        }
    }
}

/// The two-way join view of the example: `Supplier ⋈ PartSupp`.
pub const FIG1_VIEW_SQL: &str = "\
SELECT s.suppkey, s.nationkey, ps.pskey, ps.supplycost \
FROM supplier AS s, partsupp AS ps \
WHERE s.suppkey = ps.suppkey";

/// Measurement results: `c_ΔR` (Supplier deltas, scan side) and `c_ΔS`
/// (PartSupp deltas, probe side).
#[derive(Clone, Debug)]
pub struct Fig1Result {
    /// Supplier-delta curve (the paper's `c_ΔR`).
    pub c_dr: CostMeasurement,
    /// PartSupp-delta curve (the paper's `c_ΔS`).
    pub c_ds: CostMeasurement,
}

impl Fig1Result {
    /// Linear fits `(c_ΔR, c_ΔS)`, when enough samples exist.
    pub fn fits(&self) -> (Option<CostModel>, Option<CostModel>) {
        (self.c_dr.fit_linear(), self.c_ds.fit_linear())
    }
}

/// Runs the measurement.
pub fn run(config: &Fig1Config) -> Fig1Result {
    let data = generate(&config.scale, config.seed);
    let def = aivm_engine::parse_view(&data.db, "fig1_join", FIG1_VIEW_SQL)
        .expect("fig1 view SQL parses");
    let view =
        MaterializedView::new(&data.db, def, MinStrategy::Multiset).expect("view initializes");
    let supplier_pos = view.table_position("supplier").expect("supplier in view");
    let partsupp_pos = view.table_position("partsupp").expect("partsupp in view");
    let cfg = MeasureConfig {
        batch_sizes: config.batch_sizes.clone(),
        trials: config.trials,
    };

    let mut gen_r = UpdateGen::new(&data, config.seed + 1);
    let c_dr = measure_cost_function(
        &data.db,
        &view,
        supplier_pos,
        |db| gen_r.supplier_update(db),
        &cfg,
    )
    .expect("supplier measurement");

    let mut gen_s = UpdateGen::new(&data, config.seed + 2);
    let c_ds = measure_cost_function(
        &data.db,
        &view,
        partsupp_pos,
        |db| gen_s.partsupp_update(db),
        &cfg,
    )
    .expect("partsupp measurement");

    Fig1Result { c_dr, c_ds }
}

/// Runs and renders the two series.
pub fn table(config: &Fig1Config) -> ExpTable {
    let result = run(config);
    let mut t = ExpTable::new(
        "Figure 1: cost functions c_ΔR (scan side) and c_ΔS (probe side)",
        &["batch", "c_dR (ms)", "c_dS (ms)"],
    );
    t.note(format!(
        "Supplier indexed on suppkey; PartSupp not; scale: {} suppliers, {} partsupp rows",
        config.scale.suppliers,
        config.scale.parts * config.scale.partsupp_per_part
    ));
    for (&(k, dr), &(_, ds)) in result.c_dr.samples.iter().zip(&result.c_ds.samples) {
        t.row(vec![k.to_string(), fnum(dr), fnum(ds)]);
    }
    if let (Some(CostModel::Linear { a: ar, b: br }), Some(CostModel::Linear { a: as_, b: bs })) =
        result.fits()
    {
        t.note(format!(
            "linear fits: c_dR ≈ {:.4}·k + {:.2}, c_dS ≈ {:.4}·k + {:.2}",
            ar, br, as_, bs
        ));
        t.note(format!(
            "setup asymmetry b_R/b_S ≈ {:.1} (paper: scan side dominated by constant)",
            br / bs.max(1e-9)
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig1Config {
        Fig1Config {
            scale: TpcrConfig::small(),
            batch_sizes: vec![5, 20, 80],
            trials: 2,
            seed: 9,
        }
    }

    #[test]
    fn scan_side_has_larger_setup_than_probe_side() {
        let r = run(&quick());
        // Compare costs at the smallest batch: the scan side pays the
        // whole PartSupp scan even for 5 modifications.
        let dr_small = r.c_dr.samples[0].1;
        let ds_small = r.c_ds.samples[0].1;
        assert!(
            dr_small > ds_small,
            "c_dR(5) = {dr_small} must exceed c_dS(5) = {ds_small}"
        );
    }

    #[test]
    fn probe_side_grows_roughly_linearly() {
        let r = run(&quick());
        let s = &r.c_ds.samples;
        // Cost at 80 should exceed cost at 5 (per-mod work dominates).
        assert!(s[2].1 > s[0].1 * 1.5, "{s:?}");
    }

    #[test]
    fn table_renders_both_series() {
        let t = table(&quick());
        assert_eq!(t.rows.len(), 3);
        assert!(t.render().contains("c_dR"));
    }
}
