//! Figure 5: simulation validation.
//!
//! The counts-only simulator charges each action its cost under measured
//! cost functions; the actual mode executes the same plans on the live
//! engine and measures wall-clock time. The paper reports "negligible
//! difference" between the two for three plans; this driver reproduces
//! that comparison for NAIVE, OPT^LGM and ONLINE.

use crate::actual::run_plan_actual;
use crate::experiments::fig4::{run as run_fig4, Fig4Config};
use crate::report::{fnum, ExpTable};
use crate::runner::{simulate_plan, simulate_policy};
use aivm_core::{naive_plan, Arrivals, Counts, Instance, Plan};
use aivm_engine::MinStrategy;
use aivm_solver::astar::HeuristicMode;
use aivm_solver::{optimal_lgm_plan_with, OnlinePolicy};
use aivm_tpcr::{generate, install_paper_view, TpcrConfig, UpdateGen};

/// Configuration of the validation run.
#[derive(Clone, Debug)]
pub struct Fig5Config {
    /// Database scale.
    pub scale: TpcrConfig,
    /// Horizon `T` (1 PartSupp + 1 Supplier update per step).
    pub horizon: usize,
    /// Batch sizes for the cost-function measurement phase.
    pub measure_batches: Vec<u64>,
    /// Trials per measurement point.
    pub trials: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            scale: TpcrConfig::medium(),
            horizon: 200,
            measure_batches: vec![10, 25, 50, 100, 200],
            trials: 3,
            seed: 5,
        }
    }
}

/// One validated plan.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Plan label.
    pub plan: String,
    /// Cost predicted by the counts-only simulator (ms).
    pub simulated_ms: f64,
    /// Measured wall-clock execution (ms).
    pub actual_ms: f64,
    /// Whether the final view matched a from-scratch evaluation.
    pub consistent: bool,
}

/// Runs measurement + simulation + actual execution for the three plans.
pub fn run(config: &Fig5Config) -> Vec<Fig5Row> {
    // Phase 1: measure the cost functions (Fig. 4 machinery).
    let fig4 = run_fig4(&Fig4Config {
        scale: config.scale.clone(),
        batch_sizes: config.measure_batches.clone(),
        trials: config.trials,
        strategy: MinStrategy::Multiset,
        seed: config.seed,
    });
    let costs = fig4.piecewise();

    // Phase 2: problem instance with a budget that forces several
    // flushes across the horizon: the refresh cost of ~15 pending
    // updates per table.
    let probe = Counts::from_slice(&[15, 15]);
    let tmp = Instance::new(
        costs.clone(),
        Arrivals::uniform(Counts::from_slice(&[1, 1]), config.horizon),
        f64::MAX,
    );
    let budget = tmp.refresh_cost(&probe);
    let inst = Instance::new(costs, tmp.arrivals.clone(), budget);

    // Phase 3: the three plans. Measured piecewise curves are neither
    // linear nor guaranteed subadditive (timer noise can bend them), so
    // the heuristic-free search — optimal for any monotone costs —
    // drives the planner here.
    let opt = optimal_lgm_plan_with(&inst, HeuristicMode::None);
    let (online_plan, _) =
        simulate_policy("ONLINE", &inst, &mut OnlinePolicy::new()).expect("online valid");
    let plans: Vec<(String, Plan)> = vec![
        ("NAIVE".into(), naive_plan(&inst)),
        ("OPT^LGM".into(), opt.plan),
        ("ONLINE".into(), online_plan),
    ];

    // Phase 4: simulate and actually execute each plan on identical
    // database/update-stream replicas. Generate the database and install
    // the view once; per-plan replicas are cheap copy-on-write clones of
    // the same state, byte-identical to regenerating from the seed.
    let mut data0 = generate(&config.scale, config.seed);
    let view0 = install_paper_view(&mut data0.db, MinStrategy::Multiset).expect("view installs");
    plans
        .into_iter()
        .map(|(name, plan)| {
            let simulated_ms = simulate_plan(&name, &inst, &plan)
                .expect("plan valid")
                .total_cost;
            let mut data = data0.clone();
            let mut view = view0.clone();
            let mut gen = UpdateGen::new(&data, config.seed + 100);
            let actual =
                run_plan_actual(&mut data, &mut view, &mut gen, &inst, &plan).expect("actual run");
            Fig5Row {
                plan: name,
                simulated_ms,
                actual_ms: actual.total_millis,
                consistent: actual.consistent,
            }
        })
        .collect()
}

/// Runs and renders the validation table.
pub fn table(config: &Fig5Config) -> ExpTable {
    let rows = run(config);
    let mut t = ExpTable::new(
        "Figure 5: simulation validation (simulated vs actual cost)",
        &[
            "plan",
            "simulated (ms)",
            "actual (ms)",
            "actual/simulated",
            "consistent",
        ],
    );
    t.note(format!(
        "T = {}; 1 PartSupp + 1 Supplier update per step; cost functions measured on the live engine first",
        config.horizon
    ));
    for r in &rows {
        t.row(vec![
            r.plan.clone(),
            fnum(r.simulated_ms),
            fnum(r.actual_ms),
            fnum(r.actual_ms / r.simulated_ms.max(1e-9)),
            r.consistent.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig5Config {
        Fig5Config {
            scale: TpcrConfig::small(),
            horizon: 40,
            measure_batches: vec![5, 15, 30],
            trials: 1,
            seed: 55,
        }
    }

    #[test]
    fn all_plans_execute_consistently() {
        let rows = run(&quick());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.consistent, "{} must end consistent", r.plan);
            assert!(r.simulated_ms > 0.0);
            assert!(r.actual_ms > 0.0);
        }
    }

    #[test]
    fn simulation_tracks_actual_within_an_order_of_magnitude() {
        // Tight agreement needs a quiet machine and larger scales (the
        // repro binary's default); the unit test just guards against
        // gross mismatches (e.g. unit confusion between ms and s).
        let rows = run(&quick());
        for r in &rows {
            let ratio = r.actual_ms / r.simulated_ms;
            assert!(
                (0.05..20.0).contains(&ratio),
                "{}: simulated {} vs actual {} (ratio {ratio})",
                r.plan,
                r.simulated_ms,
                r.actual_ms
            );
        }
    }

    #[test]
    fn table_renders() {
        let t = table(&quick());
        assert_eq!(t.rows.len(), 3);
    }
}
