//! Refresh-process experiment (extension): the operational pub/sub
//! setting with *multiple, condition-driven* refresh instants.
//!
//! The paper's model refreshes once at a known/estimated `T`; a running
//! pub/sub server instead refreshes whenever a subscriber's notification
//! condition fires (§1). This experiment drives NAIVE and ONLINE through
//! streams whose refresh instants come from three condition kinds —
//! periodic, memoryless (Bernoulli), and drift-threshold over a random
//! walk — and compares against the episodic optimum (per-episode A\*,
//! exactly optimal for linear costs).

use crate::report::{fnum, ExpTable};
use crate::runner::{episodic_optimal, run_policy_with_refreshes};
use aivm_core::{Arrivals, CostModel, Counts, Instance};
use aivm_solver::{NaivePolicy, OnlinePolicy};
use aivm_workload::{refresh_times, Bernoulli, DriftThreshold, Periodic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the refresh-process experiment.
#[derive(Clone, Debug)]
pub struct RefreshProcessConfig {
    /// Stream horizon.
    pub horizon: usize,
    /// Response-time budget.
    pub budget: f64,
    /// Per-table cost functions.
    pub costs: Vec<CostModel>,
    /// Seed for the drift random walk and Bernoulli draws.
    pub seed: u64,
}

impl Default for RefreshProcessConfig {
    fn default() -> Self {
        RefreshProcessConfig {
            horizon: 1000,
            budget: super::FIG6_BUDGET,
            costs: super::default_costs(),
            seed: 31,
        }
    }
}

/// One refresh process's results.
#[derive(Clone, Debug)]
pub struct RefreshProcessRow {
    /// Condition label.
    pub condition: String,
    /// Number of refresh instants that fired.
    pub refreshes: usize,
    /// NAIVE's total cost.
    pub naive: f64,
    /// ONLINE's total cost.
    pub online: f64,
    /// The episodic optimum (lower bound).
    pub opt: f64,
}

/// Generates a bounded random walk (the "oil price") for the drift
/// condition.
fn random_walk(horizon: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = 100.0f64;
    (0..=horizon)
        .map(|_| {
            v = (v + rng.gen_range(-2.0..2.0)).max(1.0);
            v
        })
        .collect()
}

/// Runs all three refresh processes on the same arrival stream.
pub fn run(config: &RefreshProcessConfig) -> Vec<RefreshProcessRow> {
    let inst = Instance::new(
        config.costs.clone(),
        Arrivals::uniform(Counts::from_slice(&[1, 1]), config.horizon),
        config.budget,
    );
    let walk = random_walk(config.horizon, config.seed);
    let conditions: Vec<(String, Vec<usize>)> = vec![
        (
            "periodic(250)".into(),
            refresh_times(&mut Periodic::new(250), walk.iter().copied()),
        ),
        (
            "bernoulli(1/200)".into(),
            refresh_times(
                &mut Bernoulli::new(1.0 / 200.0, config.seed + 1),
                walk.iter().copied(),
            ),
        ),
        (
            "drift(5%)".into(),
            refresh_times(&mut DriftThreshold::new(0.05), walk.iter().copied()),
        ),
    ];
    conditions
        .into_iter()
        .map(|(condition, instants)| {
            let naive = run_policy_with_refreshes(&inst, &mut NaivePolicy::new(), &instants)
                .expect("naive valid")
                .total_cost;
            let online = run_policy_with_refreshes(&inst, &mut OnlinePolicy::new(), &instants)
                .expect("online valid")
                .total_cost;
            let opt = episodic_optimal(&inst, &instants);
            RefreshProcessRow {
                condition,
                refreshes: instants.len(),
                naive,
                online,
                opt,
            }
        })
        .collect()
}

/// Runs and renders the experiment.
pub fn table(config: &RefreshProcessConfig) -> ExpTable {
    let rows = run(config);
    let mut t = ExpTable::new(
        "Refresh processes (extension): condition-driven notification instants",
        &[
            "condition",
            "refreshes",
            "NAIVE",
            "ONLINE",
            "OPT (episodic)",
            "NAIVE/OPT",
            "ONLINE/OPT",
        ],
    );
    t.note(format!(
        "C = {}; T = {}; 1+1 updates/step; conditions observe a seeded random walk",
        config.budget, config.horizon
    ));
    for r in &rows {
        t.row(vec![
            r.condition.clone(),
            r.refreshes.to_string(),
            fnum(r.naive),
            fnum(r.online),
            fnum(r.opt),
            fnum(r.naive / r.opt),
            fnum(r.online / r.opt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RefreshProcessConfig {
        RefreshProcessConfig {
            horizon: 400,
            ..Default::default()
        }
    }

    #[test]
    fn policies_stay_valid_and_bounded_by_optimum() {
        for r in run(&quick()) {
            assert!(r.opt > 0.0, "{}", r.condition);
            assert!(r.naive + 1e-9 >= r.opt, "{}", r.condition);
            assert!(r.online + 1e-9 >= r.opt, "{}", r.condition);
            assert!(
                r.online <= r.naive + 1e-9,
                "{}: ONLINE {} should not lose to NAIVE {}",
                r.condition,
                r.online,
                r.naive
            );
        }
    }

    #[test]
    fn conditions_fire_different_patterns() {
        let rows = run(&quick());
        assert_eq!(rows.len(), 3);
        let periodic = &rows[0];
        assert_eq!(periodic.refreshes, 1, "one periodic instant in 400 steps");
    }

    #[test]
    fn table_renders() {
        let t = table(&quick());
        assert_eq!(t.rows.len(), 3);
    }
}
