//! Figure 6: total maintenance cost vs. refresh time.
//!
//! One PartSupp and one Supplier modification arrive at every time step;
//! the response-time constraint is 12 seconds; the refresh time varies
//! from 100 to 1000 seconds. NAIVE, OPT^LGM (A\*, per refresh time),
//! ADAPT (adapted from the plan optimized for `T_0 = 500`) and ONLINE
//! are compared.

use crate::report::{fnum, ExpTable};
use crate::runner::{simulate_plan, simulate_policy};
use aivm_core::{naive_plan, Arrivals, CostModel, Counts, Instance};
use aivm_solver::{adapt_plan, optimal_lgm_plan, AdaptSchedule, OnlinePolicy};

/// Configuration of the Fig. 6 sweep.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Refresh times to sweep.
    pub refresh_times: Vec<usize>,
    /// The estimation horizon ADAPT's base plan is optimized for.
    pub adapt_t0: usize,
    /// Response-time budget `C`.
    pub budget: f64,
    /// Per-table cost functions `[f_PartSupp, f_Supplier]`.
    pub costs: Vec<CostModel>,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            refresh_times: (1..=10).map(|i| i * 100).collect(),
            adapt_t0: 500,
            budget: super::FIG6_BUDGET,
            costs: super::default_costs(),
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Refresh time `T`.
    pub t: usize,
    /// Total cost of each plan.
    pub naive: f64,
    /// OPT^LGM.
    pub opt: f64,
    /// ADAPT.
    pub adapt: f64,
    /// ONLINE.
    pub online: f64,
}

/// Runs the sweep and returns the raw rows. Sweep points are
/// independent pure computations, so they fan out on the configured
/// worker threads ([`crate::par`]) with deterministic result ordering.
pub fn run(config: &Fig6Config) -> Vec<Fig6Row> {
    let instance_for = |t: usize| {
        Instance::new(
            config.costs.clone(),
            Arrivals::uniform(Counts::from_slice(&[1, 1]), t),
            config.budget,
        )
    };
    let schedule = AdaptSchedule::precompute(&instance_for(config.adapt_t0));
    let point = |t: usize| -> Fig6Row {
        let inst = instance_for(t);
        let naive = simulate_plan("NAIVE", &inst, &naive_plan(&inst))
            .expect("naive valid")
            .total_cost;
        let opt = optimal_lgm_plan(&inst).cost;
        let adapted = adapt_plan(&schedule, &inst);
        let adapt = simulate_plan("ADAPT", &inst, &adapted)
            .expect("adapted plan valid under uniform arrivals")
            .total_cost;
        let (_, online) =
            simulate_policy("ONLINE", &inst, &mut OnlinePolicy::new()).expect("online valid");
        Fig6Row {
            t,
            naive,
            opt,
            adapt,
            online: online.total_cost,
        }
    };
    crate::par::par_map(&config.refresh_times, |&t| point(t))
}

/// Runs the sweep and renders the paper's series.
pub fn table(config: &Fig6Config) -> ExpTable {
    let rows = run(config);
    let mut t = ExpTable::new(
        "Figure 6: varying refresh time (total cost, seconds)",
        &["T", "NAIVE", "OPT^LGM", "ADAPT", "ONLINE", "NAIVE/OPT"],
    );
    t.note(format!(
        "C = {}; 1 PartSupp + 1 Supplier update per step; ADAPT from T0 = {}",
        config.budget, config.adapt_t0
    ));
    for r in &rows {
        t.row(vec![
            r.t.to_string(),
            fnum(r.naive),
            fnum(r.opt),
            fnum(r.adapt),
            fnum(r.online),
            fnum(r.naive / r.opt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig6Config {
        Fig6Config {
            refresh_times: vec![100, 200, 300],
            adapt_t0: 200,
            ..Fig6Config::default()
        }
    }

    #[test]
    fn ordering_matches_paper() {
        for r in run(&small_config()) {
            // OPT is optimal among the strategies.
            assert!(r.opt <= r.naive + 1e-9, "T={}", r.t);
            assert!(r.opt <= r.adapt + 1e-9, "T={}", r.t);
            assert!(r.opt <= r.online + 1e-9, "T={}", r.t);
            // NAIVE is clearly outperformed (the paper's headline).
            assert!(
                r.naive > 1.15 * r.opt,
                "T={}: NAIVE {} should clearly exceed OPT {}",
                r.t,
                r.naive,
                r.opt
            );
            // ADAPT and ONLINE stay close to OPT.
            assert!(
                r.adapt <= 1.35 * r.opt,
                "T={}: ADAPT {} vs OPT {}",
                r.t,
                r.adapt,
                r.opt
            );
            assert!(
                r.online <= 1.5 * r.opt,
                "T={}: ONLINE {} vs OPT {}",
                r.t,
                r.online,
                r.opt
            );
        }
    }

    #[test]
    fn adapt_exact_at_t0() {
        let cfg = small_config();
        let rows = run(&cfg);
        let at_t0 = rows.iter().find(|r| r.t == cfg.adapt_t0).unwrap();
        assert!(
            (at_t0.adapt - at_t0.opt).abs() < 1e-9,
            "ADAPT equals OPT at T = T0"
        );
    }

    #[test]
    fn costs_grow_with_horizon() {
        let rows = run(&small_config());
        assert!(rows.windows(2).all(|w| w[1].opt >= w[0].opt));
    }

    #[test]
    fn table_renders() {
        let t = table(&small_config());
        assert_eq!(t.rows.len(), 3);
        assert!(t.render().contains("NAIVE"));
    }
}
