//! Figure 4: measured cost functions for the paper's evaluation view.
//!
//! The view is `MIN(ps.supplycost)` over the four-way join
//! PartSupp ⋈ Supplier ⋈ Nation ⋈ Region with `R.name = 'MIDDLE EAST'`
//! (§5). Batches of PartSupp `supplycost` updates and Supplier
//! `nationkey` updates are flushed through the live engine and timed;
//! the paper observes PartSupp updates staying fairly stable after an
//! initial increase and Supplier updates costing more because PartSupp
//! (the table their propagation must scan) is much larger.

use crate::report::{fnum, ExpTable};
use aivm_core::CostModel;
use aivm_engine::{measure_cost_function, CostMeasurement, MeasureConfig, MinStrategy};
use aivm_tpcr::{generate, install_paper_view, TpcrConfig, UpdateGen};

/// Configuration of the Fig. 4 measurement.
#[derive(Clone, Debug)]
pub struct Fig4Config {
    /// Database scale.
    pub scale: TpcrConfig,
    /// Batch sizes to measure.
    pub batch_sizes: Vec<u64>,
    /// Trials per size (median kept).
    pub trials: usize,
    /// Which MIN maintenance strategy the view uses (the paper's SQL
    /// statements behave like `Recompute`).
    pub strategy: MinStrategy,
    /// Seed for data and update generation.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            scale: TpcrConfig::medium(),
            batch_sizes: vec![25, 50, 100, 200, 400, 800],
            trials: 3,
            strategy: MinStrategy::Recompute,
            seed: 4,
        }
    }
}

/// Measurement results for the two updated tables.
#[derive(Clone, Debug)]
pub struct Fig4Result {
    /// PartSupp `supplycost` update batches.
    pub partsupp: CostMeasurement,
    /// Supplier `nationkey` update batches.
    pub supplier: CostMeasurement,
}

impl Fig4Result {
    /// Linear fits `(f_PartSupp, f_Supplier)` in milliseconds.
    pub fn fits(&self) -> (Option<CostModel>, Option<CostModel>) {
        (self.partsupp.fit_linear(), self.supplier.fit_linear())
    }

    /// The measured curves as monotone subadditive piecewise cost models
    /// `[f_PartSupp, f_Supplier]`, ready to drive the simulator.
    pub fn piecewise(&self) -> Vec<CostModel> {
        vec![self.partsupp.to_piecewise(), self.supplier.to_piecewise()]
    }
}

/// Runs the measurement.
pub fn run(config: &Fig4Config) -> Fig4Result {
    let mut data = generate(&config.scale, config.seed);
    let view = install_paper_view(&mut data.db, config.strategy).expect("paper view installs");
    let ps_pos = view.table_position("partsupp").expect("partsupp in view");
    let s_pos = view.table_position("supplier").expect("supplier in view");
    let cfg = MeasureConfig {
        batch_sizes: config.batch_sizes.clone(),
        trials: config.trials,
    };

    let mut gen_ps = UpdateGen::new(&data, config.seed + 1);
    let partsupp = measure_cost_function(
        &data.db,
        &view,
        ps_pos,
        |db| gen_ps.partsupp_update(db),
        &cfg,
    )
    .expect("partsupp measurement");

    let mut gen_s = UpdateGen::new(&data, config.seed + 2);
    let supplier =
        measure_cost_function(&data.db, &view, s_pos, |db| gen_s.supplier_update(db), &cfg)
            .expect("supplier measurement");

    Fig4Result { partsupp, supplier }
}

/// Runs and renders the two series.
pub fn table(config: &Fig4Config) -> ExpTable {
    let r = run(config);
    let mut t = ExpTable::new(
        "Figure 4: measured maintenance cost of the 4-way MIN view",
        &["batch", "PartSupp upd (ms)", "Supplier upd (ms)"],
    );
    t.note(format!(
        "scale: {} suppliers, {} partsupp rows; MIN strategy: {:?}",
        config.scale.suppliers,
        config.scale.parts * config.scale.partsupp_per_part,
        config.strategy
    ));
    for (&(k, ps), &(_, s)) in r.partsupp.samples.iter().zip(&r.supplier.samples) {
        t.row(vec![k.to_string(), fnum(ps), fnum(s)]);
    }
    if let (Some(CostModel::Linear { a: ap, b: bp }), Some(CostModel::Linear { a: as_, b: bs })) =
        r.fits()
    {
        t.note(format!(
            "linear fits: f_PS ≈ {:.4}·k + {:.2}, f_S ≈ {:.4}·k + {:.2}",
            ap, bp, as_, bs
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig4Config {
        Fig4Config {
            scale: TpcrConfig::small(),
            batch_sizes: vec![5, 20, 60],
            trials: 2,
            strategy: MinStrategy::Multiset,
            seed: 14,
        }
    }

    #[test]
    fn supplier_updates_cost_more_than_partsupp() {
        // The paper's headline asymmetry: ΔSupplier propagation scans
        // PartSupp (the big table); ΔPartSupp probes indexes only. At
        // the smallest batches the flush-time delta consolidation can
        // cancel repeated updates to the same supplier (few suppliers
        // at this scale), so only batches large enough for the per-row
        // propagation cost to dominate carry the asymmetry.
        let r = run(&quick());
        for ((k, ps), (_, s)) in r.partsupp.samples.iter().zip(&r.supplier.samples) {
            if *k < 20 {
                continue;
            }
            assert!(
                s > ps,
                "batch {k}: supplier {s} must cost more than partsupp {ps}"
            );
        }
    }

    #[test]
    fn piecewise_models_are_usable() {
        use aivm_core::CostFn;
        let r = run(&quick());
        let models = r.piecewise();
        assert_eq!(models.len(), 2);
        for m in &models {
            assert!(m.check_monotone(100));
            assert!(m.eval(60) > 0.0);
        }
    }

    #[test]
    fn recompute_strategy_also_measures() {
        let cfg = Fig4Config {
            strategy: MinStrategy::Recompute,
            batch_sizes: vec![5, 20],
            trials: 1,
            scale: TpcrConfig::small(),
            seed: 15,
        };
        let r = run(&cfg);
        assert_eq!(r.partsupp.samples.len(), 2);
    }
}
