//! Empirical verification of the paper's bounds (Theorems 1, 2 and the
//! §3.2 tightness construction) on randomized small instances.
//!
//! For every instance small enough for the exhaustive lazy-plan solver,
//! the table reports `OPT^LGM / OPT`; Theorem 1 requires the ratio to
//! stay ≤ 2, Theorem 2 requires exactly 1 for linear cost functions, and
//! the tightness rows approach 2 from below as ε shrinks.

use crate::report::{fnum, ExpTable};
use aivm_core::tightness::{tightness_instance, tightness_ratio};
use aivm_core::{Arrivals, CostModel, Counts, Instance};
use aivm_solver::astar::HeuristicMode;
use aivm_solver::{optimal_lgm_plan, optimal_lgm_plan_with, optimal_plan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One verified instance.
#[derive(Clone, Debug)]
pub struct BoundsRow {
    /// Short description of the instance family.
    pub family: String,
    /// `OPT^LGM` from A\*.
    pub lgm: f64,
    /// Ground-truth `OPT` from the exhaustive solver.
    pub opt: f64,
}

impl BoundsRow {
    /// The approximation ratio.
    pub fn ratio(&self) -> f64 {
        if self.opt == 0.0 {
            1.0
        } else {
            self.lgm / self.opt
        }
    }
}

fn random_cost(rng: &mut StdRng, linear_only: bool) -> CostModel {
    let a = rng.gen_range(0.5..2.0);
    let b = rng.gen_range(0.0..4.0);
    if linear_only {
        return CostModel::Linear { a, b };
    }
    match rng.gen_range(0..3) {
        0 => CostModel::Linear { a, b },
        1 => CostModel::Step {
            block: rng.gen_range(2..5),
            cost_per_block: rng.gen_range(1.0..3.0),
        },
        _ => CostModel::Power {
            setup: b,
            scale: a,
            exponent: rng.gen_range(0.5..1.0),
        },
    }
}

fn random_instance(rng: &mut StdRng, linear_only: bool) -> Instance {
    let n = rng.gen_range(1..=2usize);
    let horizon = rng.gen_range(4..=10usize);
    let costs: Vec<CostModel> = (0..n).map(|_| random_cost(rng, linear_only)).collect();
    let steps = (0..=horizon)
        .map(|_| (0..n).map(|_| rng.gen_range(0..=3u64)).collect::<Counts>())
        .collect();
    let budget = rng.gen_range(6.0..14.0);
    Instance::new(costs, Arrivals::new(steps), budget)
}

/// Verifies `trials` random instances per family plus the tightness
/// construction; panics on any bound violation (this is a checked
/// experiment, not best-effort).
pub fn run(trials: usize, seed: u64) -> Vec<BoundsRow> {
    // Instance generation stays serial so the RNG stream — and hence the
    // verified instances — is identical at any thread count; only the
    // (RNG-free) solving fans out on the worker threads.
    let mut rng = StdRng::seed_from_u64(seed);
    let linear: Vec<Instance> = (0..trials)
        .map(|_| random_instance(&mut rng, true))
        .collect();
    let general: Vec<Instance> = (0..trials)
        .map(|_| random_instance(&mut rng, false))
        .collect();
    let mut rows = Vec::new();
    // Linear family: Theorem 2 says ratio == 1.
    let linear_rows = crate::par::par_map_indexed(linear.len(), |i| {
        let inst = &linear[i];
        let lgm = optimal_lgm_plan(inst).cost;
        optimal_plan(inst, 300_000).ok().map(|(_, opt)| {
            assert!(
                (lgm - opt).abs() < 1e-6,
                "Theorem 2 violated on linear instance {i}: LGM {lgm} vs OPT {opt}"
            );
            BoundsRow {
                family: format!("linear#{i}"),
                lgm,
                opt,
            }
        })
    });
    rows.extend(linear_rows.into_iter().flatten());
    // General subadditive family: Theorem 1 says ratio ≤ 2. The paper's
    // A* heuristic is only admissible for linear costs (see aivm-solver
    // docs), so the provably consistent subadditive bound drives the
    // search here.
    let general_rows = crate::par::par_map_indexed(general.len(), |i| {
        let inst = &general[i];
        let lgm = optimal_lgm_plan_with(inst, HeuristicMode::Subadditive).cost;
        optimal_plan(inst, 300_000).ok().map(|(_, opt)| {
            assert!(
                lgm <= 2.0 * opt + 1e-6,
                "Theorem 1 violated on instance {i}: LGM {lgm} vs OPT {opt}"
            );
            assert!(lgm + 1e-9 >= opt, "LGM cannot beat OPT");
            BoundsRow {
                family: format!("subadditive#{i}"),
                lgm,
                opt,
            }
        })
    });
    rows.extend(general_rows.into_iter().flatten());
    // Tightness: ratio ≥ 2 − ε.
    let eps_invs = [1u32, 2, 4, 10];
    rows.extend(crate::par::par_map(&eps_invs, |&eps_inv| {
        let eps = 1.0 / eps_inv as f64;
        let inst = tightness_instance(eps, 2, 10.0);
        let lgm = optimal_lgm_plan_with(&inst, HeuristicMode::Subadditive).cost;
        let (_, opt) = optimal_plan(&inst, 2_000_000).expect("small tightness instance");
        let ratio = lgm / opt;
        assert!(
            ratio >= tightness_ratio(eps) - 1e-6,
            "tightness ratio too small for ε = {eps}"
        );
        BoundsRow {
            family: format!("tightness ε=1/{eps_inv}"),
            lgm,
            opt,
        }
    }));
    rows
}

/// Runs and renders the bounds table.
pub fn table(trials: usize, seed: u64) -> ExpTable {
    let rows = run(trials, seed);
    let mut t = ExpTable::new(
        "Theorems 1 & 2 + §3.2 tightness: OPT^LGM vs ground-truth OPT",
        &["instance", "OPT^LGM", "OPT", "ratio"],
    );
    t.note("ratio must be 1 for linear costs, ≤ 2 always, → 2 on the tightness family");
    for r in &rows {
        t.row(vec![
            r.family.clone(),
            fnum(r.lgm),
            fnum(r.opt),
            fnum(r.ratio()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_on_random_instances() {
        let rows = run(6, 42);
        assert!(rows.len() >= 8, "most instances should fit the node budget");
        for r in &rows {
            assert!(r.ratio() <= 2.0 + 1e-9, "{}: {}", r.family, r.ratio());
            assert!(r.ratio() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn tightness_rows_approach_two() {
        let rows = run(1, 7);
        let tight: Vec<&BoundsRow> = rows
            .iter()
            .filter(|r| r.family.starts_with("tightness"))
            .collect();
        assert_eq!(tight.len(), 4);
        // Ratios increase as ε shrinks (ε = 1, 1/2, 1/4, 1/10 order).
        for w in tight.windows(2) {
            assert!(w[1].ratio() >= w[0].ratio() - 1e-9);
        }
        assert!(tight.last().unwrap().ratio() > 1.8);
    }

    #[test]
    fn table_renders_all_rows() {
        let t = table(2, 3);
        assert!(t.rows.len() >= 6);
    }
}
