//! ADAPT sensitivity sweep (extends Fig. 6's single ADAPT column).
//!
//! How much does executing a plan optimized for the wrong refresh time
//! cost? For a fixed estimation horizon `T₀`, the actual refresh time
//! `T` sweeps both below and above `T₀`; the table reports the adapted
//! plan's cost, the per-`T` optimum, the Theorem 4 additive bound for
//! linear costs, and the observed overhead — which the theorem predicts
//! stays within `Σb_i` (for `T < T₀`) or `⌈T/T₀⌉·Σb_i` (for `T > T₀`).

use crate::report::{fnum, ExpTable};
use aivm_core::{Arrivals, CostModel, Counts, Instance};
use aivm_solver::{adapt_plan, optimal_lgm_plan, theorem4_bound, AdaptSchedule};

/// Configuration of the sweep.
#[derive(Clone, Debug)]
pub struct AdaptSweepConfig {
    /// Estimation horizon `T₀`.
    pub t0: usize,
    /// Actual refresh times to sweep.
    pub refresh_times: Vec<usize>,
    /// Response-time budget.
    pub budget: f64,
    /// Per-table (linear) cost functions.
    pub costs: Vec<CostModel>,
}

impl Default for AdaptSweepConfig {
    fn default() -> Self {
        AdaptSweepConfig {
            t0: 500,
            refresh_times: vec![50, 125, 250, 375, 500, 625, 750, 1000, 1500, 2000],
            budget: super::FIG6_BUDGET,
            costs: super::default_costs(),
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct AdaptSweepRow {
    /// Actual refresh time.
    pub t: usize,
    /// Adapted plan's cost.
    pub adapt: f64,
    /// Optimal cost for this `T`.
    pub opt: f64,
    /// The Theorem 4 upper bound.
    pub bound: f64,
}

/// Runs the sweep. Sweep points are independent given the precomputed
/// schedule, so they fan out on the configured worker threads
/// ([`crate::par`]) with deterministic result ordering.
pub fn run(config: &AdaptSweepConfig) -> Vec<AdaptSweepRow> {
    let instance_for = |t: usize| {
        Instance::new(
            config.costs.clone(),
            Arrivals::uniform(Counts::from_slice(&[1, 1]), t),
            config.budget,
        )
    };
    let schedule = AdaptSchedule::precompute(&instance_for(config.t0));
    crate::par::par_map(&config.refresh_times, |&t| {
        let inst = instance_for(t);
        let plan = adapt_plan(&schedule, &inst);
        let adapt = plan
            .validate(&inst)
            .expect("adapted plan valid under uniform arrivals")
            .total_cost;
        let opt = optimal_lgm_plan(&inst).cost;
        let bound = theorem4_bound(&config.costs, opt, t, config.t0);
        assert!(
            adapt <= bound + 1e-9,
            "Theorem 4 violated at T={t}: {adapt} > {bound}"
        );
        AdaptSweepRow {
            t,
            adapt,
            opt,
            bound,
        }
    })
}

/// Runs and renders the sweep.
pub fn table(config: &AdaptSweepConfig) -> ExpTable {
    let rows = run(config);
    let mut t = ExpTable::new(
        format!(
            "ADAPT sweep (extension): plan optimized for T0 = {} at other refresh times",
            config.t0
        ),
        &["T", "ADAPT", "OPT", "Thm4 bound", "overhead", "headroom"],
    );
    t.note("overhead = ADAPT − OPT; headroom = bound − ADAPT (Theorem 4 slack)");
    for r in &rows {
        t.row(vec![
            r.t.to_string(),
            fnum(r.adapt),
            fnum(r.opt),
            fnum(r.bound),
            fnum(r.adapt - r.opt),
            fnum(r.bound - r.adapt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AdaptSweepConfig {
        AdaptSweepConfig {
            t0: 120,
            refresh_times: vec![40, 120, 200, 300],
            ..AdaptSweepConfig::default()
        }
    }

    #[test]
    fn sweep_respects_theorem4_everywhere() {
        // The assertion lives inside run(); reaching here means it held.
        let rows = run(&quick());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.adapt + 1e-9 >= r.opt, "OPT is a lower bound");
        }
    }

    #[test]
    fn adapt_is_exact_at_t0() {
        let cfg = quick();
        let rows = run(&cfg);
        let at = rows.iter().find(|r| r.t == cfg.t0).unwrap();
        assert!((at.adapt - at.opt).abs() < 1e-9);
    }

    #[test]
    fn overhead_stays_bounded_far_from_t0() {
        let rows = run(&quick());
        let far = rows.last().unwrap(); // T = 300 vs T0 = 120
                                        // Theorem 4: overhead ≤ ⌈300/120⌉·Σb = 3·(0.24 + 7.2).
        assert!(far.adapt - far.opt <= 3.0 * (0.24 + 7.2) + 1e-9);
    }
}
