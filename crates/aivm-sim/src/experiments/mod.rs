//! One driver per paper figure/table. Each returns an
//! [`ExpTable`](crate::report::ExpTable) with the same rows/series the
//! paper reports.
//!
//! The counts-only experiments (Fig. 6, Fig. 7, the §1 example, the
//! bounds table) default to [`default_costs`] — linear cost functions
//! with the *shape* measured on the `aivm-engine` TPC-R setup (Fig. 4):
//! PartSupp deltas are probe-cheap with negligible setup; Supplier
//! deltas pay a large scan-dominated setup. Pass measured models to the
//! drivers to reproduce against live measurements instead.

pub mod adapt_sweep;
pub mod bounds;
pub mod concave;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod intro;
pub mod refresh_process;

use aivm_core::CostModel;

/// Default per-table cost functions `[f_PartSupp, f_Supplier]` in
/// seconds, shaped like our Fig. 4 measurements of the TPC-R view:
///
/// * ΔPartSupp propagation probes the Supplier/Nation/Region indexes —
///   real per-modification work (`a` dominates) but almost no setup, so
///   flushing it eagerly is cheap;
/// * ΔSupplier propagation scans the 80×-larger PartSupp — a large
///   batch-size-independent setup (`b` dominates), so it wants maximal
///   batching.
///
/// This is exactly the asymmetry of the paper's §1 example with the
/// roles filled by the §5 tables.
pub fn default_costs() -> Vec<CostModel> {
    vec![
        CostModel::linear(0.060, 0.24), // ΔPartSupp: probe side
        CostModel::linear(0.0048, 7.2), // ΔSupplier: scan side
    ]
}

/// The paper's Fig. 6 response-time budget (12 seconds).
pub const FIG6_BUDGET: f64 = 12.0;

/// The paper's Fig. 7 response-time budget (20 seconds).
pub const FIG7_BUDGET: f64 = 20.0;
