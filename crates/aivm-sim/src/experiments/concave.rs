//! Concavity study (the paper's §7 future work).
//!
//! The paper asks whether restricting cost functions to *concave*
//! shapes tightens the factor-2 LGM bound. This experiment measures the
//! empirical `OPT^LGM / OPT` gap across three cost families — linear,
//! concave (power-law), and non-concave subadditive (step) — on
//! randomized small instances, using the exhaustive lazy-plan solver as
//! ground truth.
//!
//! Observation baked into the tests: concave instances show a strictly
//! smaller worst-case gap than step-cost instances in our samples,
//! supporting the paper's conjecture; linear instances show none
//! (Theorem 2).

use crate::report::{fnum, ExpTable};
use aivm_core::{Arrivals, CostModel, Counts, Instance};
use aivm_solver::{optimal_lgm_plan_with, optimal_plan, HeuristicMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cost family under study.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `a·k + b` — Theorem 2 territory.
    Linear,
    /// `b + s·k^e`, `e < 1` — concave.
    Concave,
    /// `⌈k/B⌉·c` — subadditive but not concave.
    Step,
}

impl Family {
    /// All families in report order.
    pub fn all() -> [Family; 3] {
        [Family::Linear, Family::Concave, Family::Step]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Family::Linear => "linear",
            Family::Concave => "concave",
            Family::Step => "step",
        }
    }

    fn sample(self, rng: &mut StdRng) -> CostModel {
        match self {
            Family::Linear => CostModel::Linear {
                a: rng.gen_range(0.3..2.0),
                b: rng.gen_range(0.0..4.0),
            },
            Family::Concave => CostModel::Power {
                setup: rng.gen_range(0.0..2.0),
                scale: rng.gen_range(0.5..2.0),
                exponent: rng.gen_range(0.4..0.9),
            },
            Family::Step => CostModel::Step {
                block: rng.gen_range(2..5),
                cost_per_block: rng.gen_range(1.0..3.0),
            },
        }
    }
}

/// Gap statistics for one family.
#[derive(Clone, Debug)]
pub struct FamilyGap {
    /// The family.
    pub family: Family,
    /// Instances solved to ground truth.
    pub solved: usize,
    /// Mean `OPT^LGM / OPT`.
    pub mean_ratio: f64,
    /// Worst observed ratio.
    pub max_ratio: f64,
}

/// Runs `trials` random instances per family. Instance generation stays
/// serial (identical RNG stream at any thread count); the RNG-free
/// solving fans out per instance on the configured worker threads.
pub fn run(trials: usize, seed: u64) -> Vec<FamilyGap> {
    let mut rng = StdRng::seed_from_u64(seed);
    let instances: Vec<(Family, Vec<Instance>)> = Family::all()
        .into_iter()
        .map(|family| {
            let batch = (0..trials)
                .map(|_| {
                    let n = rng.gen_range(1..=2usize);
                    let horizon = rng.gen_range(4..=9usize);
                    let costs: Vec<CostModel> = (0..n).map(|_| family.sample(&mut rng)).collect();
                    let steps = (0..=horizon)
                        .map(|_| (0..n).map(|_| rng.gen_range(0..=3u64)).collect::<Counts>())
                        .collect();
                    Instance::new(costs, Arrivals::new(steps), rng.gen_range(5.0..12.0))
                })
                .collect();
            (family, batch)
        })
        .collect();
    let flat: Vec<&Instance> = instances.iter().flat_map(|(_, b)| b.iter()).collect();
    let solved_ratios = crate::par::par_map(&flat, |inst| {
        let lgm = optimal_lgm_plan_with(inst, HeuristicMode::Subadditive).cost;
        match optimal_plan(inst, 250_000) {
            Ok((_, opt)) if opt > 1e-9 => Some(lgm / opt),
            _ => None,
        }
    });
    instances
        .iter()
        .enumerate()
        .map(|(fi, (family, _))| {
            let ratios: Vec<f64> = solved_ratios[fi * trials..(fi + 1) * trials]
                .iter()
                .flatten()
                .copied()
                .collect();
            let solved = ratios.len();
            let mean_ratio = if solved == 0 {
                1.0
            } else {
                ratios.iter().sum::<f64>() / solved as f64
            };
            let max_ratio = ratios.iter().fold(1.0f64, |m, &r| m.max(r));
            FamilyGap {
                family: *family,
                solved,
                mean_ratio,
                max_ratio,
            }
        })
        .collect()
}

/// Runs and renders the study.
pub fn table(trials: usize, seed: u64) -> ExpTable {
    let rows = run(trials, seed);
    let mut t = ExpTable::new(
        "Concavity study (§7 future work): empirical OPT^LGM/OPT gap by cost family",
        &["family", "instances", "mean ratio", "max ratio"],
    );
    t.note("Theorem 2 predicts 1.000 for linear; Theorem 1 bounds all by 2");
    for r in &rows {
        t.row(vec![
            r.family.label().to_string(),
            r.solved.to_string(),
            fnum(r.mean_ratio),
            fnum(r.max_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_family_has_no_gap() {
        let rows = run(8, 11);
        let linear = &rows[0];
        assert_eq!(linear.family, Family::Linear);
        assert!(linear.solved >= 6);
        assert!((linear.mean_ratio - 1.0).abs() < 1e-9);
        assert!((linear.max_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_families_respect_theorem1() {
        for r in run(8, 12) {
            assert!(r.max_ratio <= 2.0 + 1e-9, "{:?}", r);
            assert!(r.mean_ratio >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn table_has_three_rows() {
        let t = table(3, 13);
        assert_eq!(t.rows.len(), 3);
    }
}
