//! The §1 worked example: symmetric vs. asymmetric batching for
//! `R ⋈ S` under a response-time constraint.
//!
//! With `c_ΔR` scan-dominated (roughly constant) and `c_ΔS` linear with
//! a small slope, and modifications arriving at the same rate on both
//! tables, the paper computes: symmetric batching costs ≈ 0.97 ms per
//! modification, while processing `ΔS` eagerly and batching `ΔR`
//! maximally costs ≈ 0.42 ms per modification. This driver reproduces
//! that arithmetic for arbitrary cost-function pairs.

use crate::report::{fnum, ExpTable};
use aivm_core::{CostFn, CostModel};

/// Result of the §1 comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct IntroResult {
    /// The symmetric batch size per table at the constraint boundary.
    pub symmetric_batch: u64,
    /// Symmetric cost per modification.
    pub symmetric_per_mod: f64,
    /// Asymmetric: maximal `ΔR` batch under the constraint.
    pub asymmetric_r_batch: u64,
    /// Asymmetric cost per `ΔR` modification.
    pub asymmetric_r_per_mod: f64,
    /// Asymmetric cost per `ΔS` modification (processed one at a time).
    pub asymmetric_s_per_mod: f64,
    /// Asymmetric average cost per modification (equal rates).
    pub asymmetric_per_mod: f64,
}

/// Computes the §1 comparison for cost functions `c_ΔR`, `c_ΔS` and
/// budget `C`, assuming equal arrival rates on both tables.
pub fn analyze(c_dr: &CostModel, c_ds: &CostModel, budget: f64) -> IntroResult {
    // Symmetric: batch both tables equally; the largest k with
    // c_dR(k) + c_dS(k) ≤ C.
    let mut k = 0u64;
    while c_dr.eval(k + 1) + c_ds.eval(k + 1) <= budget {
        k += 1;
        if k > 100_000_000 {
            break; // budget never binds; symmetric batching is unbounded
        }
    }
    let symmetric_batch = k.max(1);
    let symmetric_per_mod =
        (c_dr.eval(symmetric_batch) + c_ds.eval(symmetric_batch)) / (2.0 * symmetric_batch as f64);

    // Asymmetric: ΔS processed immediately (one at a time); ΔR batched
    // to its solo limit.
    let asymmetric_s_per_mod = c_ds.eval(1);
    let r_batch = c_dr.max_batch(budget).max(1);
    let asymmetric_r_per_mod = c_dr.eval(r_batch) / r_batch as f64;
    IntroResult {
        symmetric_batch,
        symmetric_per_mod,
        asymmetric_r_batch: r_batch,
        asymmetric_r_per_mod,
        asymmetric_s_per_mod,
        asymmetric_per_mod: (asymmetric_r_per_mod + asymmetric_s_per_mod) / 2.0,
    }
}

/// The paper's own numbers: `c_ΔR` ≈ flat at 0.35 s for up to 600
/// modifications; `c_ΔS` ≈ 0.25 ms per modification; `C` = 0.35 s.
pub fn paper_costs() -> (CostModel, CostModel, f64) {
    (
        // c_ΔR: scan-dominated — max batch 600 at the 0.35 s budget.
        CostModel::linear(0.35 / 3000.0, 0.35 - 600.0 * (0.35 / 3000.0)),
        // c_ΔS: 0.25 ms per tuple, negligible setup.
        CostModel::linear(0.000_25, 0.0),
        0.35,
    )
}

/// Renders the comparison table.
pub fn table(c_dr: &CostModel, c_ds: &CostModel, budget: f64) -> ExpTable {
    let r = analyze(c_dr, c_ds, budget);
    let mut t = ExpTable::new(
        "Section 1 example: symmetric vs asymmetric batching",
        &["strategy", "batch(R)", "batch(S)", "cost/mod"],
    );
    t.note(format!("C = {budget}; equal arrival rates on R and S"));
    t.row(vec![
        "symmetric".into(),
        r.symmetric_batch.to_string(),
        r.symmetric_batch.to_string(),
        fnum(r.symmetric_per_mod),
    ]);
    t.row(vec![
        "asymmetric".into(),
        r.asymmetric_r_batch.to_string(),
        "1".into(),
        fnum(r.asymmetric_per_mod),
    ]);
    t.note(format!(
        "speedup: {:.2}x",
        r.symmetric_per_mod / r.asymmetric_per_mod
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_are_reproduced() {
        let (c_dr, c_ds, budget) = paper_costs();
        let r = analyze(&c_dr, &c_ds, budget);
        // The paper: symmetric ≈ 0.97 ms/mod, asymmetric ≈ 0.42 ms/mod.
        // (§1: "0.35 seconds ... for roughly every 360 modifications"
        // and "0.25 ms for each ΔS tuple; 0.58 ms per ΔR tuple".)
        assert!(
            (r.symmetric_per_mod - 0.00097).abs() < 0.0002,
            "symmetric {} should be ≈ 0.97 ms",
            r.symmetric_per_mod
        );
        assert!(
            (r.asymmetric_per_mod - 0.00042).abs() < 0.0001,
            "asymmetric {} should be ≈ 0.42 ms",
            r.asymmetric_per_mod
        );
        assert!(
            (r.asymmetric_s_per_mod - 0.00025).abs() < 1e-6,
            "ΔS per-mod is its unit cost"
        );
        assert_eq!(r.asymmetric_r_batch, 600, "ΔR batches to the 0.35 s limit");
        assert!(r.symmetric_per_mod / r.asymmetric_per_mod > 2.0);
    }

    #[test]
    fn asymmetric_never_worse_when_s_is_linear_without_setup() {
        // With b_S = 0, eager ΔS is free of batching benefit, so the
        // asymmetric strategy dominates.
        let c_dr = CostModel::linear(0.001, 1.0);
        let c_ds = CostModel::linear(0.01, 0.0);
        let r = analyze(&c_dr, &c_ds, 2.0);
        assert!(r.asymmetric_per_mod <= r.symmetric_per_mod + 1e-12);
    }

    #[test]
    fn table_renders_speedup() {
        let (c_dr, c_ds, budget) = paper_costs();
        let t = table(&c_dr, &c_ds, budget);
        assert!(t.render().contains("speedup"));
        assert_eq!(t.rows.len(), 2);
    }
}
