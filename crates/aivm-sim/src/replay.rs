//! Deterministic re-execution of recorded live traces.
//!
//! `aivm-serve` records a live run as a sequence of steps, each with the
//! arrivals closed into that step and a flag marking *forced* full
//! flushes (fresh reads, which bypass the policy). This module replays
//! such a recording offline, in two modes:
//!
//! * [`replay_policy`] — re-runs a policy over the recorded arrivals,
//!   reproducing the live run's decisions bit-for-bit when given the
//!   same (deterministic) policy. This is how the serve layer's
//!   `Planned` policy is verified: a fresh instance of the policy,
//!   driven over the recorded trace, must emit the same flush schedule
//!   and total cost as the live run.
//! * [`replay_schedule`] — re-executes a recorded *action sequence*
//!   against the recorded arrivals, checking it never overdraws, and
//!   recomputes its cost. This audits the recording itself and prices
//!   the same schedule under alternative cost models.
//!
//! Unlike [`run_policy`](aivm_solver::run_policy), replays do not force
//! a final flush-everything action: live runs end with whatever was
//! still pending, and the replay preserves that (`leftover`).

use aivm_core::{total_cost, CostModel, Counts, PlanError};
use aivm_solver::{Policy, PolicyContext};

/// One step of a recorded live run, as needed for replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayStep {
    /// Modifications per table that arrived during the step's window.
    pub arrivals: Counts,
    /// `true` when the live runtime force-flushed everything (a fresh
    /// read) instead of consulting the policy.
    pub forced: bool,
}

/// Outcome of a replay.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The action taken at each step.
    pub actions: Vec<Counts>,
    /// Total model cost of all actions.
    pub total_cost: f64,
    /// Steps whose post-action state was left full (0 for any correct
    /// policy).
    pub violations: usize,
    /// Pending counts remaining after the last step.
    pub leftover: Counts,
}

/// Re-runs `policy` over recorded steps. Forced steps flush everything
/// pending without consulting the policy — exactly the live semantics —
/// but still advance the step clock `t`.
///
/// # Panics
///
/// If the policy overdraws (returns an action exceeding the pending
/// state); solver policies never do.
pub fn replay_policy(
    costs: &[CostModel],
    budget: f64,
    steps: &[ReplayStep],
    policy: &mut dyn Policy,
) -> ReplayOutcome {
    let ctx = PolicyContext {
        costs: costs.to_vec(),
        budget,
    };
    policy.reset(&ctx);
    let n = costs.len();
    let mut s = Counts::zero(n);
    let mut actions = Vec::with_capacity(steps.len());
    let mut cost = 0.0;
    let mut violations = 0usize;
    for (t, step) in steps.iter().enumerate() {
        s.add_assign(&step.arrivals);
        let q = if step.forced {
            s.clone()
        } else {
            policy.act(t, &s)
        };
        s = s
            .checked_sub(&q)
            .unwrap_or_else(|| panic!("policy overdraw at replay step {t}"));
        cost += total_cost(costs, &q);
        if ctx.is_full(&s) {
            violations += 1;
        }
        actions.push(q);
    }
    ReplayOutcome {
        actions,
        total_cost: cost,
        violations,
        leftover: s,
    }
}

/// Re-executes a recorded action sequence against recorded arrivals,
/// verifying lengths match and no action overdraws.
pub fn replay_schedule(
    costs: &[CostModel],
    budget: f64,
    steps: &[ReplayStep],
    actions: &[Counts],
) -> Result<ReplayOutcome, PlanError> {
    if actions.len() != steps.len() {
        return Err(PlanError::WrongLength {
            expected: steps.len(),
            got: actions.len(),
        });
    }
    let ctx = PolicyContext {
        costs: costs.to_vec(),
        budget,
    };
    let n = costs.len();
    let mut s = Counts::zero(n);
    let mut cost = 0.0;
    let mut violations = 0usize;
    for (t, (step, q)) in steps.iter().zip(actions).enumerate() {
        s.add_assign(&step.arrivals);
        match s.checked_sub(q) {
            Some(post) => s = post,
            None => {
                let table = (0..n).find(|&i| q[i] > s[i]).unwrap_or(0);
                return Err(PlanError::Overdraw { t, table });
            }
        }
        cost += total_cost(costs, q);
        if ctx.is_full(&s) {
            violations += 1;
        }
    }
    Ok(ReplayOutcome {
        actions: actions.to_vec(),
        total_cost: cost,
        violations,
        leftover: s,
    })
}

/// Cross-checks a crash-recovered run against its uncrashed reference.
///
/// The recovered run's recorded steps and actions must be an *exact
/// prefix* of the reference recording (recovery replays a prefix of the
/// same event log, and the runtime is deterministic), and independently
/// re-executing the recovered schedule through [`replay_schedule`] must
/// reproduce the cost the recovered runtime accounted — a third
/// implementation of the cost arithmetic catching either side lying.
///
/// Returns the re-execution outcome on success; on divergence, a
/// description of the first mismatching step.
pub fn verify_recovery_prefix(
    costs: &[CostModel],
    budget: f64,
    reference_steps: &[ReplayStep],
    reference_actions: &[Counts],
    recovered_steps: &[ReplayStep],
    recovered_actions: &[Counts],
) -> Result<ReplayOutcome, String> {
    if recovered_steps.len() > reference_steps.len() {
        return Err(format!(
            "recovered run has {} steps, longer than the reference's {}",
            recovered_steps.len(),
            reference_steps.len()
        ));
    }
    if recovered_actions.len() != recovered_steps.len() {
        return Err(format!(
            "recovered run has {} actions for {} steps",
            recovered_actions.len(),
            recovered_steps.len()
        ));
    }
    for (t, (rec, refr)) in recovered_steps.iter().zip(reference_steps).enumerate() {
        if rec != refr {
            return Err(format!(
                "recovered step {t} diverges: reference {refr:?}, recovered {rec:?}"
            ));
        }
    }
    for (t, (rec, refr)) in recovered_actions.iter().zip(reference_actions).enumerate() {
        if rec != refr {
            return Err(format!(
                "recovered action {t} diverges: reference {refr:?}, recovered {rec:?}"
            ));
        }
    }
    replay_schedule(costs, budget, recovered_steps, recovered_actions)
        .map_err(|e| format!("recovered schedule fails re-execution: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_core::{Arrivals, CostModel, Instance};
    use aivm_solver::{optimal_lgm_plan, NaivePolicy, ReplayPolicy};

    fn costs() -> Vec<CostModel> {
        vec![CostModel::linear(1.0, 0.5), CostModel::linear(1.0, 4.0)]
    }

    fn uniform_steps(horizon: usize) -> Vec<ReplayStep> {
        (0..=horizon)
            .map(|_| ReplayStep {
                arrivals: Counts::from_slice(&[1, 1]),
                forced: false,
            })
            .collect()
    }

    #[test]
    fn policy_replay_matches_schedule_replay() {
        let inst = Instance::new(
            costs(),
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 20),
            8.0,
        );
        let sol = optimal_lgm_plan(&inst);
        let mut steps = uniform_steps(20);
        // The plan's final action is run_policy's forced flush at T.
        steps.last_mut().unwrap().forced = true;
        let mut policy = ReplayPolicy::from_plan("replay", &sol.plan);
        let by_policy = replay_policy(&costs(), 8.0, &steps, &mut policy);
        let by_schedule = replay_schedule(&costs(), 8.0, &steps, &by_policy.actions).unwrap();
        assert_eq!(by_policy.actions, by_schedule.actions);
        assert!((by_policy.total_cost - by_schedule.total_cost).abs() < 1e-9);
        assert!((by_policy.total_cost - sol.cost).abs() < 1e-9);
        assert_eq!(by_policy.violations, 0);
        assert!(by_policy.leftover.is_zero());
    }

    #[test]
    fn forced_steps_bypass_the_policy() {
        // NAIVE would do nothing at these low counts; the forced flag
        // flushes anyway.
        let steps = vec![
            ReplayStep {
                arrivals: Counts::from_slice(&[1, 0]),
                forced: false,
            },
            ReplayStep {
                arrivals: Counts::from_slice(&[0, 1]),
                forced: true,
            },
        ];
        let out = replay_policy(&costs(), 100.0, &steps, &mut NaivePolicy::new());
        assert!(out.actions[0].is_zero());
        assert_eq!(out.actions[1], Counts::from_slice(&[1, 1]));
        assert!(out.leftover.is_zero());
    }

    #[test]
    fn schedule_replay_reports_overdraw() {
        let steps = uniform_steps(1);
        let actions = vec![Counts::from_slice(&[5, 0]), Counts::zero(2)];
        match replay_schedule(&costs(), 8.0, &steps, &actions) {
            Err(PlanError::Overdraw { t: 0, table: 0 }) => {}
            other => panic!("expected overdraw, got {other:?}"),
        }
    }

    #[test]
    fn schedule_replay_rejects_length_mismatch() {
        let steps = uniform_steps(2);
        match replay_schedule(&costs(), 8.0, &steps, &[]) {
            Err(PlanError::WrongLength { .. }) => {}
            other => panic!("expected length error, got {other:?}"),
        }
    }

    #[test]
    fn leftover_and_violations_are_reported() {
        // A lazy schedule that never flushes: pending accumulates and
        // eventually busts the small budget.
        let steps = uniform_steps(10);
        let actions = vec![Counts::zero(2); 11];
        let out = replay_schedule(&costs(), 8.0, &steps, &actions).unwrap();
        assert_eq!(out.leftover, Counts::from_slice(&[11, 11]));
        assert!(out.violations > 0);
        assert_eq!(out.total_cost, 0.0);
    }
}
