//! Engine-backed "actual execution" of maintenance plans (the Fig. 5
//! validation mode).
//!
//! Instead of charging actions their modeled cost, this module really
//! generates the paper's update stream against a TPC-R database, really
//! enqueues the modifications into the view's delta tables, really runs
//! each flush, and measures wall-clock time. Comparing the totals
//! against the counts-only simulator validates the simulation
//! methodology exactly as §5 does.

use aivm_core::{Instance, Plan};
use aivm_engine::{EngineError, MaterializedView, Modification};
use aivm_tpcr::{TpcrDatabase, UpdateGen, UpdateKind};
use std::time::Instant;

/// Fixed mapping of problem-instance tables to the paper's update
/// stream: instance table 0 = PartSupp (`supplycost` updates), instance
/// table 1 = Supplier (`nationkey` updates).
pub const INSTANCE_TABLES: [UpdateKind; 2] = [UpdateKind::PartSuppCost, UpdateKind::SupplierNation];

/// Timing of one executed action.
#[derive(Clone, Debug, PartialEq)]
pub struct ActionTiming {
    /// Time step of the action.
    pub t: usize,
    /// Modifications flushed per instance table.
    pub counts: Vec<u64>,
    /// Wall-clock milliseconds of the flush.
    pub millis: f64,
}

/// Result of an actual (engine-backed) plan execution.
#[derive(Clone, Debug)]
pub struct ActualRun {
    /// Total wall-clock milliseconds across all actions.
    pub total_millis: f64,
    /// Per-action timings (zero actions omitted).
    pub actions: Vec<ActionTiming>,
    /// Whether the final view state matched a from-scratch recomputation.
    pub consistent: bool,
}

/// Executes `plan` against a live TPC-R database and view, generating
/// `inst.arrivals` worth of real modifications.
///
/// The instance must have exactly two tables mapped per
/// [`INSTANCE_TABLES`]; the view must be over the TPC-R schema with
/// `partsupp` and `supplier` among its base tables.
pub fn run_plan_actual(
    data: &mut TpcrDatabase,
    view: &mut MaterializedView,
    gen: &mut UpdateGen,
    inst: &Instance,
    plan: &Plan,
) -> Result<ActualRun, EngineError> {
    assert_eq!(inst.n(), 2, "instance tables: [partsupp, supplier]");
    let view_pos = [
        view.table_position("partsupp")
            .ok_or(EngineError::NoSuchTable {
                name: "partsupp".into(),
            })?,
        view.table_position("supplier")
            .ok_or(EngineError::NoSuchTable {
                name: "supplier".into(),
            })?,
    ];
    let db_table = [data.partsupp, data.supplier];

    let mut actions = Vec::new();
    let mut total = 0.0;
    for t in 0..=inst.horizon() {
        // Arrivals: generate and apply real modifications.
        let d = inst.arrivals.at(t);
        for i in 0..2 {
            for _ in 0..d[i] {
                let m: Modification = gen.update_of(&data.db, INSTANCE_TABLES[i]);
                data.db.apply(db_table[i], &m)?;
                view.enqueue(view_pos[i], m);
            }
        }
        // Action: flush per the plan.
        let p = &plan.actions[t];
        if p.is_zero() {
            continue;
        }
        let mut counts = vec![0u64; view.n()];
        for i in 0..2 {
            counts[view_pos[i]] = p[i];
        }
        let start = Instant::now();
        view.flush(&data.db, &counts)?;
        let millis = start.elapsed().as_secs_f64() * 1e3;
        total += millis;
        actions.push(ActionTiming {
            t,
            counts: vec![p[0], p[1]],
            millis,
        });
    }

    // Consistency: the plan ends with everything flushed, so the view
    // must equal a direct evaluation over the physical tables.
    let direct = view.def().full_plan(&data.db)?.execute(&data.db)?;
    let mut got = view.result();
    let mut want = aivm_engine::exec::consolidate(direct);
    got.sort();
    want.sort();
    let consistent = got == want;

    Ok(ActualRun {
        total_millis: total,
        actions,
        consistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_core::{naive_plan, Arrivals, CostModel, Counts};
    use aivm_engine::MinStrategy;
    use aivm_tpcr::{generate, install_paper_view, TpcrConfig};

    #[test]
    fn actual_naive_run_is_consistent() {
        let mut data = generate(&TpcrConfig::small(), 21);
        let mut view = install_paper_view(&mut data.db, MinStrategy::Multiset).unwrap();
        let mut gen = UpdateGen::new(&data, 22);
        // Small instance: cheap linear cost stand-ins only shape the
        // plan; actual timing is measured regardless.
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 1.0), CostModel::linear(1.0, 2.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 15),
            9.0,
        );
        let plan = naive_plan(&inst);
        let run = run_plan_actual(&mut data, &mut view, &mut gen, &inst, &plan).unwrap();
        assert!(run.consistent, "final view must equal direct evaluation");
        assert!(!run.actions.is_empty());
        assert!(run.total_millis >= 0.0);
        // All pending drained.
        assert_eq!(view.pending_counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn actual_asymmetric_plan_consistent() {
        let mut data = generate(&TpcrConfig::small(), 31);
        let mut view = install_paper_view(&mut data.db, MinStrategy::Multiset).unwrap();
        let mut gen = UpdateGen::new(&data, 32);
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 0.2), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 20),
            9.0,
        );
        let sol = aivm_solver::optimal_lgm_plan(&inst);
        let run = run_plan_actual(&mut data, &mut view, &mut gen, &inst, &sol.plan).unwrap();
        assert!(run.consistent);
    }
}
