//! Counts-only simulation of maintenance plans and policies.
//!
//! §5 of the paper: *"In order to speed up experiments over long update
//! arrival sequences, we simulate the execution of maintenance plans
//! instead of actually running them"*, charging each action its cost
//! under the measured cost functions. This module is that simulator; the
//! engine-backed validation lives in [`crate::actual`].

use aivm_core::{fits, Counts, Instance, Plan, PlanError};
use aivm_solver::{run_policy, Policy, PolicyContext};

/// Summary of a simulated plan execution.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSummary {
    /// Label (NAIVE / OPT^LGM / ADAPT / ONLINE …).
    pub name: String,
    /// Total maintenance cost `f(P)`.
    pub total_cost: f64,
    /// Number of non-zero actions taken.
    pub actions: usize,
    /// Actions touching each table (`|P(i)|`).
    pub actions_per_table: Vec<usize>,
    /// Total modifications processed.
    pub total_mods: u64,
}

impl PlanSummary {
    /// Average cost per modification (the §1 example's headline metric).
    pub fn cost_per_mod(&self) -> f64 {
        if self.total_mods == 0 {
            0.0
        } else {
            self.total_cost / self.total_mods as f64
        }
    }
}

/// Simulates a precomputed plan: validates it against the instance and
/// summarizes.
pub fn simulate_plan(name: &str, inst: &Instance, plan: &Plan) -> Result<PlanSummary, PlanError> {
    let stats = plan.validate(inst)?;
    Ok(PlanSummary {
        name: name.to_string(),
        total_cost: stats.total_cost,
        actions: stats.action_count,
        actions_per_table: stats.actions_per_table,
        total_mods: inst.arrivals.totals().total(),
    })
}

/// Runs a policy through the instance's arrivals and summarizes the
/// realized plan.
pub fn simulate_policy(
    name: &str,
    inst: &Instance,
    policy: &mut dyn Policy,
) -> Result<(Plan, PlanSummary), PlanError> {
    let (plan, stats) = run_policy(inst, policy)?;
    Ok((
        plan,
        PlanSummary {
            name: name.to_string(),
            total_cost: stats.total_cost,
            actions: stats.action_count,
            actions_per_table: stats.actions_per_table,
            total_mods: inst.arrivals.totals().total(),
        },
    ))
}

/// Runs a policy over a stream with **multiple refresh instants** — the
/// operational pub/sub setting: between notifications the policy keeps
/// the budget; at each refresh instant (and at the horizon) everything
/// pending is flushed. Returns the realized summary after checking the
/// budget at every non-refresh step.
pub fn run_policy_with_refreshes(
    inst: &Instance,
    policy: &mut dyn Policy,
    refresh_times: &[usize],
) -> Result<PlanSummary, PlanError> {
    let ctx = PolicyContext::of(inst);
    policy.reset(&ctx);
    let horizon = inst.horizon();
    let n = inst.n();
    let mut s = Counts::zero(n);
    let mut total_cost = 0.0;
    let mut actions = 0usize;
    let mut actions_per_table = vec![0usize; n];
    let mut refresh_idx = 0usize;
    for t in 0..=horizon {
        s.add_assign(&inst.arrivals.at(t));
        let is_refresh = {
            while refresh_idx < refresh_times.len() && refresh_times[refresh_idx] < t {
                refresh_idx += 1;
            }
            refresh_times.get(refresh_idx) == Some(&t) || t == horizon
        };
        let p = if is_refresh {
            s.clone()
        } else {
            policy.act(t, &s)
        };
        let post = s.checked_sub(&p).ok_or({
            let table = (0..n).find(|&i| p[i] > s[i]).unwrap_or(0);
            PlanError::Overdraw { t, table }
        })?;
        if !p.is_zero() {
            actions += 1;
            total_cost += inst.refresh_cost(&p);
            for i in 0..n {
                if p[i] > 0 {
                    actions_per_table[i] += 1;
                }
            }
        }
        if t < horizon && !is_refresh {
            let cost = inst.refresh_cost(&post);
            if !fits(cost, inst.budget) {
                return Err(PlanError::BudgetViolated { t, cost });
            }
        }
        s = post;
    }
    Ok(PlanSummary {
        name: policy.name().to_string(),
        total_cost,
        actions,
        actions_per_table,
        total_mods: inst.arrivals.totals().total(),
    })
}

/// A lower bound on any strategy's cost under multiple refresh instants:
/// refreshes reset the state to zero, so episodes are independent and
/// the per-episode A\* optimum sums to a global optimum over LGM-style
/// schedules (exactly optimal for linear costs by Theorem 2).
pub fn episodic_optimal(inst: &Instance, refresh_times: &[usize]) -> f64 {
    let horizon = inst.horizon();
    let mut boundaries: Vec<usize> = refresh_times
        .iter()
        .copied()
        .filter(|&t| t < horizon)
        .collect();
    boundaries.push(horizon);
    boundaries.dedup();
    let mut windows: Vec<(usize, usize)> = Vec::with_capacity(boundaries.len());
    let mut start = 0usize;
    for &end in &boundaries {
        windows.push((start, end));
        start = end + 1;
        if start > horizon {
            break;
        }
    }
    // Episodes are independent A* problems; solve them on the configured
    // worker threads and sum in window order (deterministic).
    crate::par::par_map(&windows, |&(start, end)| {
        let steps: Vec<Counts> = (start..=end).map(|t| inst.arrivals.at(t)).collect();
        let episode = Instance::new(
            inst.costs.clone(),
            aivm_core::Arrivals::new(steps),
            inst.budget,
        );
        aivm_solver::optimal_lgm_plan(&episode).cost
    })
    .into_iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_core::{naive_plan, Arrivals, CostModel, Counts};
    use aivm_solver::NaivePolicy;

    fn inst() -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 1.0), CostModel::linear(1.0, 3.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 20),
            10.0,
        )
    }

    #[test]
    fn plan_and_policy_summaries_agree_for_naive() {
        let inst = inst();
        let plan = naive_plan(&inst);
        let a = simulate_plan("NAIVE", &inst, &plan).unwrap();
        let (_, b) = simulate_policy("NAIVE", &inst, &mut NaivePolicy::new()).unwrap();
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.total_mods, 42);
        assert!(a.cost_per_mod() > 0.0);
    }

    #[test]
    fn multi_refresh_runner_flushes_at_instants() {
        let inst = inst();
        let mut policy = NaivePolicy::new();
        let summary = run_policy_with_refreshes(&inst, &mut policy, &[5, 12]).expect("valid");
        // Refreshes at 5, 12 and the horizon 20 all force full flushes;
        // NAIVE may act in between as well.
        assert!(summary.actions >= 3);
        assert_eq!(summary.total_mods, 42);
        // The episodic optimum lower-bounds the realized cost.
        let opt = episodic_optimal(&inst, &[5, 12]);
        assert!(opt <= summary.total_cost + 1e-9);
        assert!(opt > 0.0);
    }

    #[test]
    fn episodic_optimal_with_no_refreshes_matches_astar() {
        let inst = inst();
        let single = episodic_optimal(&inst, &[]);
        let direct = aivm_solver::optimal_lgm_plan(&inst).cost;
        assert!((single - direct).abs() < 1e-9);
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let inst = inst();
        let empty = Plan {
            actions: vec![Counts::zero(2); 21],
        };
        assert!(simulate_plan("BAD", &inst, &empty).is_err());
    }
}
