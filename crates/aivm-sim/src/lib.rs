//! Discrete-time simulation, engine-backed actual execution, and the
//! paper's experiment drivers.
//!
//! * [`runner`] — the counts-only simulator of §5 ("we simulate the
//!   execution of maintenance plans … and use the cost functions to
//!   calculate costs").
//! * [`actual`] — the validation mode: plans executed for real against
//!   an `aivm-engine` TPC-R database with wall-clock timing.
//! * [`experiments`] — one driver per paper figure (1, 4, 5, 6, 7), the
//!   §1 worked example, and the Theorem 1/2 bounds table.
//! * [`report`] — text/CSV rendering of the reproduced series.
//! * [`par`] — the deterministic parallel fan-out the sweep drivers run
//!   on (`AIVM_THREADS` / `--threads` configurable).
//! * [`replay`] — deterministic re-execution of live traces recorded by
//!   `aivm-serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actual;
pub mod experiments;
pub mod par;
pub mod replay;
pub mod report;
pub mod runner;

pub use actual::{run_plan_actual, ActionTiming, ActualRun};
pub use par::{configured_threads, par_map, set_thread_override};
pub use replay::{replay_policy, replay_schedule, ReplayOutcome, ReplayStep};
pub use report::{fnum, ExpTable};
pub use runner::{simulate_plan, simulate_policy, PlanSummary};
