//! Tabular experiment output.
//!
//! Every experiment driver returns an [`ExpTable`] — the rows/series the
//! corresponding paper figure reports — which the `repro` binary renders
//! as aligned text or CSV.

use std::fmt::Write as _;

/// One reproduced table/figure.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpTable {
    /// Title, e.g. `"Figure 6: varying refresh time"`.
    pub title: String,
    /// Free-text notes (parameters, caveats).
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExpTable {
            title: title.into(),
            notes: Vec::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Appends a row; panics when the arity disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for n in &self.notes {
            let _ = writeln!(out, "   {n}");
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with precision adapted to its magnitude.
pub fn fnum(x: f64) -> String {
    let a = x.abs();
    if x == 0.0 {
        "0".to_string()
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else if a >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = ExpTable::new("Demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.lines().count() >= 4);
        // Each data line has both columns.
        assert!(s.lines().last().unwrap().contains("20000"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        let mut t = ExpTable::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = ExpTable::new("x", &["a,b", "c"]);
        t.row(vec!["v\"1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c"));
        assert!(csv.contains("\"v\"\"1\""));
    }

    #[test]
    fn fnum_scales() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.5678), "1234.6");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(0.00042), "0.000420");
    }
}
