//! Deterministic parallel fan-out for sweep experiments.
//!
//! Every figure sweep (refresh times × policies) is a set of independent
//! pure `Instance → summary` computations, so the sweep layer fans them
//! out across worker threads. The registry environment is unavailable
//! offline, so instead of `rayon` this is a small scoped-thread work
//! queue with the properties the experiments need:
//!
//! * **Deterministic ordering** — results are returned in input order
//!   regardless of which worker finished first, so parallel sweeps are
//!   byte-identical to serial ones (verified by
//!   `tests/solver_equivalence.rs`).
//! * **Work stealing by atomic counter** — sweep points have wildly
//!   different costs (A\* at `T = 1000` vs `T = 100`), so workers pull
//!   the next index from a shared counter rather than pre-chunking.
//! * **Configurable width** — `--threads N` on the `repro` binary,
//!   [`set_thread_override`], or the `AIVM_THREADS` /
//!   `RAYON_NUM_THREADS` environment variables (first set wins); the
//!   default is the machine's available parallelism. Width 1 runs
//!   inline on the caller with no threads spawned — the paper-fidelity
//!   serial mode.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide thread-count override (0 = unset). Set by `--threads`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the sweep width for the whole process, taking precedence over
/// the environment. `None` clears the override.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// The sweep width currently in effect: the [`set_thread_override`]
/// value, else `AIVM_THREADS`, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism (at least 1).
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    for var in ["AIVM_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..len` with the configured sweep width, returning
/// results in index order.
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(configured_threads(), len, f)
}

/// [`par_map_indexed`] at an explicit width.
pub fn par_map_indexed_with<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                // A worker panic drops its sender; the collector below
                // notices the short count and propagates via join.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
        let mut received = 0usize;
        for (i, r) in rx {
            slots[i] = Some(r);
            received += 1;
        }
        // If a worker panicked, scope join re-raises it after this block;
        // the assert is only reachable when every worker exited cleanly
        // yet skipped an index, which would be a bug in the queue.
        if received == len {
            slots.into_iter().map(|s| s.expect("slot filled")).collect()
        } else {
            Vec::new()
        }
    })
}

/// Maps `f` over a slice with the configured width, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_map_indexed_with(1, 37, |i| i * i + 1);
        let parallel = par_map_indexed_with(8, 37, |i| i * i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map_indexed_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed_with(4, 1, |i| i + 9), vec![9]);
    }

    #[test]
    fn override_beats_env() {
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Heavy items early; counter-based stealing must not deadlock or
        // reorder.
        let items: Vec<u64> = (0..24).map(|i| if i < 4 { 200_000 } else { 10 }).collect();
        let out = par_map(&items, |&n| (0..n).map(|x| x % 7).sum::<u64>());
        let expect: Vec<u64> = items.iter().map(|&n| (0..n).map(|x| x % 7).sum()).collect();
        assert_eq!(out, expect);
    }
}
