//! Deterministic parallel fan-out for sweep experiments.
//!
//! Every figure sweep (refresh times × policies) is a set of independent
//! pure `Instance → summary` computations, so the sweep layer fans them
//! out across worker threads. The registry environment is unavailable
//! offline, so instead of `rayon` this is a small scoped-thread work
//! queue with the properties the experiments need:
//!
//! * **Deterministic ordering** — results are returned in input order
//!   regardless of which worker finished first, so parallel sweeps are
//!   byte-identical to serial ones (verified by
//!   `tests/solver_equivalence.rs`).
//! * **Work stealing by atomic counter** — sweep points have wildly
//!   different costs (A\* at `T = 1000` vs `T = 100`), so workers pull
//!   the next index from a shared counter rather than pre-chunking.
//! * **Configurable width** — `--threads N` on the `repro` binary,
//!   [`set_thread_override`], or the `AIVM_THREADS` /
//!   `RAYON_NUM_THREADS` environment variables (first set wins); the
//!   default is the machine's available parallelism. Width 1 runs
//!   inline on the caller with no threads spawned — the paper-fidelity
//!   serial mode.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Process-wide thread-count override (0 = unset). Set by `--threads`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the sweep width for the whole process, taking precedence over
/// the environment. `None` clears the override.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Parses a thread-count environment value. A set-but-malformed or zero
/// value is a configuration error, not a cue to silently fall back —
/// `AIVM_THREADS=O8` picking the machine width would be a confusing way
/// to lose a benchmark's serial baseline.
fn parse_threads(var: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!("{var} must be at least 1, got 0")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{var} must be a positive integer, got {value:?}")),
    }
}

/// The sweep width currently in effect: the [`set_thread_override`]
/// value, else `AIVM_THREADS`, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism (at least 1).
///
/// # Panics
///
/// When the first set environment variable is malformed or zero; the
/// error names the variable and the offending value.
pub fn configured_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    for var in ["AIVM_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(var) {
            match parse_threads(var, &value) {
                Ok(n) => return n,
                Err(e) => panic!("invalid thread configuration: {e}"),
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..len` with the configured sweep width, returning
/// results in index order.
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed_with(configured_threads(), len, f)
}

/// [`par_map_indexed`] at an explicit width.
pub fn par_map_indexed_with<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads == 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    type Item<R> = (usize, std::thread::Result<R>);
    let (tx, rx) = mpsc::channel::<Item<R>>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                // Catch worker panics and ship the payload to the
                // collector, which re-raises it on the calling thread;
                // relying on scope-join propagation alone would leave
                // the collector blocked on the channel if send order and
                // panic order raced.
                let result = catch_unwind(AssertUnwindSafe(|| f(i)));
                let failed = result.is_err();
                if tx.send((i, result)).is_err() || failed {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
        for (i, r) in rx {
            match r {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => {
                    // Keep draining so workers' sends never block; the
                    // panic is re-raised once the channel closes.
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|s| s.expect("work queue covered every index"))
            .collect()
    })
}

/// Maps `f` over a slice with the configured width, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_map_indexed_with(1, 37, |i| i * i + 1);
        let parallel = par_map_indexed_with(8, 37, |i| i * i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map_indexed_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed_with(4, 1, |i| i + 9), vec![9]);
    }

    #[test]
    fn override_beats_env() {
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        set_thread_override(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("AIVM_THREADS", "4"), Ok(4));
        assert_eq!(parse_threads("AIVM_THREADS", "  16 "), Ok(16));
    }

    #[test]
    fn parse_threads_rejects_zero_and_garbage() {
        for bad in ["0", "", "O8", "-2", "3.5", "four"] {
            let err = parse_threads("AIVM_THREADS", bad).expect_err(bad);
            assert!(err.contains("AIVM_THREADS"), "error names the var: {err}");
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            par_map_indexed_with(4, 32, |i| {
                if i == 13 {
                    panic!("boom at 13");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("boom at 13"), "original payload kept: {msg}");
    }

    #[test]
    fn serial_path_panic_also_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map_indexed_with(1, 4, |i| {
                if i == 2 {
                    panic!("serial boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Heavy items early; counter-based stealing must not deadlock or
        // reorder.
        let items: Vec<u64> = (0..24).map(|i| if i < 4 { 200_000 } else { 10 }).collect();
        let out = par_map(&items, |&n| (0..n).map(|x| x % 7).sum::<u64>());
        let expect: Vec<u64> = items.iter().map(|&n| (0..n).map(|x| x % 7).sum()).collect();
        assert_eq!(out, expect);
    }
}
