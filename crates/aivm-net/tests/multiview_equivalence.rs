//! Over-the-wire multi-view equivalence: one registry server answering
//! N views must be bit-identical to N independent single-view servers
//! fed the identical submit stream through real sockets.

use aivm_core::CostModel;
use aivm_engine::{
    row, AggFunc, AggSpec, CmpOp, DataType, Database, Expr, JoinPred, MaterializedView,
    MinStrategy, Modification, Schema, ViewDef, ViewRegistry,
};
use aivm_net::{
    read_hello_reply, recv_response, send_request, write_hello, HandshakeStatus, NetServer,
    NetServerConfig, Request, RequestFrame, Response,
};
use aivm_serve::{
    MaintenanceRuntime, MultiConfig, NaiveFlush, RegistryRuntime, RegistryServer, ServeConfig,
    ServeServer, ServerConfig,
};
use std::net::TcpStream;
use std::time::Duration;

fn base() -> Database {
    let mut db = Database::new();
    db.create_table(
        "r",
        Schema::new(vec![("k", DataType::Int), ("x", DataType::Float)]),
    )
    .unwrap();
    db.create_table(
        "s",
        Schema::new(vec![("k", DataType::Int), ("y", DataType::Int)]),
    )
    .unwrap();
    db
}

fn join_def(name: &str) -> ViewDef {
    ViewDef {
        name: name.into(),
        tables: vec!["r".into(), "s".into()],
        join_preds: vec![JoinPred {
            left: (0, 0),
            right: (1, 0),
        }],
        filters: vec![None, None],
        residual: None,
        projection: None,
        aggregate: None,
        distinct: false,
    }
}

/// View variants cycling over one shared SPJ core (join/min/sum) plus a
/// filtered variant whose different core starts its own sharing group.
fn variant(i: usize) -> ViewDef {
    let name = format!("v{i}");
    match i % 4 {
        0 => join_def(&name),
        1 => ViewDef {
            aggregate: Some(AggSpec {
                group_by: vec![],
                aggs: vec![(AggFunc::Min, Expr::col(1), "m".into())],
            }),
            ..join_def(&name)
        },
        2 => ViewDef {
            aggregate: Some(AggSpec {
                group_by: vec![0],
                aggs: vec![(AggFunc::Sum, Expr::col(3), "s".into())],
            }),
            ..join_def(&name)
        },
        _ => ViewDef {
            filters: vec![
                None,
                Some(Expr::Cmp(
                    CmpOp::Gt,
                    Box::new(Expr::col(1)),
                    Box::new(Expr::lit(0i64)),
                )),
            ],
            ..join_def(&name)
        },
    }
}

fn costs() -> Vec<CostModel> {
    vec![CostModel::linear(0.5, 0.1), CostModel::linear(0.7, 0.2)]
}

fn registry_rig(views: usize) -> (RegistryServer, NetServer) {
    let mut reg = ViewRegistry::new(base());
    for i in 0..views {
        reg.register_view(variant(i), MinStrategy::Multiset)
            .unwrap();
    }
    let rt = RegistryRuntime::new(
        MultiConfig::new(costs(), 1e6),
        Box::new(NaiveFlush::new()),
        reg,
    )
    .unwrap();
    let server = RegistryServer::spawn(rt, ServerConfig::default());
    let net = NetServer::bind_registry("127.0.0.1:0", server.handle(), NetServerConfig::default())
        .unwrap();
    (server, net)
}

fn solo_rig(def: ViewDef) -> (ServeServer, NetServer) {
    let db = base();
    let view = MaterializedView::new(&db, def, MinStrategy::Multiset).unwrap();
    let rt = MaintenanceRuntime::engine(
        ServeConfig::new(costs(), 1e6),
        Box::new(NaiveFlush::new()),
        db,
        view,
    )
    .unwrap();
    let serve = ServeServer::spawn(rt, ServerConfig::default());
    let net =
        NetServer::bind("127.0.0.1:0", serve.handle(), 2, NetServerConfig::default()).unwrap();
    (serve, net)
}

fn connect(net: &NetServer) -> TcpStream {
    let mut s = TcpStream::connect(net.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_hello(&mut s).unwrap();
    assert_eq!(read_hello_reply(&mut s).unwrap(), HandshakeStatus::Ok);
    s
}

fn roundtrip(s: &mut TcpStream, request: Request) -> Response {
    send_request(
        s,
        &RequestFrame {
            deadline_ms: 10_000,
            request,
        },
    )
    .unwrap();
    recv_response(s).unwrap()
}

/// Interleaved inserts with periodic deletes, addressed over the global
/// table axis (0 = r, 1 = s) shared by both server shapes.
fn stream() -> Vec<(u32, Modification)> {
    (0..120i64)
        .flat_map(|i| {
            let mut v = vec![
                (0u32, Modification::Insert(row![i % 7, (i as f64) * 0.5])),
                (1u32, Modification::Insert(row![i % 7, i - 20])),
            ];
            if i % 5 == 4 {
                v.push((1, Modification::Delete(row![(i - 1) % 7, i - 21])));
            }
            v
        })
        .collect()
}

fn feed(s: &mut TcpStream, events: &[(u32, Modification)]) {
    for chunk in events.chunks(16) {
        // Split the chunk into per-table runs (a Submit frame targets
        // one table).
        for table in [0u32, 1] {
            let mods: Vec<Modification> = chunk
                .iter()
                .filter(|(t, _)| *t == table)
                .map(|(_, m)| m.clone())
                .collect();
            if mods.is_empty() {
                continue;
            }
            let n = mods.len() as u64;
            match roundtrip(
                s,
                Request::Submit {
                    epoch: 0,
                    table,
                    mods,
                },
            ) {
                Response::SubmitOk { accepted } => assert_eq!(accepted, n),
                other => panic!("submit: {other:?}"),
            }
        }
    }
}

fn fresh_checksum(s: &mut TcpStream, view: u32) -> u64 {
    match roundtrip(
        s,
        Request::Read {
            view,
            fresh: true,
            want_rows: false,
        },
    ) {
        Response::ReadOk(r) => {
            assert!(r.fresh);
            assert!(!r.violated);
            r.checksum
        }
        other => panic!("read view {view}: {other:?}"),
    }
}

#[test]
fn registry_matches_independent_servers_over_the_wire() {
    let views = 6;
    let events = stream();

    let (server, net) = registry_rig(views);
    let mut ctl = connect(&net);
    feed(&mut ctl, &events);
    let shared: Vec<u64> = (0..views as u32)
        .map(|v| fresh_checksum(&mut ctl, v))
        .collect();

    // Per-view metrics rows: every view present, join/min/sum variants
    // in one sharing group, the filtered variant in its own.
    let m = match roundtrip(
        &mut ctl,
        Request::Metrics {
            per_shard: false,
            per_view: true,
        },
    ) {
        Response::MetricsOk(m) => m,
        other => panic!("metrics: {other:?}"),
    };
    assert_eq!(m.views, views as u64);
    let rows = m.per_view.as_ref().expect("per-view rows");
    assert_eq!(rows.len(), views);
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.view as usize, i);
        assert_eq!(r.violations, 0);
    }
    assert_eq!(rows[0].group, rows[1].group);
    assert_eq!(rows[0].group, rows[2].group);
    assert_eq!(rows[0].group, rows[4].group);
    assert_ne!(
        rows[0].group, rows[3].group,
        "filtered core shares no group"
    );

    net.shutdown();
    server.shutdown();

    // The same stream through independent single-view servers must land
    // on bit-identical view contents.
    for (i, &want) in shared.iter().enumerate() {
        let (serve, net) = solo_rig(variant(i));
        let mut s = connect(&net);
        feed(&mut s, &events);
        let got = fresh_checksum(&mut s, 0);
        assert_eq!(got, want, "view {i} diverged from its independent twin");
        net.shutdown();
        serve.shutdown();
    }
}
