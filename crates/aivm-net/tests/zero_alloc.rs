//! Proves the zero-copy decode path is actually zero-allocation.
//!
//! The event-loop server decodes every inbound frame with
//! [`decode_request_ref`], which borrows Submit/Read payloads straight
//! out of the connection's read buffer. This test installs a counting
//! global allocator and asserts that, after warmup, decoding a Submit
//! frame performs **zero** heap allocations. Materializing `Row`s for
//! ingest (`SubmitRef::decode_mods_into`) is the only allocating step
//! on the submit path, and it reuses a caller-owned `Vec`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use aivm_engine::{Modification, Row, Value};
use aivm_net::{decode_request_ref, encode_request, Request, RequestFrame, RequestRef};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn submit_payload() -> Vec<u8> {
    let mods = vec![
        Modification::Insert(Row::new(vec![
            Value::Int(42),
            Value::Str("zero-copy".into()),
            Value::Float(2.5),
        ])),
        Modification::Delete(Row::new(vec![Value::Int(7), Value::Null])),
        Modification::Update {
            old: Row::new(vec![Value::Int(1), Value::Str("before".into())]),
            new: Row::new(vec![Value::Int(1), Value::Str("after".into())]),
        },
    ];
    encode_request(&RequestFrame {
        deadline_ms: 250,
        request: Request::Submit {
            epoch: 0,
            table: 3,
            mods,
        },
    })
}

#[test]
fn decoding_a_submit_frame_allocates_nothing() {
    let payload = submit_payload();

    // Warm up: first calls may touch lazily-initialized runtime state.
    for _ in 0..16 {
        let f = decode_request_ref(&payload).expect("valid frame");
        assert!(matches!(f.request, RequestRef::Submit(_)));
    }

    let before = alloc_count();
    for _ in 0..100 {
        let f = decode_request_ref(&payload).expect("valid frame");
        let RequestRef::Submit(s) = f.request else {
            panic!("expected submit");
        };
        assert_eq!(s.table, 3);
        assert_eq!(s.count, 3);
    }
    let after = alloc_count();
    assert_eq!(
        after - before,
        0,
        "decode_request_ref must not allocate on the steady-state path"
    );
}

#[test]
fn decoding_read_ping_metrics_flush_allocates_nothing() {
    let frames: Vec<Vec<u8>> = [
        Request::Ping,
        Request::Read {
            view: 0,
            fresh: true,
            want_rows: false,
        },
        Request::Metrics {
            per_shard: false,
            per_view: false,
        },
        Request::Flush,
    ]
    .into_iter()
    .map(|request| {
        encode_request(&RequestFrame {
            deadline_ms: 100,
            request,
        })
    })
    .collect();

    for p in &frames {
        decode_request_ref(p).expect("valid frame");
    }

    let before = alloc_count();
    for _ in 0..100 {
        for p in &frames {
            decode_request_ref(p).expect("valid frame");
        }
    }
    let after = alloc_count();
    assert_eq!(after - before, 0);
}

#[test]
fn materializing_mods_reuses_the_callers_buffer() {
    let payload = submit_payload();
    let f = decode_request_ref(&payload).expect("valid frame");
    let RequestRef::Submit(s) = f.request else {
        panic!("expected submit");
    };

    let mut out = Vec::new();
    s.decode_mods_into(&mut out).expect("valid mods");
    assert_eq!(out.len(), 3);

    // Decoding into a warm buffer allocates only the per-row payloads,
    // never the outer Vec: its capacity is retained across batches.
    out.clear();
    let cap = out.capacity();
    s.decode_mods_into(&mut out).expect("valid mods");
    assert_eq!(out.len(), 3);
    assert_eq!(out.capacity(), cap);
}
