//! TCP server integration tests over localhost, speaking raw frames
//! (the `aivm-client` crate layers retries/pooling on top; these tests
//! pin the protocol itself).

use aivm_core::CostModel;
use aivm_engine::{
    parse_query, row, DataType, Database, MaterializedView, MinStrategy, Modification, Schema,
    ViewDef,
};
use aivm_net::{
    read_hello_reply, recv_response, send_request, write_hello, ErrorCode, HandshakeStatus,
    NetServer, NetServerConfig, Request, RequestFrame, Response,
};
use aivm_serve::{MaintenanceRuntime, NaiveFlush, ServeConfig, ServeServer, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn tiny_view_def() -> ViewDef {
    ViewDef {
        name: "v".into(),
        tables: vec!["t".into()],
        join_preds: vec![],
        filters: vec![None],
        residual: None,
        projection: None,
        aggregate: None,
        distinct: false,
    }
}

fn tiny_engine_runtime() -> (MaintenanceRuntime, Database) {
    let mut db = Database::new();
    let t = db
        .create_table("t", Schema::new(vec![("id", DataType::Int)]))
        .unwrap();
    db.set_key_column(t, 0);
    let genesis = db.clone();
    let view = MaterializedView::new(&db, tiny_view_def(), MinStrategy::Multiset).unwrap();
    let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 50.0);
    let rt = MaintenanceRuntime::engine(cfg, Box::new(NaiveFlush::new()), db, view).unwrap();
    (rt, genesis)
}

struct TestRig {
    serve: ServeServer,
    net: NetServer,
}

fn spawn_rig(net_cfg: NetServerConfig) -> TestRig {
    let (rt, _genesis) = tiny_engine_runtime();
    let serve = ServeServer::spawn(rt, ServerConfig::default());
    let net = NetServer::bind("127.0.0.1:0", serve.handle(), 1, net_cfg).unwrap();
    TestRig { serve, net }
}

fn connect(net: &NetServer) -> TcpStream {
    let mut s = TcpStream::connect(net.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_hello(&mut s).unwrap();
    assert_eq!(read_hello_reply(&mut s).unwrap(), HandshakeStatus::Ok);
    s
}

fn roundtrip(s: &mut TcpStream, request: Request) -> Response {
    send_request(
        s,
        &RequestFrame {
            deadline_ms: 5_000,
            request,
        },
    )
    .unwrap();
    recv_response(s).unwrap()
}

#[test]
fn submit_read_metrics_over_the_wire() {
    let rig = spawn_rig(NetServerConfig::default());
    let mut s = connect(&rig.net);

    assert_eq!(roundtrip(&mut s, Request::Ping), Response::Pong);

    let mods: Vec<Modification> = (0..10i64).map(|i| Modification::Insert(row![i])).collect();
    match roundtrip(
        &mut s,
        Request::Submit {
            epoch: 0,
            table: 0,
            mods: mods.clone(),
        },
    ) {
        Response::SubmitOk { accepted } => assert_eq!(accepted, 10),
        other => panic!("submit: {other:?}"),
    }

    // A fresh read reflects every submitted row and fits the budget.
    let read = roundtrip(
        &mut s,
        Request::Read {
            view: 0,
            fresh: true,
            want_rows: true,
        },
    );
    let wire_checksum = match read {
        Response::ReadOk(r) => {
            assert!(r.fresh);
            assert_eq!(r.lag, 0);
            assert!(!r.violated);
            let rows = r.rows.expect("want_rows");
            assert_eq!(rows.len(), 10);
            r.checksum
        }
        other => panic!("read: {other:?}"),
    };

    // The wire checksum equals a direct evaluation of the view over a
    // database that applied the same stream.
    let (_, mut direct_db) = tiny_engine_runtime();
    let t = direct_db.table_id("t").unwrap();
    for m in &mods {
        direct_db.apply(t, m).unwrap();
    }
    let q = parse_query(&direct_db, "SELECT id FROM t").unwrap();
    let direct = q.execute(&direct_db).unwrap();
    let direct_checksum = {
        let mut acc: u64 = 0;
        for (row, w) in &direct {
            acc = acc.wrapping_add(aivm_engine::fxhash::hash_one(&(row, w)));
        }
        acc
    };
    assert_eq!(wire_checksum, direct_checksum);

    match roundtrip(
        &mut s,
        Request::Metrics {
            per_shard: false,
            per_view: false,
        },
    ) {
        Response::MetricsOk(m) => {
            assert_eq!(m.events_ingested, 10);
            assert_eq!(m.submitted_events, 10);
            assert_eq!(m.constraint_violations, 0);
            assert!(!m.degraded);
            assert_eq!(m.connections_active, 1);
            assert!(m.requests >= 4);
        }
        other => panic!("metrics: {other:?}"),
    }

    match roundtrip(&mut s, Request::Flush) {
        Response::FlushOk { violated, .. } => assert!(!violated),
        other => panic!("flush: {other:?}"),
    }

    drop(s);
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn stale_reads_serve_from_published_snapshot() {
    let rig = spawn_rig(NetServerConfig::default());
    let mut s = connect(&rig.net);
    let mods: Vec<Modification> = (0..8i64).map(|i| Modification::Insert(row![i])).collect();
    match roundtrip(
        &mut s,
        Request::Submit {
            epoch: 0,
            table: 0,
            mods,
        },
    ) {
        Response::SubmitOk { accepted } => assert_eq!(accepted, 8),
        other => panic!("submit: {other:?}"),
    }
    let fresh_checksum = match roundtrip(
        &mut s,
        Request::Read {
            view: 0,
            fresh: true,
            want_rows: false,
        },
    ) {
        Response::ReadOk(r) => r.checksum,
        other => panic!("fresh read: {other:?}"),
    };
    // The flush publishes a new snapshot at the next scheduler tick;
    // stale reads then serve it without a scheduler round-trip. Poll
    // until the publication lands (tick interval is 1 ms).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stale = loop {
        match roundtrip(
            &mut s,
            Request::Read {
                view: 0,
                fresh: false,
                want_rows: true,
            },
        ) {
            Response::ReadOk(r) if r.checksum == fresh_checksum => break r,
            Response::ReadOk(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            other => panic!("stale read never caught up: {other:?}"),
        }
    };
    assert!(!stale.fresh);
    assert_eq!(stale.lag, 0);
    assert_eq!(stale.rows.expect("want_rows").len(), 8);
    match roundtrip(
        &mut s,
        Request::Metrics {
            per_shard: false,
            per_view: false,
        },
    ) {
        Response::MetricsOk(m) => {
            assert!(
                m.snapshot_reads >= 1,
                "stale reads must be snapshot-served, got {m:?}"
            );
        }
        other => panic!("metrics: {other:?}"),
    }
    drop(s);
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn connection_cap_rejects_with_typed_handshake() {
    let rig = spawn_rig(NetServerConfig {
        max_connections: 1,
        ..NetServerConfig::default()
    });
    let _first = connect(&rig.net);
    // Give the accept loop time to register the first connection.
    std::thread::sleep(Duration::from_millis(50));
    let mut second = TcpStream::connect(rig.net.local_addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write_hello(&mut second).unwrap();
    assert_eq!(
        read_hello_reply(&mut second).unwrap(),
        HandshakeStatus::Overloaded
    );
    drop(second);
    drop(_first);
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn unknown_table_is_bad_request_not_poison() {
    let rig = spawn_rig(NetServerConfig::default());
    let mut s = connect(&rig.net);
    match roundtrip(
        &mut s,
        Request::Submit {
            epoch: 0,
            table: 9,
            mods: vec![Modification::Insert(row![1i64])],
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The connection and the scheduler both survive.
    assert_eq!(roundtrip(&mut s, Request::Ping), Response::Pong);
    drop(s);
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn corrupt_frame_gets_typed_error_then_close() {
    let rig = spawn_rig(NetServerConfig::default());
    let mut s = connect(&rig.net);
    // A frame whose payload passes the checksum but decodes to garbage.
    let garbage = vec![0xFFu8; 16];
    aivm_net::write_frame(&mut s, &garbage).unwrap();
    s.flush().unwrap();
    match recv_response(&mut s).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // The server closed the connection (a byte stream past garbage
    // cannot be trusted): the next read observes EOF.
    assert!(matches!(
        recv_response(&mut s),
        Err(aivm_net::FrameError::Closed) | Err(aivm_net::FrameError::Io(_))
    ));
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn shutdown_drains_open_connections() {
    let rig = spawn_rig(NetServerConfig::default());
    let mut s = connect(&rig.net);
    assert_eq!(roundtrip(&mut s, Request::Ping), Response::Pong);
    // Shut the net server down while the connection is still open; the
    // drain must complete without hanging (the connection thread sees
    // the stop flag at its next request boundary).
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn diverged_replica_goes_unhealthy_instead_of_polling_forever() {
    use aivm_net::{Replica, ReplicaConfig};
    use aivm_serve::{MemWal, WalTail, WalWriter};
    use aivm_shard::{Partitioner, ReplicaStatus, ShardRouter};
    use std::time::Instant;

    // One-shard rig whose leader WAL is tailed by the router.
    let (mut rt, _genesis) = tiny_engine_runtime();
    let mem = MemWal::new();
    rt.attach_wal(WalWriter::create(Box::new(mem.clone()), 1).unwrap());
    let serve = ServeServer::spawn(rt, ServerConfig::default());
    let part = Partitioner::single(1);
    let router = ShardRouter::new(vec![serve.handle()], part, &tiny_view_def(), 50.0).unwrap();
    router.attach_wal_tail(0, WalTail::new(Box::new(mem.clone())));
    let net =
        NetServer::bind_sharded("127.0.0.1:0", router.clone(), NetServerConfig::default()).unwrap();
    assert!(serve
        .handle()
        .ingest_dml(0, Modification::Insert(row![1i64])));

    // Control: a fresh standby catches up and turns healthy, proving
    // the tail-stream path itself works in this rig.
    let (standby, _) = tiny_engine_runtime();
    let status = ReplicaStatus::new();
    let rep = Replica::spawn(
        net.local_addr(),
        0,
        standby,
        status.clone(),
        ReplicaConfig::default(),
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !(status.healthy() && status.applied() >= 1) {
        assert!(Instant::now() < deadline, "control replica never caught up");
        std::thread::sleep(Duration::from_millis(1));
    }
    drop(rep);

    // Divergence: a follower whose applied cursor lies beyond the
    // leader's entire log (the log was truncated/rebuilt under it — the
    // tail clamps from_record to its end, so only the record count
    // betrays it) must flag itself unhealthy and stop, not sleep-poll
    // forever reporting healthy while applying nothing.
    let (standby, _) = tiny_engine_runtime();
    let status = ReplicaStatus::new();
    status.set_applied(1_000);
    status.set_healthy(true);
    let rep = Replica::spawn(
        net.local_addr(),
        0,
        standby,
        status.clone(),
        ReplicaConfig::default(),
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while status.healthy() {
        assert!(
            Instant::now() < deadline,
            "diverged replica kept reporting healthy"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // And it must not fabricate progress past the leader's log.
    assert_eq!(status.applied(), 1_000);
    drop(rep);
    net.shutdown();
    // The router's slot still holds a scheduler handle; release it so
    // the scheduler sees disconnect and `shutdown`'s join returns.
    drop(router);
    serve.shutdown();
}
