//! Push-subscription resume properties over real sockets: a subscriber
//! killed and reconnected at *any* seq folds every flushed batch
//! exactly once in seq order (no gap, no duplicate) and its folded
//! state checksum-matches a direct fresh read; a subscriber that fell
//! off the delta ring — or never drained at all — is resynced from the
//! snapshot instead of stalling the flush path.

use aivm_core::CostModel;
use aivm_engine::{
    row, rows_checksum, AggFunc, AggSpec, DataType, Database, Expr, JoinPred, MinStrategy,
    Modification, Schema, ViewDef, ViewRegistry, WRow,
};
use aivm_net::{
    read_hello_reply, recv_response, send_request, write_hello, HandshakeStatus, NetServer,
    NetServerConfig, Request, RequestFrame, Response,
};
use aivm_serve::{
    fold_delta, DeltaBatch, MultiConfig, NaiveFlush, RegistryRuntime, RegistryServer, ServerConfig,
};
use std::net::TcpStream;
use std::time::Duration;

fn base() -> Database {
    let mut db = Database::new();
    db.create_table(
        "r",
        Schema::new(vec![("k", DataType::Int), ("x", DataType::Float)]),
    )
    .unwrap();
    db.create_table(
        "s",
        Schema::new(vec![("k", DataType::Int), ("y", DataType::Int)]),
    )
    .unwrap();
    db
}

fn join_def(name: &str) -> ViewDef {
    ViewDef {
        name: name.into(),
        tables: vec!["r".into(), "s".into()],
        join_preds: vec![JoinPred {
            left: (0, 0),
            right: (1, 0),
        }],
        filters: vec![None, None],
        residual: None,
        projection: None,
        aggregate: None,
        distinct: false,
    }
}

fn rig() -> (RegistryServer, NetServer) {
    let mut reg = ViewRegistry::new(base());
    reg.register_view(join_def("v0"), MinStrategy::Multiset)
        .unwrap();
    reg.register_view(
        ViewDef {
            aggregate: Some(AggSpec {
                group_by: vec![0],
                aggs: vec![(AggFunc::Sum, Expr::col(3), "s".into())],
            }),
            ..join_def("v1")
        },
        MinStrategy::Multiset,
    )
    .unwrap();
    let rt = RegistryRuntime::new(
        MultiConfig::new(
            vec![CostModel::linear(0.5, 0.1), CostModel::linear(0.7, 0.2)],
            1e6,
        ),
        Box::new(NaiveFlush::new()),
        reg,
    )
    .unwrap();
    let server = RegistryServer::spawn(rt, ServerConfig::default());
    let net = NetServer::bind_registry("127.0.0.1:0", server.handle(), NetServerConfig::default())
        .unwrap();
    (server, net)
}

fn connect(net: &NetServer) -> TcpStream {
    let mut s = TcpStream::connect(net.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write_hello(&mut s).unwrap();
    assert_eq!(read_hello_reply(&mut s).unwrap(), HandshakeStatus::Ok);
    s
}

fn roundtrip(s: &mut TcpStream, request: Request) -> Response {
    send_request(
        s,
        &RequestFrame {
            deadline_ms: 10_000,
            request,
        },
    )
    .unwrap();
    recv_response(s).unwrap()
}

/// One subscriber-side fold state machine over a raw socket.
struct Sub {
    stream: TcpStream,
    view: u32,
    state: Vec<WRow>,
    /// Seq of the last snapshot or folded delta.
    last_seq: u64,
    deltas: u64,
    resyncs: u64,
}

impl Sub {
    /// Opens a subscription and applies the `SubscribeOk` reply: a
    /// resync replaces the folded state, a resume-ack confirms the
    /// requested position without rows.
    fn open(net: &NetServer, view: u32, from_seq: u64, prev: Option<Sub>) -> Sub {
        let mut stream = connect(net);
        let reply = roundtrip(&mut stream, Request::Subscribe { view, from_seq });
        let (mut state, mut last_seq, mut resyncs, deltas) = match prev {
            Some(p) => (p.state, p.last_seq, p.resyncs, p.deltas),
            None => (Vec::new(), 0, 0, 0),
        };
        match reply {
            Response::SubscribeOk {
                view: v,
                seq,
                resync,
                checksum,
                rows,
            } => {
                assert_eq!(v, view);
                if resync {
                    assert_eq!(
                        rows_checksum(&rows),
                        checksum,
                        "resync snapshot fails its own checksum"
                    );
                    state = rows;
                    last_seq = seq;
                    resyncs += 1;
                } else {
                    assert_eq!(seq, from_seq.saturating_sub(1), "resume-ack seq");
                    assert!(rows.is_empty(), "resume-ack carries no rows");
                }
            }
            other => panic!("subscribe: {other:?}"),
        }
        Sub {
            stream,
            view,
            state,
            last_seq,
            deltas,
            resyncs,
        }
    }

    /// Receives one pushed frame and folds it. Deltas must arrive in
    /// strictly consecutive seq order; a pushed resync may jump ahead.
    fn recv_fold(&mut self) {
        match recv_response(&mut self.stream).expect("push frame") {
            Response::ViewDelta {
                view,
                seq,
                checksum,
                staleness,
                rows,
            } => {
                assert_eq!(view, self.view);
                assert_eq!(
                    seq,
                    self.last_seq + 1,
                    "delta seq gap or duplicate (last {})",
                    self.last_seq
                );
                let state = std::mem::take(&mut self.state);
                self.state = fold_delta(
                    state,
                    &DeltaBatch {
                        view,
                        seq,
                        rows,
                        checksum,
                        staleness,
                    },
                );
                assert_eq!(
                    rows_checksum(&self.state),
                    checksum,
                    "post-fold state diverged at seq {seq}"
                );
                self.last_seq = seq;
                self.deltas += 1;
            }
            Response::SubscribeOk {
                view,
                seq,
                resync,
                checksum,
                rows,
            } => {
                assert_eq!(view, self.view);
                assert!(resync, "unsolicited non-resync SubscribeOk");
                assert!(seq > self.last_seq, "resync must move forward");
                assert_eq!(rows_checksum(&rows), checksum);
                self.state = rows;
                self.last_seq = seq;
                self.resyncs += 1;
            }
            other => panic!("push: {other:?}"),
        }
    }

    /// Folds pushed frames until the local state checksum-matches
    /// `target` (the direct fresh read's checksum).
    fn drain_to(&mut self, target: u64) {
        while rows_checksum(&self.state) != target {
            self.recv_fold();
        }
    }
}

fn submit_round(ctl: &mut TcpStream, i: i64) {
    for (table, m) in [
        (0u32, Modification::Insert(row![i % 5, (i as f64) * 0.25])),
        (1, Modification::Insert(row![i % 5, i])),
    ] {
        match roundtrip(
            ctl,
            Request::Submit {
                epoch: 0,
                table,
                mods: vec![m],
            },
        ) {
            Response::SubmitOk { accepted } => assert_eq!(accepted, 1),
            other => panic!("submit: {other:?}"),
        }
    }
}

fn fresh_checksum(ctl: &mut TcpStream, view: u32) -> u64 {
    match roundtrip(
        ctl,
        Request::Read {
            view,
            fresh: true,
            want_rows: false,
        },
    ) {
        Response::ReadOk(r) => {
            assert!(!r.violated);
            r.checksum
        }
        other => panic!("read: {other:?}"),
    }
}

/// Kill/reconnect at every seq: the connection is dropped after *each*
/// folded delta and reopened from `last_seq + 1`, so every seq in the
/// run doubles as a resume point. The folded state must checksum-match
/// the direct read after every round, with zero snapshot resyncs (every
/// resume position is still on the ring).
#[test]
fn reconnect_at_every_seq_folds_each_batch_exactly_once() {
    let (server, net) = rig();
    let mut ctl = connect(&net);

    let mut sub = Sub::open(&net, 0, u64::MAX, None);
    assert_eq!(sub.resyncs, 1, "head subscribe starts from a snapshot");

    for i in 0..30 {
        submit_round(&mut ctl, i);
        let target = fresh_checksum(&mut ctl, 0);
        sub.drain_to(target);
        // Kill the connection at this seq and resume exactly after it.
        let from = sub.last_seq + 1;
        sub = Sub::open(&net, 0, from, Some(sub));
    }
    assert!(sub.deltas >= 30, "every flush boundary was pushed");
    assert_eq!(sub.resyncs, 1, "in-ring resumes never degrade to resync");

    net.shutdown();
    server.shutdown();
}

/// A resume position that has fallen off the bounded delta ring is
/// answered with a snapshot resync (not an error, not a stall), after
/// which the subscriber is immediately current.
#[test]
fn off_ring_resume_degrades_to_snapshot_resync() {
    let (server, net) = rig();
    let mut ctl = connect(&net);

    // Push well past the ring capacity so seq 1 is long evicted.
    let mut target = 0;
    for i in 0..80 {
        submit_round(&mut ctl, i);
        target = fresh_checksum(&mut ctl, 1);
    }
    let sub = Sub::open(&net, 1, 1, None);
    assert_eq!(sub.resyncs, 1, "off-ring resume must resync");
    assert_eq!(
        rows_checksum(&sub.state),
        target,
        "resync snapshot is not current"
    );

    net.shutdown();
    server.shutdown();
}

/// A subscriber that never drains its socket must not stall the
/// submit/flush path; after the run it reattaches via snapshot and is
/// current immediately.
#[test]
fn unread_subscriber_never_stalls_flushes() {
    let (server, net) = rig();
    let mut ctl = connect(&net);

    // Subscribed but never read from again.
    let stalled = Sub::open(&net, 0, u64::MAX, None);

    let mut target = 0;
    for i in 0..80 {
        submit_round(&mut ctl, i);
        target = fresh_checksum(&mut ctl, 0);
    }
    drop(stalled);

    let sub = Sub::open(&net, 0, u64::MAX, None);
    assert_eq!(
        rows_checksum(&sub.state),
        target,
        "fresh head subscribe after the stalled run is not current"
    );

    net.shutdown();
    server.shutdown();
}
