//! The wire format: handshake, frame layer, and request/response
//! payload codecs.
//!
//! ## Framing
//!
//! A connection opens with a fixed-size handshake (client first):
//!
//! ```text
//! client hello: magic "ANET" | version u16
//! server reply: magic "ANET" | version u16 | status u8
//! ```
//!
//! Status 0 accepts; any other value is a typed connection-level
//! rejection ([`HandshakeStatus`]), sent *before* any frame so a capped
//! server never leaves a dangling half-frame behind.
//!
//! After the handshake both directions carry frames with exactly the
//! write-ahead log's convention (`aivm-serve/src/wal.rs`):
//!
//! ```text
//! frame: payload_len u32 | fxhash64(payload) u64 | payload
//! ```
//!
//! All integers little-endian. A frame whose length exceeds
//! [`MAX_FRAME_LEN`] or whose checksum fails is *corrupt* — and because
//! a byte stream cannot be resynchronised past garbage, the connection
//! must be dropped. A cleanly closed connection at a frame boundary is
//! [`FrameError::Closed`], not an error in disguise; EOF *inside* a
//! frame is a torn frame (I/O error), mirroring the WAL's torn-tail
//! distinction.
//!
//! ## Payloads
//!
//! Request payloads prefix a deadline, then a kind tag:
//!
//! ```text
//! request:  deadline_ms u32 | kind u8 | body
//!   kind 0 Ping
//!   kind 1 Submit  epoch u64 | table u32 | count u32 | modification...
//!   kind 2 Read    view u32 | mode u8 (0 stale, 1 fresh) | want_rows u8
//!   kind 3 Metrics per_shard u8 | per_view u8
//!   kind 4 Flush
//!   kind 5 ReplicaSubscribe shard u32 | from_record u64
//!   kind 6 Subscribe view u32 | from_seq u64 (u64::MAX = from head)
//!   kind 7 Unsubscribe view u32
//! response: kind u8 | body
//!   kind 0 Pong
//!   kind 1 SubmitOk  accepted u64
//!   kind 2 ReadOk    fresh u8 | lag u64 | flush_cost f64 | violated u8
//!                    | degraded u8 | checksum u64
//!                    | has_rows u8 [| count u32 | (row, w i64)...]
//!   kind 3 MetricsOk NetMetrics fields in declaration order
//!                    [| per-shard rows when requested]
//!                    [| per-view rows when requested]
//!   kind 4 FlushOk   flush_cost f64 | violated u8
//!   kind 5 Error     code u8 | message str
//!   kind 6 WalSegment epoch u64 | from_record u64 | leader_records u64
//!                    | len u32 | bytes (raw checksummed WAL frames)
//!   kind 7 SubscribeOk view u32 | seq u64 | resync u8 | checksum u64
//!                    | count u32 | (row, w i64)...
//!   kind 8 ViewDelta view u32 | seq u64 | checksum u64 | staleness u64
//!                    | count u32 | (row, w i64)...
//! ```
//!
//! Values, rows and modifications reuse `aivm-engine`'s snapshot codec
//! (`aivm_engine::codec`), so a DML modification has exactly one binary
//! form across the WAL, checkpoints and the wire. `deadline_ms` is the
//! client's *remaining* budget for the request (0 = no deadline); the
//! server subtracts its own queue wait from it. The protocol is
//! versioned at the handshake, so payloads carry no per-frame version.

use aivm_engine::codec::{get_modification, get_row, get_str, put_modification, put_row, put_str};
use aivm_engine::fxhash::FxHasher;
use aivm_engine::{EngineError, Modification, Row, Value, WRow};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::hash::Hasher;
use std::io::{ErrorKind, Read, Write};

/// Handshake magic, both directions.
pub const NET_MAGIC: &[u8; 4] = b"ANET";
/// Protocol version negotiated at the handshake. v2 added
/// `snapshot_reads` to the metrics frame; v3 added sharding (the
/// `degraded` read flag, `ShardUnavailable`, the metrics `per_shard`
/// request flag and shard aggregate/breakdown metrics fields); v4 added
/// replication (the submit `epoch` fence, `StaleEpoch`,
/// `ReplicaSubscribe`/`WalSegment` frames, and per-shard
/// health/epoch/replication-lag metrics fields); v5 added multi-view
/// serving (the read/unsubscribe `view` selector, push subscriptions
/// via `Subscribe`/`SubscribeOk`/`ViewDelta`, the metrics `per_view`
/// request flag plus view/subscriber aggregate and breakdown fields,
/// and the resolved `shards_auto` flag); v6 added heavy-light skew
/// metrics (`heavy_keys`, `heavy_reclassifications`, `heavy_hits`,
/// `light_hits`).
pub const NET_VERSION: u16 = 6;
/// Bytes of framing before each payload (length + checksum).
pub const FRAME_HEADER_LEN: usize = 12;
/// Hard cap on a single frame's payload. A length prefix beyond this is
/// rejected as corrupt *before* any allocation, so a hostile or garbled
/// header cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Seedless content hash of a byte slice (stable across processes);
/// identical to the WAL's record checksum.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection at a clean frame boundary.
    Closed,
    /// Transport failure — including EOF *inside* a frame (a torn
    /// frame) and read timeouts.
    Io(std::io::Error),
    /// The stream arrived but failed validation (bad magic, oversized
    /// length, checksum mismatch, undecodable payload). The connection
    /// cannot be resynchronised and must be dropped.
    Corrupt(EngineError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True when the error is a read timeout (the deadline mechanism on
    /// blocking sockets).
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut)
    }

    fn corrupt(context: &str, offset: u64, message: impl Into<String>) -> FrameError {
        FrameError::Corrupt(EngineError::Corrupt {
            context: context.to_string(),
            offset,
            message: message.into(),
        })
    }
}

/// Outcome of the fixed-size server handshake reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeStatus {
    /// Connection accepted; frames may flow.
    Ok,
    /// The server is at its connection cap; retry later.
    Overloaded,
    /// The server speaks a different protocol version.
    VersionMismatch,
}

impl HandshakeStatus {
    fn as_u8(self) -> u8 {
        match self {
            HandshakeStatus::Ok => 0,
            HandshakeStatus::Overloaded => 1,
            HandshakeStatus::VersionMismatch => 2,
        }
    }

    fn from_u8(v: u8) -> Option<HandshakeStatus> {
        match v {
            0 => Some(HandshakeStatus::Ok),
            1 => Some(HandshakeStatus::Overloaded),
            2 => Some(HandshakeStatus::VersionMismatch),
            _ => None,
        }
    }
}

/// Writes the client hello (magic + version) and flushes.
pub fn write_hello<W: Write>(w: &mut W) -> std::io::Result<()> {
    w.write_all(NET_MAGIC)?;
    w.write_all(&NET_VERSION.to_le_bytes())?;
    w.flush()
}

/// Reads and validates a client hello, returning the peer's version.
/// A wrong magic is corrupt; a different version is *not* (the server
/// answers it with [`HandshakeStatus::VersionMismatch`]).
pub fn read_hello<R: Read>(r: &mut R) -> Result<u16, FrameError> {
    let mut buf = [0u8; 6];
    read_exact_or_closed(r, &mut buf, true)?;
    if &buf[..4] != NET_MAGIC {
        return Err(FrameError::corrupt("handshake", 0, "bad magic"));
    }
    Ok(u16::from_le_bytes([buf[4], buf[5]]))
}

/// Writes the server's handshake reply and flushes.
pub fn write_hello_reply<W: Write>(w: &mut W, status: HandshakeStatus) -> std::io::Result<()> {
    w.write_all(NET_MAGIC)?;
    w.write_all(&NET_VERSION.to_le_bytes())?;
    w.write_all(&[status.as_u8()])?;
    w.flush()
}

/// Reads and validates the server's handshake reply.
pub fn read_hello_reply<R: Read>(r: &mut R) -> Result<HandshakeStatus, FrameError> {
    let mut buf = [0u8; 7];
    read_exact_or_closed(r, &mut buf, true)?;
    if &buf[..4] != NET_MAGIC {
        return Err(FrameError::corrupt("handshake", 0, "bad magic"));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != NET_VERSION {
        return Err(FrameError::corrupt(
            "handshake",
            4,
            format!("server version {version} (supported: {NET_VERSION})"),
        ));
    }
    HandshakeStatus::from_u8(buf[6])
        .ok_or_else(|| FrameError::corrupt("handshake", 6, format!("status {}", buf[6])))
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&checksum(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, validating length and checksum. EOF before the
/// first header byte is [`FrameError::Closed`]; EOF anywhere later is a
/// torn frame ([`FrameError::Io`]).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact_or_closed(r, &mut header, true)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let sum = u64::from_le_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(FrameError::corrupt(
            "frame",
            0,
            format!("payload length {len} exceeds cap {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    read_exact_or_closed(r, &mut payload, false)?;
    if checksum(&payload) != sum {
        return Err(FrameError::corrupt(
            "frame",
            FRAME_HEADER_LEN as u64,
            "payload checksum mismatch",
        ));
    }
    Ok(payload)
}

/// Consecutive mid-frame read timeouts tolerated before a stalled peer
/// is treated as a torn frame.
const MAX_FRAME_STALLS: u32 = 100;

/// `read_exact` that is safe on sockets with read timeouts.
///
/// With `at_boundary` true, EOF or a timeout *before the first byte* is
/// a clean event ([`FrameError::Closed`] / a timeout [`FrameError::Io`]
/// the caller can poll on). Once any byte of a frame has arrived the
/// frame has *started*: timeouts retry (bounded by
/// [`MAX_FRAME_STALLS`]) instead of abandoning a partially consumed
/// stream — which would desynchronise it — and EOF is a torn frame.
fn read_exact_or_closed<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), FrameError> {
    let mut filled = 0;
    let mut stalls = 0u32;
    let torn = || {
        FrameError::Io(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "peer closed mid-frame",
        ))
    };
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if at_boundary && filled == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(torn()),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if at_boundary && filled == 0 {
                    return Err(FrameError::Io(e));
                }
                stalls += 1;
                if stalls > MAX_FRAME_STALLS {
                    return Err(FrameError::Io(e));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// The operations a client can request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping,
    /// Ingest a batch of DML for one base table (position within the
    /// view). The batch is admitted or rejected *atomically*: on an
    /// `Overloaded` or `DeadlineExceeded` error no modification was
    /// applied, which is what makes retrying a submit safe.
    Submit {
        /// The shard epoch this client believes is current (0 = skip
        /// the fence check, the pre-replication behaviour). A sharded
        /// server rejects the batch with [`ErrorCode::StaleEpoch`]
        /// *before any side effect* when a target shard's epoch has
        /// advanced past this — fencing writes routed to a deposed
        /// leader.
        epoch: u64,
        /// Base-table position within the view.
        table: u32,
        /// The modifications, applied in order.
        mods: Vec<Modification>,
    },
    /// Read a view.
    Read {
        /// Registry view id (0 on a single-view server).
        view: u32,
        /// Fresh (flush-then-read, ≤ C) or stale (free).
        fresh: bool,
        /// Return the materialized rows, not just the checksum. Row
        /// payloads dominate read latency for large views; loadgen
        /// leaves this off.
        want_rows: bool,
    },
    /// Fetch a [`NetMetrics`] snapshot.
    Metrics {
        /// Also return the per-shard breakdown rows (shards > 1 adds a
        /// row per shard slot; the aggregate fields are always present).
        per_shard: bool,
        /// Also return the per-view breakdown rows (registry serving).
        per_view: bool,
    },
    /// Force a full flush without reading rows (a fresh read minus the
    /// payload).
    Flush,
    /// Subscribe-by-polling to a shard leader's WAL tail: return the
    /// records from `from_record` onward (bounded by the frame cap) as
    /// raw checksummed WAL frames. Idempotent and resumable — after a
    /// torn tail or dropped connection the follower re-requests from
    /// its last checksum-valid applied position.
    ReplicaSubscribe {
        /// Shard slot whose WAL tail to read.
        shard: u32,
        /// First record index wanted (0-based count of records already
        /// applied by the follower).
        from_record: u64,
    },
    /// Open a live push subscription on a registry view: the server
    /// answers [`Response::SubscribeOk`], then pushes a
    /// [`Response::ViewDelta`] for every flush boundary the view
    /// crosses, in seq order with no gap and no duplicate. Idempotent
    /// and resumable: after a dropped connection the client
    /// re-subscribes from its last folded seq. A `from_seq` the server
    /// no longer holds deltas for is answered with a snapshot resync
    /// instead of an error.
    Subscribe {
        /// Registry view id.
        view: u32,
        /// First delta seq wanted (last folded seq + 1);
        /// `u64::MAX` = start from the current snapshot.
        from_seq: u64,
    },
    /// Close a push subscription on a view. The server stops pushing
    /// deltas for it; already-buffered frames may still arrive.
    Unsubscribe {
        /// Registry view id.
        view: u32,
    },
}

impl Request {
    /// Whether retrying this request can double-apply work. Reads,
    /// pings, metrics and flushes are idempotent; a submit is only safe
    /// to retry when the server provably rejected it before ingesting
    /// (the client retries submits on `Overloaded` but not on transport
    /// errors mid-reply).
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, Request::Submit { .. })
    }
}

/// A request plus the client's remaining deadline budget.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestFrame {
    /// Milliseconds of deadline budget remaining at send time
    /// (0 = no deadline).
    pub deadline_ms: u32,
    /// The operation.
    pub request: Request,
}

/// Encodes a request payload (framing is [`write_frame`]'s job).
pub fn encode_request(f: &RequestFrame) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u32_le(f.deadline_ms);
    match &f.request {
        Request::Ping => buf.put_u8(0),
        Request::Submit { epoch, table, mods } => {
            buf.put_u8(1);
            buf.put_u64_le(*epoch);
            buf.put_u32_le(*table);
            buf.put_u32_le(mods.len() as u32);
            for m in mods {
                put_modification(&mut buf, m);
            }
        }
        Request::Read {
            view,
            fresh,
            want_rows,
        } => {
            buf.put_u8(2);
            buf.put_u32_le(*view);
            buf.put_u8(u8::from(*fresh));
            buf.put_u8(u8::from(*want_rows));
        }
        Request::Metrics {
            per_shard,
            per_view,
        } => {
            buf.put_u8(3);
            buf.put_u8(u8::from(*per_shard));
            buf.put_u8(u8::from(*per_view));
        }
        Request::Flush => buf.put_u8(4),
        Request::ReplicaSubscribe { shard, from_record } => {
            buf.put_u8(5);
            buf.put_u32_le(*shard);
            buf.put_u64_le(*from_record);
        }
        Request::Subscribe { view, from_seq } => {
            buf.put_u8(6);
            buf.put_u32_le(*view);
            buf.put_u64_le(*from_seq);
        }
        Request::Unsubscribe { view } => {
            buf.put_u8(7);
            buf.put_u32_le(*view);
        }
    }
    buf.freeze().to_vec()
}

/// Builds the [`EngineError::Corrupt`] for a payload decode failure at
/// the buffer's current cursor.
fn corrupt(context: &str, what: &str, buf: &Bytes) -> EngineError {
    EngineError::Corrupt {
        context: context.to_string(),
        offset: buf.consumed() as u64,
        message: what.to_string(),
    }
}

/// Decodes a request payload. Every failure is a typed
/// [`EngineError::Corrupt`] naming the offset; never panics.
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, EngineError> {
    let ctx = "request";
    let mut buf = Bytes::from(payload);
    if buf.remaining() < 5 {
        return Err(corrupt(ctx, "header", &buf));
    }
    let deadline_ms = buf.get_u32_le();
    let request = match buf.get_u8() {
        0 => Request::Ping,
        1 => {
            if buf.remaining() < 16 {
                return Err(corrupt(ctx, "submit header", &buf));
            }
            let epoch = buf.get_u64_le();
            let table = buf.get_u32_le();
            let count = buf.get_u32_le() as usize;
            // Each modification takes at least 6 bytes (tag + arity +
            // one value tag); an impossible count is rejected before
            // allocating.
            if count > buf.remaining() {
                return Err(corrupt(ctx, &format!("submit count {count}"), &buf));
            }
            let mut mods = Vec::with_capacity(count);
            for _ in 0..count {
                mods.push(get_modification(&mut buf, ctx)?);
            }
            Request::Submit { epoch, table, mods }
        }
        2 => {
            if buf.remaining() < 6 {
                return Err(corrupt(ctx, "read flags", &buf));
            }
            Request::Read {
                view: buf.get_u32_le(),
                fresh: buf.get_u8() != 0,
                want_rows: buf.get_u8() != 0,
            }
        }
        3 => {
            if buf.remaining() < 2 {
                return Err(corrupt(ctx, "metrics flags", &buf));
            }
            Request::Metrics {
                per_shard: buf.get_u8() != 0,
                per_view: buf.get_u8() != 0,
            }
        }
        4 => Request::Flush,
        5 => {
            if buf.remaining() < 12 {
                return Err(corrupt(ctx, "replica-subscribe", &buf));
            }
            Request::ReplicaSubscribe {
                shard: buf.get_u32_le(),
                from_record: buf.get_u64_le(),
            }
        }
        6 => {
            if buf.remaining() < 12 {
                return Err(corrupt(ctx, "subscribe", &buf));
            }
            Request::Subscribe {
                view: buf.get_u32_le(),
                from_seq: buf.get_u64_le(),
            }
        }
        7 => {
            if buf.remaining() < 4 {
                return Err(corrupt(ctx, "unsubscribe", &buf));
            }
            Request::Unsubscribe {
                view: buf.get_u32_le(),
            }
        }
        other => return Err(corrupt(ctx, &format!("request kind {other}"), &buf)),
    };
    if !buf.is_empty() {
        return Err(corrupt(ctx, "trailing bytes", &buf));
    }
    Ok(RequestFrame {
        deadline_ms,
        request,
    })
}

/// Typed request-level failure taxonomy, carried in
/// [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control rejected the request *before any side effect*
    /// (queue past its high-water mark, or the connection cap). Always
    /// safe to retry — including submits.
    Overloaded,
    /// The request's deadline expired before the server started (or
    /// finished) work it could refuse.
    DeadlineExceeded,
    /// The request decoded but is semantically invalid (unknown table,
    /// malformed batch).
    BadRequest,
    /// The maintenance scheduler is gone (poisoned or shut down);
    /// retrying against this server will not help.
    Unavailable,
    /// An engine error while executing the request.
    Internal,
    /// The shard owning the submitted key is down (sharded serving
    /// only). Rejected *before any side effect* — the router checks
    /// every target shard's liveness before enqueueing anything — so a
    /// submit carrying this code is safe to retry (it will succeed once
    /// the shard's WAL recovery rejoins it).
    ShardUnavailable,
    /// The submit carried a shard epoch older than the target shard's
    /// current epoch — the client is talking through a view of the
    /// cluster from before a failover. Rejected *before any side
    /// effect* by the pre-admission fence, so retrying (after
    /// refreshing the epoch from `Metrics`) is safe: the deposed
    /// leader's writes can never double-apply.
    StaleEpoch,
}

impl ErrorCode {
    /// Whether a client may retry a *submit* carrying this code without
    /// risking double-apply. Idempotent requests retry on more.
    pub fn is_retry_safe(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::ShardUnavailable | ErrorCode::StaleEpoch
        )
    }

    fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 0,
            ErrorCode::DeadlineExceeded => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Unavailable => 3,
            ErrorCode::Internal => 4,
            ErrorCode::ShardUnavailable => 5,
            ErrorCode::StaleEpoch => 6,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        match v {
            0 => Some(ErrorCode::Overloaded),
            1 => Some(ErrorCode::DeadlineExceeded),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::Unavailable),
            4 => Some(ErrorCode::Internal),
            5 => Some(ErrorCode::ShardUnavailable),
            6 => Some(ErrorCode::StaleEpoch),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
            ErrorCode::ShardUnavailable => "shard unavailable",
            ErrorCode::StaleEpoch => "stale epoch",
        })
    }
}

/// A view read as it crosses the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct WireReadResult {
    /// Whether this was a fresh (flushed) read.
    pub fresh: bool,
    /// Pending modifications not reflected in the result (0 for fresh).
    pub lag: u64,
    /// Model cost of the flush performed to serve this read.
    pub flush_cost: f64,
    /// Whether the read broke the ≤ C guarantee.
    pub violated: bool,
    /// Sharded serving only: true when at least one shard could not
    /// contribute (dead, or no published snapshot yet), so the result
    /// covers only part of the key space. Always false unsharded.
    pub degraded: bool,
    /// Order-independent content checksum of the materialized view —
    /// always present, so clients can verify convergence without
    /// shipping rows.
    pub checksum: u64,
    /// Materialized rows, when the request asked for them.
    pub rows: Option<Vec<WRow>>,
}

/// Counters surfaced by the `Metrics` frame: the runtime's own
/// [`MetricsSnapshot`](aivm_serve::MetricsSnapshot) essentials plus the
/// network layer's admission/connection counters, so overload is
/// observable from the client side.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetMetrics {
    /// DML events ingested into the runtime.
    pub events_ingested: u64,
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Non-zero flush actions executed.
    pub flush_count: u64,
    /// Total model cost charged across all flushes.
    pub total_flush_cost: f64,
    /// Fresh reads served by the runtime.
    pub fresh_reads: u64,
    /// Stale reads served by the runtime's scheduler.
    pub stale_reads: u64,
    /// Stale reads served wait-free from a published view snapshot,
    /// never touching the scheduler.
    pub snapshot_reads: u64,
    /// Validity-invariant violations (must stay 0).
    pub constraint_violations: u64,
    /// Policy demotions (≤ 1; demotion is permanent).
    pub policy_demotions: u64,
    /// Cost-model recalibrations.
    pub recalibrations: u64,
    /// True once the runtime degraded to the naive policy.
    pub degraded: bool,
    /// Ingest-queue depth at snapshot time.
    pub queue_depth: u64,
    /// High-water mark of the ingest queue.
    pub max_queue_depth: u64,
    /// Sheddable ingest messages dropped by the overloaded queue.
    pub shed_events: u64,
    /// Ingest messages the scheduler rejected.
    pub ingest_errors: u64,
    /// Records appended to the WAL (0 without one).
    pub wal_records: u64,
    /// WAL records appended but not yet fsynced.
    pub wal_fsync_lag: u64,
    /// The WAL writer's fsync interval (0 without a WAL).
    pub wal_sync_every: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections accepted over the server's lifetime.
    pub connections_total: u64,
    /// Connections rejected at the handshake (connection cap).
    pub connections_rejected: u64,
    /// Frames served over the server's lifetime.
    pub requests: u64,
    /// DML modifications accepted over the wire.
    pub submitted_events: u64,
    /// Requests rejected with [`ErrorCode::Overloaded`].
    pub overload_rejections: u64,
    /// Requests rejected with [`ErrorCode::DeadlineExceeded`].
    pub deadline_rejections: u64,
    /// Shard slots configured (1 unsharded).
    pub shards: u64,
    /// Shard slots currently live.
    pub shards_live: u64,
    /// Worst per-shard snapshot staleness (pending modifications not
    /// reflected in that shard's published snapshot).
    pub staleness_max: u64,
    /// Total refresh budget currently in force (sum of per-shard
    /// budgets `C_i` — equals the global `C` modulo rebalance float).
    pub budget: f64,
    /// Cross-shard budget rebalances applied (sum of per-shard pushes).
    pub budget_rebalances: u64,
    /// Leader failovers executed (follower promotions) over the
    /// cluster's lifetime.
    pub failovers: u64,
    /// Sum of per-shard epochs — a cheap monotonic cluster-config
    /// version: it advances exactly when any shard fails over.
    pub cluster_epoch: u64,
    /// Worst per-shard replication lag (leader WAL records not yet
    /// applied by that shard's follower; 0 without replicas).
    pub replica_lag_max: u64,
    /// True when the shard count was auto-picked from the host's
    /// available parallelism rather than set explicitly — `shards`
    /// always carries the *resolved* width either way.
    pub shards_auto: bool,
    /// Registered views (1 on a single-view server).
    pub views: u64,
    /// Live push subscribers across all views.
    pub subscribers: u64,
    /// Delta batches published across all views.
    pub deltas_pushed: u64,
    /// Worst observed subscriber lag (delta seqs behind head).
    pub sub_lag_max: u64,
    /// Join keys currently classified heavy by the engine's
    /// heavy-light partitioner (0 when partitioning is off).
    pub heavy_keys: u64,
    /// Heavy-light reclassification events (promotions + demotions).
    pub heavy_reclassifications: u64,
    /// Delta rows routed through materialized heavy-key partials.
    pub heavy_hits: u64,
    /// Delta rows routed through the compensated light-key index join.
    pub light_hits: u64,
    /// The scheduler's poisoning error, if any (first failing shard).
    pub last_error: Option<String>,
    /// Per-shard breakdown, present when the request set `per_shard`.
    pub per_shard: Option<Vec<ShardMetricsRow>>,
    /// Per-view breakdown, present when the request set `per_view`.
    pub per_view: Option<Vec<ViewMetricsRow>>,
}

/// One shard's slice of the metrics breakdown (sharded serving; the
/// aggregate fields in [`NetMetrics`] are sums/maxes over these).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardMetricsRow {
    /// Shard slot index.
    pub shard: u32,
    /// Whether the slot currently has a live runtime.
    pub live: bool,
    /// DML events ingested into this shard's runtime.
    pub events_ingested: u64,
    /// This shard's ingest-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Non-zero flush actions executed by this shard.
    pub flush_count: u64,
    /// Total model cost charged by this shard's flushes.
    pub total_flush_cost: f64,
    /// This shard's refresh budget `C_i` (the coordinator moves it).
    pub budget: f64,
    /// Snapshot staleness: pending modifications not reflected in this
    /// shard's published snapshot.
    pub staleness: u64,
    /// This shard's fencing epoch (starts at 1, bumped by every
    /// promotion; a submit carrying an older epoch is rejected).
    pub epoch: u64,
    /// Leader WAL records not yet applied by this shard's follower
    /// (0 when no replica is attached).
    pub replica_lag: u64,
    /// Health state: 0 = dead slot, 1 = live leader without a
    /// follower, 2 = live leader with a replica tailing its WAL.
    pub health: u8,
}

/// One view's slice of the metrics breakdown (registry serving; the
/// view/subscriber aggregates in [`NetMetrics`] are sums/maxes over
/// these).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ViewMetricsRow {
    /// Registry view id.
    pub view: u32,
    /// Sharing-group index (views in one group propagate deltas once).
    pub group: u32,
    /// Flushes this view has closed (its delta seq head).
    pub flushes: u64,
    /// Total pending modifications not yet reflected in the view (the
    /// staleness vector's sum).
    pub pending: u64,
    /// Per-view freshness violations (must stay 0).
    pub violations: u64,
    /// Delta batches published for this view.
    pub deltas_pushed: u64,
    /// Live push subscribers on this view.
    pub subscribers: u64,
    /// Largest observed subscriber lag on this view (seqs behind head).
    pub sub_lag_max: u64,
}

/// The server's answer to one request.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// The whole submit batch was ingested.
    SubmitOk {
        /// Modifications applied (= the batch size).
        accepted: u64,
    },
    /// A served read.
    ReadOk(WireReadResult),
    /// A metrics snapshot.
    MetricsOk(Box<NetMetrics>),
    /// A forced flush completed.
    FlushOk {
        /// Model cost of the flush.
        flush_cost: f64,
        /// Whether it broke the ≤ C guarantee.
        violated: bool,
    },
    /// A typed failure; the request had no effect unless the code says
    /// otherwise (see [`ErrorCode`]).
    Error {
        /// The taxonomy bucket.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A slice of a shard leader's WAL tail, answering
    /// [`Request::ReplicaSubscribe`]. `bytes` holds whole checksummed
    /// WAL record frames (no WAL file header) — exactly the bytes the
    /// leader appended, so the follower re-validates each record's
    /// checksum before applying. An empty `bytes` means the follower is
    /// caught up.
    WalSegment {
        /// The shard's current fencing epoch, piggybacked so the
        /// follower tracks leadership changes without extra requests.
        epoch: u64,
        /// Record index of the first record in `bytes`.
        from_record: u64,
        /// Total records in the leader's WAL — `leader_records -
        /// (from_record + count)` is the follower's remaining lag.
        leader_records: u64,
        /// Raw WAL record frames (`len u32 | fxhash64 u64 | payload`).
        bytes: Vec<u8>,
    },
    /// A push subscription was accepted, answering
    /// [`Request::Subscribe`] — and also sent mid-stream when a slow
    /// subscriber fell off the server's delta ring and must restart
    /// from a snapshot. With `resync` true, `rows` is the full
    /// materialized view at `seq` (replacing any folded state); with
    /// `resync` false, `rows` is empty and [`Response::ViewDelta`]
    /// frames will flow starting at the requested seq.
    SubscribeOk {
        /// The subscribed view.
        view: u32,
        /// The snapshot's seq (resync) or the seq *before* the first
        /// delta that will be pushed (resume-ack).
        seq: u64,
        /// Whether `rows` replaces the subscriber's folded state.
        resync: bool,
        /// Content checksum of the view at `seq`.
        checksum: u64,
        /// The snapshot rows (empty on a resume-ack).
        rows: Vec<WRow>,
    },
    /// One pushed delta batch: the signed row difference taking the
    /// subscriber's folded state from `seq - 1` to `seq`. Deltas for
    /// one view arrive in seq order with no gap and no duplicate.
    ViewDelta {
        /// The subscribed view.
        view: u32,
        /// The seq this delta produces.
        seq: u64,
        /// Content checksum of the view at `seq` (fold verification).
        checksum: u64,
        /// The view's total pending backlog at publication.
        staleness: u64,
        /// Signed difference rows (weight > 0 added, < 0 removed).
        rows: Vec<WRow>,
    },
}

/// Encodes a response payload.
pub fn encode_response(r: &Response) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    match r {
        Response::Pong => buf.put_u8(0),
        Response::SubmitOk { accepted } => {
            buf.put_u8(1);
            buf.put_u64_le(*accepted);
        }
        Response::ReadOk(rr) => {
            buf.put_u8(2);
            buf.put_u8(u8::from(rr.fresh));
            buf.put_u64_le(rr.lag);
            buf.put_f64_le(rr.flush_cost);
            buf.put_u8(u8::from(rr.violated));
            buf.put_u8(u8::from(rr.degraded));
            buf.put_u64_le(rr.checksum);
            match &rr.rows {
                None => buf.put_u8(0),
                Some(rows) => {
                    buf.put_u8(1);
                    buf.put_u32_le(rows.len() as u32);
                    for (row, w) in rows {
                        put_row(&mut buf, row);
                        buf.put_i64_le(*w);
                    }
                }
            }
        }
        Response::MetricsOk(m) => {
            buf.put_u8(3);
            buf.put_u64_le(m.events_ingested);
            buf.put_u64_le(m.ticks);
            buf.put_u64_le(m.flush_count);
            buf.put_f64_le(m.total_flush_cost);
            buf.put_u64_le(m.fresh_reads);
            buf.put_u64_le(m.stale_reads);
            buf.put_u64_le(m.snapshot_reads);
            buf.put_u64_le(m.constraint_violations);
            buf.put_u64_le(m.policy_demotions);
            buf.put_u64_le(m.recalibrations);
            buf.put_u8(u8::from(m.degraded));
            buf.put_u64_le(m.queue_depth);
            buf.put_u64_le(m.max_queue_depth);
            buf.put_u64_le(m.shed_events);
            buf.put_u64_le(m.ingest_errors);
            buf.put_u64_le(m.wal_records);
            buf.put_u64_le(m.wal_fsync_lag);
            buf.put_u64_le(m.wal_sync_every);
            buf.put_u64_le(m.connections_active);
            buf.put_u64_le(m.connections_total);
            buf.put_u64_le(m.connections_rejected);
            buf.put_u64_le(m.requests);
            buf.put_u64_le(m.submitted_events);
            buf.put_u64_le(m.overload_rejections);
            buf.put_u64_le(m.deadline_rejections);
            buf.put_u64_le(m.shards);
            buf.put_u64_le(m.shards_live);
            buf.put_u64_le(m.staleness_max);
            buf.put_f64_le(m.budget);
            buf.put_u64_le(m.budget_rebalances);
            buf.put_u64_le(m.failovers);
            buf.put_u64_le(m.cluster_epoch);
            buf.put_u64_le(m.replica_lag_max);
            buf.put_u8(u8::from(m.shards_auto));
            buf.put_u64_le(m.views);
            buf.put_u64_le(m.subscribers);
            buf.put_u64_le(m.deltas_pushed);
            buf.put_u64_le(m.sub_lag_max);
            buf.put_u64_le(m.heavy_keys);
            buf.put_u64_le(m.heavy_reclassifications);
            buf.put_u64_le(m.heavy_hits);
            buf.put_u64_le(m.light_hits);
            match &m.last_error {
                None => buf.put_u8(0),
                Some(e) => {
                    buf.put_u8(1);
                    put_str(&mut buf, e);
                }
            }
            match &m.per_shard {
                None => buf.put_u8(0),
                Some(rows) => {
                    buf.put_u8(1);
                    buf.put_u32_le(rows.len() as u32);
                    for s in rows {
                        buf.put_u32_le(s.shard);
                        buf.put_u8(u8::from(s.live));
                        buf.put_u64_le(s.events_ingested);
                        buf.put_u64_le(s.queue_depth);
                        buf.put_u64_le(s.flush_count);
                        buf.put_f64_le(s.total_flush_cost);
                        buf.put_f64_le(s.budget);
                        buf.put_u64_le(s.staleness);
                        buf.put_u64_le(s.epoch);
                        buf.put_u64_le(s.replica_lag);
                        buf.put_u8(s.health);
                    }
                }
            }
            match &m.per_view {
                None => buf.put_u8(0),
                Some(rows) => {
                    buf.put_u8(1);
                    buf.put_u32_le(rows.len() as u32);
                    for v in rows {
                        buf.put_u32_le(v.view);
                        buf.put_u32_le(v.group);
                        buf.put_u64_le(v.flushes);
                        buf.put_u64_le(v.pending);
                        buf.put_u64_le(v.violations);
                        buf.put_u64_le(v.deltas_pushed);
                        buf.put_u64_le(v.subscribers);
                        buf.put_u64_le(v.sub_lag_max);
                    }
                }
            }
        }
        Response::FlushOk {
            flush_cost,
            violated,
        } => {
            buf.put_u8(4);
            buf.put_f64_le(*flush_cost);
            buf.put_u8(u8::from(*violated));
        }
        Response::Error { code, message } => {
            buf.put_u8(5);
            buf.put_u8(code.as_u8());
            put_str(&mut buf, message);
        }
        Response::WalSegment {
            epoch,
            from_record,
            leader_records,
            bytes,
        } => {
            buf.put_u8(6);
            buf.put_u64_le(*epoch);
            buf.put_u64_le(*from_record);
            buf.put_u64_le(*leader_records);
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
        Response::SubscribeOk {
            view,
            seq,
            resync,
            checksum,
            rows,
        } => {
            buf.put_u8(7);
            buf.put_u32_le(*view);
            buf.put_u64_le(*seq);
            buf.put_u8(u8::from(*resync));
            buf.put_u64_le(*checksum);
            put_wrows(&mut buf, rows);
        }
        Response::ViewDelta {
            view,
            seq,
            checksum,
            staleness,
            rows,
        } => {
            buf.put_u8(8);
            buf.put_u32_le(*view);
            buf.put_u64_le(*seq);
            buf.put_u64_le(*checksum);
            buf.put_u64_le(*staleness);
            put_wrows(&mut buf, rows);
        }
    }
    buf.freeze().to_vec()
}

/// Encodes a count-prefixed weighted-row list (the `ReadOk` row layout
/// without its presence flag).
fn put_wrows(buf: &mut BytesMut, rows: &[WRow]) {
    buf.put_u32_le(rows.len() as u32);
    for (row, w) in rows {
        put_row(buf, row);
        buf.put_i64_le(*w);
    }
}

/// Decodes a count-prefixed weighted-row list.
fn get_wrows(buf: &mut Bytes, ctx: &str) -> Result<Vec<WRow>, EngineError> {
    if buf.remaining() < 4 {
        return Err(corrupt(ctx, "row count", buf));
    }
    let count = buf.get_u32_le() as usize;
    if count > buf.remaining() {
        return Err(corrupt(ctx, &format!("row count {count}"), buf));
    }
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let row = get_row(buf, ctx)?;
        if buf.remaining() < 8 {
            return Err(corrupt(ctx, "row weight", buf));
        }
        rows.push((row, buf.get_i64_le()));
    }
    Ok(rows)
}

/// Decodes a response payload. Every failure is a typed
/// [`EngineError::Corrupt`]; never panics.
pub fn decode_response(payload: &[u8]) -> Result<Response, EngineError> {
    let ctx = "response";
    let mut buf = Bytes::from(payload);
    if buf.remaining() < 1 {
        return Err(corrupt(ctx, "kind", &buf));
    }
    let resp = match buf.get_u8() {
        0 => Response::Pong,
        1 => {
            if buf.remaining() < 8 {
                return Err(corrupt(ctx, "submit-ok", &buf));
            }
            Response::SubmitOk {
                accepted: buf.get_u64_le(),
            }
        }
        2 => {
            if buf.remaining() < 28 {
                return Err(corrupt(ctx, "read-ok header", &buf));
            }
            let fresh = buf.get_u8() != 0;
            let lag = buf.get_u64_le();
            let flush_cost = buf.get_f64_le();
            let violated = buf.get_u8() != 0;
            let degraded = buf.get_u8() != 0;
            let sum = buf.get_u64_le();
            let rows = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 4 {
                        return Err(corrupt(ctx, "row count", &buf));
                    }
                    let count = buf.get_u32_le() as usize;
                    if count > buf.remaining() {
                        return Err(corrupt(ctx, &format!("row count {count}"), &buf));
                    }
                    let mut rows = Vec::with_capacity(count);
                    for _ in 0..count {
                        let row = get_row(&mut buf, ctx)?;
                        if buf.remaining() < 8 {
                            return Err(corrupt(ctx, "row weight", &buf));
                        }
                        rows.push((row, buf.get_i64_le()));
                    }
                    Some(rows)
                }
                other => return Err(corrupt(ctx, &format!("rows flag {other}"), &buf)),
            };
            Response::ReadOk(WireReadResult {
                fresh,
                lag,
                flush_cost,
                violated,
                degraded,
                checksum: sum,
                rows,
            })
        }
        3 => {
            // All fixed-width fields (u64/f64 plus the degraded,
            // shards-auto and error flags), checked as one block
            // before the reads.
            const FIXED: usize = 40 * 8 + 3;
            if buf.remaining() < FIXED {
                return Err(corrupt(ctx, "metrics", &buf));
            }
            let mut m = NetMetrics {
                events_ingested: buf.get_u64_le(),
                ticks: buf.get_u64_le(),
                flush_count: buf.get_u64_le(),
                total_flush_cost: buf.get_f64_le(),
                fresh_reads: buf.get_u64_le(),
                stale_reads: buf.get_u64_le(),
                snapshot_reads: buf.get_u64_le(),
                constraint_violations: buf.get_u64_le(),
                policy_demotions: buf.get_u64_le(),
                recalibrations: buf.get_u64_le(),
                degraded: buf.get_u8() != 0,
                queue_depth: buf.get_u64_le(),
                max_queue_depth: buf.get_u64_le(),
                shed_events: buf.get_u64_le(),
                ingest_errors: buf.get_u64_le(),
                wal_records: buf.get_u64_le(),
                wal_fsync_lag: buf.get_u64_le(),
                wal_sync_every: buf.get_u64_le(),
                connections_active: buf.get_u64_le(),
                connections_total: buf.get_u64_le(),
                connections_rejected: buf.get_u64_le(),
                requests: buf.get_u64_le(),
                submitted_events: buf.get_u64_le(),
                overload_rejections: buf.get_u64_le(),
                deadline_rejections: buf.get_u64_le(),
                shards: buf.get_u64_le(),
                shards_live: buf.get_u64_le(),
                staleness_max: buf.get_u64_le(),
                budget: buf.get_f64_le(),
                budget_rebalances: buf.get_u64_le(),
                failovers: buf.get_u64_le(),
                cluster_epoch: buf.get_u64_le(),
                replica_lag_max: buf.get_u64_le(),
                shards_auto: buf.get_u8() != 0,
                views: buf.get_u64_le(),
                subscribers: buf.get_u64_le(),
                deltas_pushed: buf.get_u64_le(),
                sub_lag_max: buf.get_u64_le(),
                heavy_keys: buf.get_u64_le(),
                heavy_reclassifications: buf.get_u64_le(),
                heavy_hits: buf.get_u64_le(),
                light_hits: buf.get_u64_le(),
                last_error: None,
                per_shard: None,
                per_view: None,
            };
            if buf.remaining() < 1 {
                return Err(corrupt(ctx, "metrics error flag", &buf));
            }
            m.last_error = match buf.get_u8() {
                0 => None,
                1 => Some(get_str(&mut buf, ctx)?),
                other => return Err(corrupt(ctx, &format!("error flag {other}"), &buf)),
            };
            if buf.remaining() < 1 {
                return Err(corrupt(ctx, "metrics shard flag", &buf));
            }
            m.per_shard = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 4 {
                        return Err(corrupt(ctx, "shard row count", &buf));
                    }
                    let count = buf.get_u32_le() as usize;
                    // Each row is 70 fixed bytes; reject impossible
                    // counts before allocating.
                    const ROW: usize = 4 + 2 + 8 * 8;
                    if count * ROW > buf.remaining() {
                        return Err(corrupt(ctx, &format!("shard row count {count}"), &buf));
                    }
                    let mut rows = Vec::with_capacity(count);
                    for _ in 0..count {
                        rows.push(ShardMetricsRow {
                            shard: buf.get_u32_le(),
                            live: buf.get_u8() != 0,
                            events_ingested: buf.get_u64_le(),
                            queue_depth: buf.get_u64_le(),
                            flush_count: buf.get_u64_le(),
                            total_flush_cost: buf.get_f64_le(),
                            budget: buf.get_f64_le(),
                            staleness: buf.get_u64_le(),
                            epoch: buf.get_u64_le(),
                            replica_lag: buf.get_u64_le(),
                            health: buf.get_u8(),
                        });
                    }
                    Some(rows)
                }
                other => return Err(corrupt(ctx, &format!("shard flag {other}"), &buf)),
            };
            if buf.remaining() < 1 {
                return Err(corrupt(ctx, "metrics view flag", &buf));
            }
            m.per_view = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 4 {
                        return Err(corrupt(ctx, "view row count", &buf));
                    }
                    let count = buf.get_u32_le() as usize;
                    // Each row is 56 fixed bytes; reject impossible
                    // counts before allocating.
                    const ROW: usize = 4 + 4 + 6 * 8;
                    if count * ROW > buf.remaining() {
                        return Err(corrupt(ctx, &format!("view row count {count}"), &buf));
                    }
                    let mut rows = Vec::with_capacity(count);
                    for _ in 0..count {
                        rows.push(ViewMetricsRow {
                            view: buf.get_u32_le(),
                            group: buf.get_u32_le(),
                            flushes: buf.get_u64_le(),
                            pending: buf.get_u64_le(),
                            violations: buf.get_u64_le(),
                            deltas_pushed: buf.get_u64_le(),
                            subscribers: buf.get_u64_le(),
                            sub_lag_max: buf.get_u64_le(),
                        });
                    }
                    Some(rows)
                }
                other => return Err(corrupt(ctx, &format!("view flag {other}"), &buf)),
            };
            Response::MetricsOk(Box::new(m))
        }
        4 => {
            if buf.remaining() < 9 {
                return Err(corrupt(ctx, "flush-ok", &buf));
            }
            Response::FlushOk {
                flush_cost: buf.get_f64_le(),
                violated: buf.get_u8() != 0,
            }
        }
        5 => {
            if buf.remaining() < 1 {
                return Err(corrupt(ctx, "error code", &buf));
            }
            let raw = buf.get_u8();
            let code = ErrorCode::from_u8(raw)
                .ok_or_else(|| corrupt(ctx, &format!("error code {raw}"), &buf))?;
            Response::Error {
                code,
                message: get_str(&mut buf, ctx)?,
            }
        }
        6 => {
            if buf.remaining() < 28 {
                return Err(corrupt(ctx, "wal-segment header", &buf));
            }
            let epoch = buf.get_u64_le();
            let from_record = buf.get_u64_le();
            let leader_records = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            if len > buf.remaining() {
                return Err(corrupt(ctx, &format!("wal-segment length {len}"), &buf));
            }
            let bytes = buf.copy_to_bytes(len).to_vec();
            Response::WalSegment {
                epoch,
                from_record,
                leader_records,
                bytes,
            }
        }
        7 => {
            if buf.remaining() < 21 {
                return Err(corrupt(ctx, "subscribe-ok header", &buf));
            }
            let view = buf.get_u32_le();
            let seq = buf.get_u64_le();
            let resync = buf.get_u8() != 0;
            let checksum = buf.get_u64_le();
            Response::SubscribeOk {
                view,
                seq,
                resync,
                checksum,
                rows: get_wrows(&mut buf, ctx)?,
            }
        }
        8 => {
            if buf.remaining() < 28 {
                return Err(corrupt(ctx, "view-delta header", &buf));
            }
            let view = buf.get_u32_le();
            let seq = buf.get_u64_le();
            let checksum = buf.get_u64_le();
            let staleness = buf.get_u64_le();
            Response::ViewDelta {
                view,
                seq,
                checksum,
                staleness,
                rows: get_wrows(&mut buf, ctx)?,
            }
        }
        other => return Err(corrupt(ctx, &format!("response kind {other}"), &buf)),
    };
    if !buf.is_empty() {
        return Err(corrupt(ctx, "trailing bytes", &buf));
    }
    Ok(resp)
}

/// Sends one request frame.
pub fn send_request<W: Write>(w: &mut W, f: &RequestFrame) -> std::io::Result<()> {
    write_frame(w, &encode_request(f))
}

/// Receives one request frame.
pub fn recv_request<R: Read>(r: &mut R) -> Result<RequestFrame, FrameError> {
    decode_request(&read_frame(r)?).map_err(FrameError::Corrupt)
}

/// Sends one response frame.
pub fn send_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Receives one response frame.
pub fn recv_response<R: Read>(r: &mut R) -> Result<Response, FrameError> {
    decode_response(&read_frame(r)?).map_err(FrameError::Corrupt)
}

/// Appends one frame (header + payload) to an in-memory write buffer.
/// The event-loop server accumulates responses here and flushes to the
/// socket on write readiness, instead of calling blocking
/// [`write_frame`].
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// An incremental frame parser over a growable read buffer.
///
/// The blocking path ([`read_frame`]) owns the socket and can call
/// `read_exact`; an event-loop server cannot — it gets whatever bytes
/// `read` returns at readiness, which may be half a header, three
/// frames and a torn fourth, or one byte. `FrameBuffer` accumulates
/// those bytes and yields complete validated frames *in place*: the
/// payload [`Range`](std::ops::Range) returned by [`next_frame`]
/// borrows the buffer directly (resolve it with [`payload`]), so a
/// Submit batch is decoded zero-copy straight out of the connection's
/// read buffer.
///
/// [`next_frame`]: FrameBuffer::next_frame
/// [`payload`]: FrameBuffer::payload
///
/// The torn-vs-corrupt taxonomy of the blocking path is preserved:
/// * incomplete bytes → `Ok(None)` (wait for more); EOF while
///   [`mid_frame`](FrameBuffer::mid_frame) is true is the caller's torn
///   frame,
/// * EOF with an empty buffer is a clean [`FrameError::Closed`],
/// * oversized length or checksum mismatch → [`FrameError::Corrupt`]
///   (the stream cannot be resynchronised; drop the connection).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

/// Bytes requested from the socket per [`FrameBuffer::fill_from`] call.
const READ_CHUNK: usize = 64 * 1024;

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Unparsed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when buffered bytes form a partial frame (or handshake) —
    /// EOF now means the peer died mid-message, not a clean close.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// Discards already-consumed bytes so the buffer only holds the
    /// unparsed tail. Invalidates any outstanding payload range.
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Performs **one** `read` call into the buffer, first compacting
    /// away consumed bytes. Returns the byte count (`Ok(0)` = EOF);
    /// `WouldBlock` and friends surface as errors for the caller's
    /// readiness loop. Invalidates any outstanding payload range.
    pub fn fill_from<R: Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        self.compact();
        let len = self.buf.len();
        self.buf.resize(len + READ_CHUNK, 0);
        let result = r.read(&mut self.buf[len..]);
        self.buf.truncate(len + *result.as_ref().unwrap_or(&0));
        result
    }

    /// Appends raw bytes (test harnesses and in-memory transports).
    /// Invalidates any outstanding payload range.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes exactly `n` buffered bytes if available (the fixed-size
    /// handshake hello), without frame validation.
    pub fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.buffered() < n {
            return None;
        }
        let s = self.start;
        self.start += n;
        Some(&self.buf[s..self.start])
    }

    /// Tries to parse the next complete frame. `Ok(Some(range))` is the
    /// payload's position in the buffer — resolve with
    /// [`payload`](FrameBuffer::payload); the range stays valid until
    /// the next `fill_from`/`extend_from_slice`. `Ok(None)` means more
    /// bytes are needed. Length and checksum validation matches
    /// [`read_frame`] exactly.
    pub fn next_frame(&mut self) -> Result<Option<std::ops::Range<usize>>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < FRAME_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::corrupt(
                "frame",
                0,
                format!("payload length {len} exceeds cap {MAX_FRAME_LEN}"),
            ));
        }
        let sum = u64::from_le_bytes(avail[4..FRAME_HEADER_LEN].try_into().unwrap());
        if avail.len() < FRAME_HEADER_LEN + len {
            return Ok(None);
        }
        let payload_start = self.start + FRAME_HEADER_LEN;
        let range = payload_start..payload_start + len;
        if checksum(&self.buf[range.clone()]) != sum {
            return Err(FrameError::corrupt(
                "frame",
                FRAME_HEADER_LEN as u64,
                "payload checksum mismatch",
            ));
        }
        self.start = range.end;
        Ok(Some(range))
    }

    /// Resolves a range returned by [`next_frame`](FrameBuffer::next_frame).
    pub fn payload(&self, range: std::ops::Range<usize>) -> &[u8] {
        &self.buf[range]
    }
}

/// A bounds-checked cursor over a borrowed payload slice. The
/// zero-copy twin of the `Bytes`-based decoder: same offsets in the
/// same `Corrupt` errors, no allocation on the success path.
struct SliceCursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    fn new(data: &'a [u8]) -> SliceCursor<'a> {
        SliceCursor { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn corrupt(&self, context: &str, what: &str) -> EngineError {
        EngineError::Corrupt {
            context: context.to_string(),
            offset: self.pos as u64,
            message: what.to_string(),
        }
    }

    fn get<const N: usize>(&mut self, context: &str, what: &str) -> Result<[u8; N], EngineError> {
        if self.remaining() < N {
            return Err(self.corrupt(context, what));
        }
        let out = self.data[self.pos..self.pos + N].try_into().unwrap();
        self.pos += N;
        Ok(out)
    }

    fn get_u8(&mut self, context: &str, what: &str) -> Result<u8, EngineError> {
        Ok(self.get::<1>(context, what)?[0])
    }

    fn get_u32_le(&mut self, context: &str, what: &str) -> Result<u32, EngineError> {
        Ok(u32::from_le_bytes(self.get::<4>(context, what)?))
    }

    fn get_u64_le(&mut self, context: &str, what: &str) -> Result<u64, EngineError> {
        Ok(u64::from_le_bytes(self.get::<8>(context, what)?))
    }

    fn get_i64_le(&mut self, context: &str, what: &str) -> Result<i64, EngineError> {
        Ok(i64::from_le_bytes(self.get::<8>(context, what)?))
    }

    fn get_f64_le(&mut self, context: &str, what: &str) -> Result<f64, EngineError> {
        Ok(f64::from_le_bytes(self.get::<8>(context, what)?))
    }

    /// Borrows a length-prefixed UTF-8 string without copying.
    fn get_str(&mut self, context: &str) -> Result<&'a str, EngineError> {
        let len = self.get_u32_le(context, "string length")? as usize;
        if self.remaining() < len {
            return Err(self.corrupt(context, "string body"));
        }
        let bytes = &self.data[self.pos..self.pos + len];
        let s = std::str::from_utf8(bytes).map_err(|_| self.corrupt(context, "utf8"))?;
        self.pos += len;
        Ok(s)
    }

    /// Validates and skips one tagged value.
    fn skip_value(&mut self, context: &str) -> Result<(), EngineError> {
        match self.get_u8(context, "value tag")? {
            0 => Ok(()),
            1 => self.get_i64_le(context, "int").map(|_| ()),
            2 => self.get_f64_le(context, "float").map(|_| ()),
            3 => self.get_str(context).map(|_| ()),
            other => Err(self.corrupt(context, &format!("value tag {other}"))),
        }
    }

    /// Reads one tagged value, materializing it.
    fn get_value(&mut self, context: &str) -> Result<Value, EngineError> {
        match self.get_u8(context, "value tag")? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.get_i64_le(context, "int")?)),
            2 => Ok(Value::Float(self.get_f64_le(context, "float")?)),
            3 => Ok(Value::str(self.get_str(context)?)),
            other => Err(self.corrupt(context, &format!("value tag {other}"))),
        }
    }

    /// Validates and skips one arity-prefixed row.
    fn skip_row(&mut self, context: &str) -> Result<(), EngineError> {
        let arity = self.get_u32_le(context, "row arity")? as usize;
        if arity > self.remaining() {
            return Err(self.corrupt(context, &format!("row arity {arity}")));
        }
        for _ in 0..arity {
            self.skip_value(context)?;
        }
        Ok(())
    }

    /// Reads one arity-prefixed row, materializing it.
    fn get_row(&mut self, context: &str) -> Result<Row, EngineError> {
        let arity = self.get_u32_le(context, "row arity")? as usize;
        if arity > self.remaining() {
            return Err(self.corrupt(context, &format!("row arity {arity}")));
        }
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(self.get_value(context)?);
        }
        Ok(Row::new(vals))
    }

    /// Validates and skips one tagged modification.
    fn skip_modification(&mut self, context: &str) -> Result<(), EngineError> {
        match self.get_u8(context, "modification tag")? {
            0 | 1 => self.skip_row(context),
            2 => {
                self.skip_row(context)?;
                self.skip_row(context)
            }
            other => Err(self.corrupt(context, &format!("modification tag {other}"))),
        }
    }

    /// Reads one tagged modification, materializing it.
    fn get_modification(&mut self, context: &str) -> Result<Modification, EngineError> {
        match self.get_u8(context, "modification tag")? {
            0 => Ok(Modification::Insert(self.get_row(context)?)),
            1 => Ok(Modification::Delete(self.get_row(context)?)),
            2 => Ok(Modification::Update {
                old: self.get_row(context)?,
                new: self.get_row(context)?,
            }),
            other => Err(self.corrupt(context, &format!("modification tag {other}"))),
        }
    }
}

/// A Submit batch borrowing its modification bytes from the frame
/// payload. Produced fully validated by [`decode_request_ref`]: the
/// tag/arity/UTF-8 structure of every modification was checked during
/// the skip-walk, so [`decode_mods_into`](SubmitRef::decode_mods_into)
/// only materializes.
#[derive(Clone, Copy, Debug)]
pub struct SubmitRef<'a> {
    /// The client's view of the target shard's fencing epoch (0 =
    /// skip the check).
    pub epoch: u64,
    /// Base-table position within the view.
    pub table: u32,
    /// Number of modifications in [`mods`](SubmitRef::mods).
    pub count: u32,
    mods: &'a [u8],
}

impl<'a> SubmitRef<'a> {
    /// The raw encoded modification bytes (structurally validated).
    pub fn mods(&self) -> &'a [u8] {
        self.mods
    }

    /// Materializes the batch into `out` (appending). The engine's
    /// `Modification` holds `Arc`ed rows, so this is where the payload's
    /// only per-row allocations happen — at ingest, not at decode.
    pub fn decode_mods_into(&self, out: &mut Vec<Modification>) -> Result<(), EngineError> {
        let ctx = "request";
        let mut cur = SliceCursor::new(self.mods);
        out.reserve(self.count as usize);
        for _ in 0..self.count {
            out.push(cur.get_modification(ctx)?);
        }
        Ok(())
    }
}

/// The zero-copy twin of [`Request`]: Submit payload bytes stay
/// borrowed from the read buffer.
#[derive(Clone, Copy, Debug)]
pub enum RequestRef<'a> {
    /// Liveness probe.
    Ping,
    /// Ingest a batch of DML (payload borrowed, pre-validated).
    Submit(SubmitRef<'a>),
    /// Read a view.
    Read {
        /// Registry view id (0 on a single-view server).
        view: u32,
        /// Fresh (flush-then-read, ≤ C) or stale (free).
        fresh: bool,
        /// Return materialized rows, not just the checksum.
        want_rows: bool,
    },
    /// Fetch a metrics snapshot.
    Metrics {
        /// Also return the per-shard breakdown rows.
        per_shard: bool,
        /// Also return the per-view breakdown rows.
        per_view: bool,
    },
    /// Force a full flush.
    Flush,
    /// Poll a shard leader's WAL tail (replication).
    ReplicaSubscribe {
        /// Shard slot whose WAL tail to read.
        shard: u32,
        /// First record index wanted.
        from_record: u64,
    },
    /// Open a live push subscription on a registry view.
    Subscribe {
        /// Registry view id.
        view: u32,
        /// First delta seq wanted; `u64::MAX` = from the current
        /// snapshot.
        from_seq: u64,
    },
    /// Close a push subscription on a view.
    Unsubscribe {
        /// Registry view id.
        view: u32,
    },
}

/// A borrowed request plus its deadline budget — what
/// [`decode_request_ref`] yields straight out of a [`FrameBuffer`].
#[derive(Clone, Copy, Debug)]
pub struct RequestRefFrame<'a> {
    /// Milliseconds of deadline budget remaining at send time
    /// (0 = no deadline).
    pub deadline_ms: u32,
    /// The operation.
    pub request: RequestRef<'a>,
}

impl RequestRefFrame<'_> {
    /// Materializes into the owned [`RequestFrame`]. Cannot fail in
    /// practice — the payload was validated by [`decode_request_ref`] —
    /// but decoding is fallible by type.
    pub fn to_owned_frame(&self) -> Result<RequestFrame, EngineError> {
        let request = match self.request {
            RequestRef::Ping => Request::Ping,
            RequestRef::Submit(s) => {
                let mut mods = Vec::new();
                s.decode_mods_into(&mut mods)?;
                Request::Submit {
                    epoch: s.epoch,
                    table: s.table,
                    mods,
                }
            }
            RequestRef::Read {
                view,
                fresh,
                want_rows,
            } => Request::Read {
                view,
                fresh,
                want_rows,
            },
            RequestRef::Metrics {
                per_shard,
                per_view,
            } => Request::Metrics {
                per_shard,
                per_view,
            },
            RequestRef::Flush => Request::Flush,
            RequestRef::ReplicaSubscribe { shard, from_record } => {
                Request::ReplicaSubscribe { shard, from_record }
            }
            RequestRef::Subscribe { view, from_seq } => Request::Subscribe { view, from_seq },
            RequestRef::Unsubscribe { view } => Request::Unsubscribe { view },
        };
        Ok(RequestFrame {
            deadline_ms: self.deadline_ms,
            request,
        })
    }
}

/// Decodes a request payload **without copying or allocating**: the
/// Submit body stays a borrowed, structurally validated byte slice
/// inside the returned [`RequestRefFrame`]. Validation is as strict as
/// [`decode_request`] — same taxonomy, same offsets — so a frame this
/// function accepts is exactly a frame the owned decoder accepts.
pub fn decode_request_ref(payload: &[u8]) -> Result<RequestRefFrame<'_>, EngineError> {
    let ctx = "request";
    let mut cur = SliceCursor::new(payload);
    if cur.remaining() < 5 {
        return Err(cur.corrupt(ctx, "header"));
    }
    let deadline_ms = cur.get_u32_le(ctx, "header")?;
    let request = match cur.get_u8(ctx, "header")? {
        0 => RequestRef::Ping,
        1 => {
            if cur.remaining() < 16 {
                return Err(cur.corrupt(ctx, "submit header"));
            }
            let epoch = cur.get_u64_le(ctx, "submit header")?;
            let table = cur.get_u32_le(ctx, "submit header")?;
            let count = cur.get_u32_le(ctx, "submit header")?;
            if count as usize > cur.remaining() {
                return Err(cur.corrupt(ctx, &format!("submit count {count}")));
            }
            let body_start = cur.pos;
            for _ in 0..count {
                cur.skip_modification(ctx)?;
            }
            RequestRef::Submit(SubmitRef {
                epoch,
                table,
                count,
                mods: &payload[body_start..cur.pos],
            })
        }
        2 => {
            if cur.remaining() < 6 {
                return Err(cur.corrupt(ctx, "read flags"));
            }
            RequestRef::Read {
                view: cur.get_u32_le(ctx, "read flags")?,
                fresh: cur.get_u8(ctx, "read flags")? != 0,
                want_rows: cur.get_u8(ctx, "read flags")? != 0,
            }
        }
        3 => {
            if cur.remaining() < 2 {
                return Err(cur.corrupt(ctx, "metrics flags"));
            }
            RequestRef::Metrics {
                per_shard: cur.get_u8(ctx, "metrics flags")? != 0,
                per_view: cur.get_u8(ctx, "metrics flags")? != 0,
            }
        }
        4 => RequestRef::Flush,
        5 => {
            if cur.remaining() < 12 {
                return Err(cur.corrupt(ctx, "replica-subscribe"));
            }
            RequestRef::ReplicaSubscribe {
                shard: cur.get_u32_le(ctx, "replica-subscribe")?,
                from_record: cur.get_u64_le(ctx, "replica-subscribe")?,
            }
        }
        6 => {
            if cur.remaining() < 12 {
                return Err(cur.corrupt(ctx, "subscribe"));
            }
            RequestRef::Subscribe {
                view: cur.get_u32_le(ctx, "subscribe")?,
                from_seq: cur.get_u64_le(ctx, "subscribe")?,
            }
        }
        7 => {
            if cur.remaining() < 4 {
                return Err(cur.corrupt(ctx, "unsubscribe"));
            }
            RequestRef::Unsubscribe {
                view: cur.get_u32_le(ctx, "unsubscribe")?,
            }
        }
        other => return Err(cur.corrupt(ctx, &format!("request kind {other}"))),
    };
    if cur.remaining() != 0 {
        return Err(cur.corrupt(ctx, "trailing bytes"));
    }
    Ok(RequestRefFrame {
        deadline_ms,
        request,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_engine::{Row, Value};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::io::Cursor;

    fn arb_value(rng: &mut SmallRng) -> Value {
        match rng.gen_range(0..4u32) {
            0 => Value::Null,
            1 => Value::Int(rng.gen_range(i64::MIN..i64::MAX)),
            2 => Value::Float(rng.gen_range(-1e9..1e9)),
            _ => {
                let len = rng.gen_range(0..20usize);
                Value::str(
                    (0..len)
                        .map(|_| char::from(rng.gen_range(32u8..127)))
                        .collect::<String>(),
                )
            }
        }
    }

    fn arb_row(rng: &mut SmallRng) -> Row {
        let arity = rng.gen_range(1..6usize);
        Row::new((0..arity).map(|_| arb_value(rng)).collect())
    }

    fn arb_modification(rng: &mut SmallRng) -> Modification {
        match rng.gen_range(0..3u32) {
            0 => Modification::Insert(arb_row(rng)),
            1 => Modification::Delete(arb_row(rng)),
            _ => Modification::Update {
                old: arb_row(rng),
                new: arb_row(rng),
            },
        }
    }

    fn arb_request(rng: &mut SmallRng) -> RequestFrame {
        let request = match rng.gen_range(0..8u32) {
            0 => Request::Ping,
            1 => Request::Submit {
                epoch: rng.gen_range(0..1000u64),
                table: rng.gen_range(0..8u32),
                mods: (0..rng.gen_range(0..10usize))
                    .map(|_| arb_modification(rng))
                    .collect(),
            },
            2 => Request::Read {
                view: rng.gen_range(0..128u32),
                fresh: rng.gen_bool(0.5),
                want_rows: rng.gen_bool(0.5),
            },
            3 => Request::Metrics {
                per_shard: rng.gen_bool(0.5),
                per_view: rng.gen_bool(0.5),
            },
            4 => Request::ReplicaSubscribe {
                shard: rng.gen_range(0..8u32),
                from_record: rng.gen_range(0..u64::MAX),
            },
            5 => Request::Subscribe {
                view: rng.gen_range(0..128u32),
                from_seq: if rng.gen_bool(0.2) {
                    u64::MAX
                } else {
                    rng.gen_range(0..100_000u64)
                },
            },
            6 => Request::Unsubscribe {
                view: rng.gen_range(0..128u32),
            },
            _ => Request::Flush,
        };
        RequestFrame {
            deadline_ms: rng.gen_range(0..100_000u32),
            request,
        }
    }

    fn arb_metrics(rng: &mut SmallRng) -> NetMetrics {
        NetMetrics {
            events_ingested: rng.gen_range(0..u64::MAX),
            ticks: rng.gen_range(0..u64::MAX),
            flush_count: rng.gen_range(0..u64::MAX),
            total_flush_cost: rng.gen_range(0.0..1e12),
            fresh_reads: rng.gen_range(0..u64::MAX),
            stale_reads: rng.gen_range(0..u64::MAX),
            snapshot_reads: rng.gen_range(0..u64::MAX),
            constraint_violations: rng.gen_range(0..u64::MAX),
            policy_demotions: rng.gen_range(0..2u64),
            recalibrations: rng.gen_range(0..9u64),
            degraded: rng.gen_bool(0.5),
            queue_depth: rng.gen_range(0..u64::MAX),
            max_queue_depth: rng.gen_range(0..u64::MAX),
            shed_events: rng.gen_range(0..u64::MAX),
            ingest_errors: rng.gen_range(0..u64::MAX),
            wal_records: rng.gen_range(0..u64::MAX),
            wal_fsync_lag: rng.gen_range(0..u64::MAX),
            wal_sync_every: rng.gen_range(0..u64::MAX),
            connections_active: rng.gen_range(0..u64::MAX),
            connections_total: rng.gen_range(0..u64::MAX),
            connections_rejected: rng.gen_range(0..u64::MAX),
            requests: rng.gen_range(0..u64::MAX),
            submitted_events: rng.gen_range(0..u64::MAX),
            overload_rejections: rng.gen_range(0..u64::MAX),
            deadline_rejections: rng.gen_range(0..u64::MAX),
            shards: rng.gen_range(1..9u64),
            shards_live: rng.gen_range(0..9u64),
            staleness_max: rng.gen_range(0..u64::MAX),
            budget: rng.gen_range(0.0..1e6),
            budget_rebalances: rng.gen_range(0..u64::MAX),
            failovers: rng.gen_range(0..10u64),
            cluster_epoch: rng.gen_range(1..100u64),
            replica_lag_max: rng.gen_range(0..100_000u64),
            shards_auto: rng.gen_bool(0.5),
            views: rng.gen_range(1..200u64),
            subscribers: rng.gen_range(0..1000u64),
            deltas_pushed: rng.gen_range(0..u64::MAX),
            sub_lag_max: rng.gen_range(0..10_000u64),
            heavy_keys: rng.gen_range(0..1000u64),
            heavy_reclassifications: rng.gen_range(0..u64::MAX),
            heavy_hits: rng.gen_range(0..u64::MAX),
            light_hits: rng.gen_range(0..u64::MAX),
            last_error: rng
                .gen_bool(0.3)
                .then(|| "scheduler tick failed: boom".to_string()),
            per_shard: rng.gen_bool(0.4).then(|| {
                (0..rng.gen_range(1..5u32))
                    .map(|i| ShardMetricsRow {
                        shard: i,
                        live: rng.gen_bool(0.8),
                        events_ingested: rng.gen_range(0..u64::MAX),
                        queue_depth: rng.gen_range(0..10_000u64),
                        flush_count: rng.gen_range(0..u64::MAX),
                        total_flush_cost: rng.gen_range(0.0..1e9),
                        budget: rng.gen_range(0.0..1e6),
                        staleness: rng.gen_range(0..100_000u64),
                        epoch: rng.gen_range(1..50u64),
                        replica_lag: rng.gen_range(0..100_000u64),
                        health: rng.gen_range(0..3u8),
                    })
                    .collect()
            }),
            per_view: rng.gen_bool(0.4).then(|| {
                (0..rng.gen_range(1..6u32))
                    .map(|i| ViewMetricsRow {
                        view: i,
                        group: rng.gen_range(0..4u32),
                        flushes: rng.gen_range(0..u64::MAX),
                        pending: rng.gen_range(0..100_000u64),
                        violations: rng.gen_range(0..3u64),
                        deltas_pushed: rng.gen_range(0..u64::MAX),
                        subscribers: rng.gen_range(0..100u64),
                        sub_lag_max: rng.gen_range(0..10_000u64),
                    })
                    .collect()
            }),
        }
    }

    fn arb_response(rng: &mut SmallRng) -> Response {
        match rng.gen_range(0..9u32) {
            0 => Response::Pong,
            1 => Response::SubmitOk {
                accepted: rng.gen_range(0..u64::MAX),
            },
            2 => Response::ReadOk(WireReadResult {
                fresh: rng.gen_bool(0.5),
                lag: rng.gen_range(0..1000u64),
                flush_cost: rng.gen_range(0.0..1e6),
                violated: rng.gen_bool(0.1),
                degraded: rng.gen_bool(0.1),
                checksum: rng.gen_range(0..u64::MAX),
                rows: rng.gen_bool(0.6).then(|| {
                    (0..rng.gen_range(0..8usize))
                        .map(|_| (arb_row(rng), rng.gen_range(-5i64..5)))
                        .collect()
                }),
            }),
            3 => Response::MetricsOk(Box::new(arb_metrics(rng))),
            4 => Response::FlushOk {
                flush_cost: rng.gen_range(0.0..1e6),
                violated: rng.gen_bool(0.1),
            },
            5 => Response::WalSegment {
                epoch: rng.gen_range(1..50u64),
                from_record: rng.gen_range(0..10_000u64),
                leader_records: rng.gen_range(0..10_000u64),
                bytes: (0..rng.gen_range(0..64usize))
                    .map(|_| rng.gen_range(0..256u64) as u8)
                    .collect(),
            },
            6 => Response::SubscribeOk {
                view: rng.gen_range(0..128u32),
                seq: rng.gen_range(0..100_000u64),
                resync: rng.gen_bool(0.3),
                checksum: rng.gen_range(0..u64::MAX),
                rows: (0..rng.gen_range(0..8usize))
                    .map(|_| (arb_row(rng), rng.gen_range(1i64..5)))
                    .collect(),
            },
            7 => Response::ViewDelta {
                view: rng.gen_range(0..128u32),
                seq: rng.gen_range(0..100_000u64),
                checksum: rng.gen_range(0..u64::MAX),
                staleness: rng.gen_range(0..10_000u64),
                rows: (0..rng.gen_range(0..8usize))
                    .map(|_| (arb_row(rng), rng.gen_range(-5i64..5)))
                    .collect(),
            },
            _ => Response::Error {
                code: ErrorCode::from_u8(rng.gen_range(0..7u8)).unwrap(),
                message: "typed failure".into(),
            },
        }
    }

    #[test]
    fn request_roundtrip_property() {
        let mut rng = SmallRng::seed_from_u64(0xA1_51);
        for _ in 0..300 {
            let f = arb_request(&mut rng);
            let enc = encode_request(&f);
            assert_eq!(decode_request(&enc).unwrap(), f);
        }
    }

    #[test]
    fn response_roundtrip_property() {
        let mut rng = SmallRng::seed_from_u64(0xA1_52);
        for _ in 0..300 {
            let r = arb_response(&mut rng);
            let enc = encode_response(&r);
            assert_eq!(decode_response(&enc).unwrap(), r);
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic() {
        // Mirrors the WAL's torn-tail tests: a strict prefix of any
        // valid payload must decode to EngineError::Corrupt — no panic,
        // no silent reinterpretation as a different complete message.
        let mut rng = SmallRng::seed_from_u64(0xA1_53);
        for _ in 0..40 {
            let enc = encode_request(&arb_request(&mut rng));
            for cut in 0..enc.len() {
                match decode_request(&enc[..cut]) {
                    Err(EngineError::Corrupt { offset, .. }) => {
                        assert!(offset <= cut as u64);
                    }
                    other => panic!("prefix {cut}/{} decoded to {other:?}", enc.len()),
                }
            }
            let enc = encode_response(&arb_response(&mut rng));
            for cut in 0..enc.len() {
                match decode_response(&enc[..cut]) {
                    Err(EngineError::Corrupt { offset, .. }) => {
                        assert!(offset <= cut as u64);
                    }
                    other => panic!("prefix {cut}/{} decoded to {other:?}", enc.len()),
                }
            }
        }
    }

    #[test]
    fn corrupted_payload_bytes_never_panic_the_decoders() {
        // Byte flips below the frame checksum's protection: the decoder
        // must return (Ok with altered content, or a typed error), never
        // panic — the guarantee the server leans on before trusting any
        // client bytes.
        let mut rng = SmallRng::seed_from_u64(0xA1_54);
        for _ in 0..40 {
            let mut enc = encode_request(&arb_request(&mut rng));
            for i in 0..enc.len() {
                let orig = enc[i];
                enc[i] = orig.wrapping_add(rng.gen_range(1..255u8));
                let _ = decode_request(&enc);
                enc[i] = orig;
            }
            let mut enc = encode_response(&arb_response(&mut rng));
            for i in 0..enc.len() {
                let orig = enc[i];
                enc[i] = orig.wrapping_add(rng.gen_range(1..255u8));
                let _ = decode_response(&enc);
                enc[i] = orig;
            }
        }
    }

    #[test]
    fn frame_layer_detects_flipped_bytes() {
        let payload = encode_request(&RequestFrame {
            deadline_ms: 250,
            request: Request::Metrics {
                per_shard: false,
                per_view: false,
            },
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        // Flip every payload byte in turn: the checksum must catch it.
        for i in FRAME_HEADER_LEN..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            match read_frame(&mut Cursor::new(bad)) {
                Err(FrameError::Corrupt(EngineError::Corrupt { message, .. })) => {
                    assert!(message.contains("checksum"), "got {message}");
                }
                other => panic!("flip at {i}: {other:?}"),
            }
        }
        // Flipping checksum bytes in the header is caught the same way;
        // flipping length bytes yields checksum failure, a torn read, or
        // an oversize rejection — an error either way.
        for i in 0..FRAME_HEADER_LEN {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            assert!(read_frame(&mut Cursor::new(bad)).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        match read_frame(&mut Cursor::new(wire)) {
            Err(FrameError::Corrupt(EngineError::Corrupt { message, .. })) => {
                assert!(message.contains("exceeds cap"), "got {message}");
            }
            other => panic!("expected oversize rejection, got {other:?}"),
        }
    }

    #[test]
    fn clean_close_and_torn_frame_are_distinguished() {
        // Empty stream = clean close.
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new())),
            Err(FrameError::Closed)
        ));
        // A partial header or partial payload = torn (I/O), not Closed.
        let payload = encode_response(&Response::Pong);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in 1..wire.len() {
            match read_frame(&mut Cursor::new(wire[..cut].to_vec())) {
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), ErrorKind::UnexpectedEof);
                }
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let reqs: Vec<RequestFrame> = {
            let mut rng = SmallRng::seed_from_u64(0xA1_55);
            (0..20).map(|_| arb_request(&mut rng)).collect()
        };
        let mut wire = Vec::new();
        for f in &reqs {
            send_request(&mut wire, f).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for f in &reqs {
            assert_eq!(&recv_request(&mut cursor).unwrap(), f);
        }
        assert!(matches!(recv_request(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn handshake_roundtrip_and_rejections() {
        let mut wire = Vec::new();
        write_hello(&mut wire).unwrap();
        assert_eq!(read_hello(&mut Cursor::new(wire)).unwrap(), NET_VERSION);

        for status in [
            HandshakeStatus::Ok,
            HandshakeStatus::Overloaded,
            HandshakeStatus::VersionMismatch,
        ] {
            let mut wire = Vec::new();
            write_hello_reply(&mut wire, status).unwrap();
            assert_eq!(read_hello_reply(&mut Cursor::new(wire)).unwrap(), status);
        }

        // Wrong magic is corrupt, both directions.
        let bad = b"NOPE\x01\x00".to_vec();
        assert!(matches!(
            read_hello(&mut Cursor::new(bad)),
            Err(FrameError::Corrupt(_))
        ));
        let bad = b"NOPE\x01\x00\x00".to_vec();
        assert!(matches!(
            read_hello_reply(&mut Cursor::new(bad)),
            Err(FrameError::Corrupt(_))
        ));
        // A future server version is surfaced as corrupt (the client
        // cannot trust the rest of the byte stream).
        let mut wire = Vec::new();
        wire.extend_from_slice(NET_MAGIC);
        wire.extend_from_slice(&(NET_VERSION + 1).to_le_bytes());
        wire.push(0);
        assert!(read_hello_reply(&mut Cursor::new(wire)).is_err());
    }

    #[test]
    fn frame_buffer_decodes_identically_across_arbitrary_chunk_boundaries() {
        // The event-loop server sees TCP bytes at arbitrary boundaries:
        // half a header, three frames coalesced, one byte at a time.
        // Property: however a valid multi-frame stream is sliced into
        // chunks, the FrameBuffer yields exactly the frames a
        // whole-stream blocking reader yields, and the zero-copy
        // decoder agrees bit-for-bit with the owned decoder on each.
        let mut rng = SmallRng::seed_from_u64(0xA1_60);
        for _ in 0..40 {
            let reqs: Vec<RequestFrame> = (0..rng.gen_range(1..10usize))
                .map(|_| arb_request(&mut rng))
                .collect();
            let mut wire = Vec::new();
            for f in &reqs {
                send_request(&mut wire, f).unwrap();
            }
            let mut fb = FrameBuffer::new();
            let mut decoded = Vec::new();
            let mut pos = 0;
            while pos < wire.len() {
                // Mix tiny (split) and large (coalescing) chunks.
                let cap = (wire.len() - pos).min(if rng.gen_bool(0.5) { 3 } else { 64 });
                let n = rng.gen_range(1..=cap.max(1));
                fb.extend_from_slice(&wire[pos..pos + n]);
                pos += n;
                while let Some(range) = fb.next_frame().unwrap() {
                    let payload = fb.payload(range);
                    let owned = decode_request(payload).unwrap();
                    let zero_copy = decode_request_ref(payload).unwrap();
                    assert_eq!(zero_copy.to_owned_frame().unwrap(), owned);
                    decoded.push(owned);
                }
            }
            assert_eq!(decoded, reqs);
            // Stream fully consumed at a frame boundary: a close here
            // is clean, not torn.
            assert!(!fb.mid_frame());
        }
    }

    #[test]
    fn frame_buffer_preserves_torn_vs_corrupt_taxonomy() {
        let payload = encode_request(&RequestFrame {
            deadline_ms: 99,
            request: Request::Metrics {
                per_shard: false,
                per_view: false,
            },
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();

        // Every strict prefix: incomplete (Ok(None)) with mid_frame()
        // true — EOF here is the caller's torn frame, never Corrupt.
        for cut in 1..wire.len() {
            let mut fb = FrameBuffer::new();
            fb.extend_from_slice(&wire[..cut]);
            assert!(fb.next_frame().unwrap().is_none(), "cut at {cut}");
            assert!(fb.mid_frame(), "cut at {cut}");
        }

        // Flipped payload bytes: checksum catches them as Corrupt.
        for i in FRAME_HEADER_LEN..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let mut fb = FrameBuffer::new();
            fb.extend_from_slice(&bad);
            match fb.next_frame() {
                Err(FrameError::Corrupt(EngineError::Corrupt { message, .. })) => {
                    assert!(message.contains("checksum"), "got {message}");
                }
                other => panic!("flip at {i}: {other:?}"),
            }
        }

        // Oversized length prefix: rejected before buffering the
        // claimed payload.
        let mut fb = FrameBuffer::new();
        let mut bad = Vec::new();
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.extend_from_slice(&0u64.to_le_bytes());
        fb.extend_from_slice(&bad);
        match fb.next_frame() {
            Err(FrameError::Corrupt(EngineError::Corrupt { message, .. })) => {
                assert!(message.contains("exceeds cap"), "got {message}");
            }
            other => panic!("expected oversize rejection, got {other:?}"),
        }
    }

    #[test]
    fn frame_buffer_fill_from_reads_incrementally() {
        // fill_from does one read per call and tolerates a reader that
        // returns one byte at a time.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = 1.min(buf.len());
                self.0.read(&mut buf[..n])
            }
        }
        let f = RequestFrame {
            deadline_ms: 7,
            request: Request::Read {
                view: 0,
                fresh: true,
                want_rows: false,
            },
        };
        let mut wire = Vec::new();
        send_request(&mut wire, &f).unwrap();
        let total = wire.len();
        let mut r = OneByte(Cursor::new(wire));
        let mut fb = FrameBuffer::new();
        let mut seen = None;
        for _ in 0..total {
            assert_eq!(fb.fill_from(&mut r).unwrap(), 1);
            if let Some(range) = fb.next_frame().unwrap() {
                seen = Some(decode_request(fb.payload(range)).unwrap());
            }
        }
        assert_eq!(seen, Some(f));
        assert_eq!(fb.fill_from(&mut r).unwrap(), 0); // clean EOF
        assert!(!fb.mid_frame());
    }

    #[test]
    fn zero_copy_decoder_rejects_exactly_what_the_owned_decoder_rejects() {
        // Same acceptance set: for valid payloads, every truncation and
        // every byte flip must classify identically (both Ok-and-equal
        // or both Err).
        let mut rng = SmallRng::seed_from_u64(0xA1_61);
        for _ in 0..40 {
            let enc = encode_request(&arb_request(&mut rng));
            for cut in 0..enc.len() {
                let owned = decode_request(&enc[..cut]);
                let zc = decode_request_ref(&enc[..cut]);
                assert_eq!(owned.is_err(), zc.is_err(), "prefix {cut}/{}", enc.len());
            }
            let mut mutated = enc.clone();
            for i in 0..mutated.len() {
                let orig = mutated[i];
                mutated[i] = orig.wrapping_add(rng.gen_range(1..255u8));
                let owned = decode_request(&mutated);
                let zc = decode_request_ref(&mutated);
                match (owned, zc) {
                    (Ok(o), Ok(z)) => assert_eq!(z.to_owned_frame().unwrap(), o),
                    (Err(_), Err(_)) => {}
                    (o, z) => panic!("flip at {i}: owned={o:?} zero-copy={z:?}"),
                }
                mutated[i] = orig;
            }
        }
    }

    #[test]
    fn frame_buffer_take_serves_the_fixed_size_hello() {
        let mut wire = Vec::new();
        write_hello(&mut wire).unwrap();
        let mut fb = FrameBuffer::new();
        fb.extend_from_slice(&wire[..3]);
        assert!(fb.take(6).is_none()); // incomplete hello
        fb.extend_from_slice(&wire[3..]);
        let hello = fb.take(6).unwrap();
        assert_eq!(&hello[..4], NET_MAGIC);
        assert_eq!(u16::from_le_bytes([hello[4], hello[5]]), NET_VERSION);
        assert!(!fb.mid_frame());
    }

    #[test]
    fn error_code_taxonomy_roundtrip_and_retry_safety() {
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadRequest,
            ErrorCode::Unavailable,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
            // Only overload rejections happen provably before side
            // effects, so only they are submit-retry-safe.
            assert_eq!(code.is_retry_safe(), code == ErrorCode::Overloaded);
        }
        // The sharded rejections are also pre-admission: the router
        // checks liveness/epoch before enqueueing anything.
        for code in [ErrorCode::ShardUnavailable, ErrorCode::StaleEpoch] {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
            assert!(code.is_retry_safe());
        }
        assert_eq!(ErrorCode::from_u8(99), None);
        assert!(Request::Ping.is_idempotent());
        assert!(Request::ReplicaSubscribe {
            shard: 0,
            from_record: 0
        }
        .is_idempotent());
        assert!(!Request::Submit {
            epoch: 0,
            table: 0,
            mods: vec![]
        }
        .is_idempotent());
    }
}
