//! `aivm-net` — the networked serving layer.
//!
//! `aivm-serve` made the maintenance runtime a running system, but an
//! embeddable one: only threads inside the process could submit DML or
//! read the view. This crate gives it a front door, in two parts:
//!
//! 1. **The wire protocol** ([`frame`]) — a versioned, length-prefixed
//!    binary format reusing the engine's value/row/modification codec
//!    and the write-ahead log's `len | fxhash64 | payload` framing, so
//!    one checksum convention covers disk and wire. Requests carry a
//!    deadline; failures are a typed [`ErrorCode`] taxonomy, never a
//!    torn connection with no explanation.
//! 2. **The TCP server** ([`server`]) — std-only, event-driven: a
//!    hand-rolled [`poller`] (raw `epoll`, no external crates)
//!    multiplexes thousands of non-blocking connections over a small
//!    fixed worker pool, each connection a read/write buffer state
//!    machine driving a [`ServeHandle`](aivm_serve::ServeHandle).
//!    Admission control rejects with [`ErrorCode::Overloaded`] *before*
//!    any side effect instead of queueing unboundedly, and per-request
//!    deadlines bound how long a read may wait behind a backlog.
//!
//! Submit and Read payloads are decoded **zero-copy** straight out of a
//! connection's read buffer ([`decode_request_ref`]); the steady-state
//! decode path performs no heap allocation per frame.
//!
//! The paper's refresh constraint `C` becomes a client-visible latency
//! SLO here: a `Fresh` read over the wire is still tick + forced flush,
//! so its flush cost is provably ≤ `C` — now measured end to end by the
//! `repro loadgen` harness in `aivm-bench`.

#![deny(unsafe_code)] // relaxed from forbid: `poller` needs raw epoll FFI
#![warn(missing_docs)]

pub mod frame;
pub mod poller;
pub mod replica;
pub mod server;

pub use frame::{
    decode_request, decode_request_ref, decode_response, encode_request, encode_response,
    read_frame, read_hello, read_hello_reply, recv_request, recv_response, send_request,
    send_response, write_frame, write_hello, write_hello_reply, ErrorCode, FrameBuffer, FrameError,
    HandshakeStatus, NetMetrics, Request, RequestFrame, RequestRef, RequestRefFrame, Response,
    ShardMetricsRow, SubmitRef, WireReadResult, FRAME_HEADER_LEN, MAX_FRAME_LEN, NET_MAGIC,
    NET_VERSION,
};
pub use replica::{Replica, ReplicaConfig};
pub use server::{NetServer, NetServerConfig};
