//! A minimal readiness poller over raw `epoll`.
//!
//! The workspace builds with no external crates (no `libc`, `mio`,
//! `polling`), so the four syscalls the event loop needs —
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`, `close` — are declared
//! here as direct `extern "C"` bindings against the platform libc the
//! binary already links. This is the only module in the workspace that
//! uses `unsafe`; everything above it sees a safe [`Poller`] value.
//!
//! Level-triggered mode, deliberately: a readiness bit stays set while
//! bytes remain buffered, so a server that parses one frame and returns
//! to `wait` is re-woken instead of stalling — the classic
//! edge-trigger starvation bug cannot happen. The server drains sockets
//! to `WouldBlock` anyway; level-trigger is belt and braces.
//!
//! Tokens are caller-chosen `u64`s carried in the kernel's per-fd user
//! data; the poller neither owns nor tracks file descriptors. Callers
//! must [`Poller::delete`] an fd before closing it (or rely on the
//! kernel's close-time cleanup, which is fine as long as the fd was not
//! duplicated).

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::time::Duration;

// Constants from <sys/epoll.h> (stable kernel ABI).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between the 32-bit event mask and the 64-bit data field); other
/// architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn __errno_location() -> *mut c_int;
}

fn last_errno() -> io::Error {
    // SAFETY: __errno_location returns glibc/musl's thread-local errno
    // slot, always valid.
    let e = unsafe { *__errno_location() };
    io::Error::from_raw_os_error(e)
}

const EINTR: i32 = 4;

/// Which readiness events to watch an fd for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take bytes.
    pub writable: bool,
    /// The peer closed or the fd errored; the connection is done.
    /// Reported alongside `readable` so buffered bytes can still be
    /// drained first.
    pub closed: bool,
}

/// A safe wrapper around one epoll instance.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_errno());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = ev;
        let ptr = ev
            .as_mut()
            .map(|e| e as *mut EpollEvent)
            .unwrap_or(std::ptr::null_mut());
        // SAFETY: `ptr` is either null (DEL) or points at a live
        // EpollEvent on this stack frame for the duration of the call.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(last_errno());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Changes the interest set of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Unregisters an fd. Call before closing it.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Waits for readiness, appending into `events` (cleared first).
    /// `timeout` of `None` blocks indefinitely. Returns the number of
    /// events delivered; 0 on timeout. `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        const CAP: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round sub-millisecond timeouts up to 1ms so short waits
            // still sleep instead of spinning.
            Some(d) if d.is_zero() => 0,
            Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as c_int,
        };
        loop {
            // SAFETY: `raw` is a live buffer of CAP epoll_event slots;
            // the kernel writes at most CAP entries.
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as c_int, timeout_ms) };
            if n < 0 {
                let err = last_errno();
                if err.raw_os_error() == Some(EINTR) {
                    continue;
                }
                return Err(err);
            }
            for e in raw.iter().take(n as usize) {
                let bits = e.events;
                events.push(Event {
                    token: e.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            return Ok(n as usize);
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd is a valid fd owned exclusively by this Poller.
        unsafe {
            let _ = close(self.epfd);
        }
    }
}

// The epoll fd is just an fd: safe to move across threads and to share
// (epoll_ctl/epoll_wait are thread-safe); each worker owns its own
// Poller here regardless.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_roundtrip_on_a_socketpair() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing written yet: a short wait times out.
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        a.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].closed);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);

        // Level-triggered: after draining, the next wait times out
        // again.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        // Peer close surfaces as a closed (and readable) event.
        drop(a);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].closed);

        poller.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn write_interest_fires_when_buffer_has_room() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        poller.add(a.as_raw_fd(), 1, Interest::READ_WRITE).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        // Dropping write interest stops the wakeups.
        poller.modify(a.as_raw_fd(), 1, Interest::READ).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
