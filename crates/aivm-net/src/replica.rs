//! The tailing follower: a thread that keeps a standby
//! [`MaintenanceRuntime`] caught up with a shard leader's WAL over the
//! wire, ready for promotion when the leader dies.
//!
//! ## Protocol
//!
//! The follower polls the leader with
//! [`Request::ReplicaSubscribe`](crate::Request::ReplicaSubscribe)
//! `{ shard, from_record }`, where `from_record` is the follower's own
//! count of *applied* records — not the leader's, and not the
//! follower's re-logged WAL length. The distinction matters twice:
//!
//! - the leader's log may gain records the follower has not seen
//!   (that difference *is* the replication lag), and
//! - the follower's own re-log may be shorter than what it applied
//!   (`SetBudget` records that change nothing are not re-appended), so
//!   neither log length can serve as the resume cursor.
//!
//! The reply is a [`WalSegment`](crate::Response::WalSegment) of raw,
//! checksummed WAL record frames. Each record is re-validated
//! ([`decode_segment`]) and applied through the runtime's recovery path
//! ([`MaintenanceRuntime::apply_record`]): the leader's command log
//! includes its `Tick`/`Forced` records, so the follower replays the
//! exact flush schedule deterministically and never self-ticks. With a
//! WAL attached to the follower runtime, every applied record is
//! re-logged — the follower is itself recoverable, and replicable after
//! promotion.
//!
//! ## Resume and torn tails
//!
//! The leader serves only whole checksum-valid records, re-scanning its
//! log each poll, so a follower reconnecting after any cut (leader
//! restart with torn-tail truncation included) resumes from its applied
//! count with no gap. Should the served segment ever start *before*
//! that count (a leader whose log was truncated under the follower),
//! the overlapping records are skipped, never double-applied.
//!
//! Every poll publishes progress into a shared [`ReplicaStatus`]: the
//! applied count, the leader's record count (their difference is the
//! replication lag surfaced in `Metrics`), the leader epoch piggybacked
//! on each segment, the follower's own staleness, and a health bit that
//! clears on any transport or protocol failure.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::frame::{
    read_hello_reply, recv_response, send_request, write_hello, HandshakeStatus, Request,
    RequestFrame, Response,
};
use aivm_serve::{decode_segment, MaintenanceRuntime};
use aivm_shard::ReplicaStatus;

/// Tuning for a [`Replica`]'s poll loop.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// How long to idle after a poll that found the follower caught up
    /// (a poll that returned records repolls immediately).
    pub poll_interval: Duration,
    /// How long to back off after a failed connect or a torn session.
    pub reconnect_backoff: Duration,
    /// Per-request deadline stamped on subscribe frames.
    pub deadline: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            poll_interval: Duration::from_millis(1),
            reconnect_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(1),
        }
    }
}

/// A running follower thread. [`Replica::stop`] returns the caught-up
/// runtime for promotion.
pub struct Replica {
    stop: Arc<AtomicBool>,
    status: ReplicaStatus,
    join: Option<JoinHandle<MaintenanceRuntime>>,
}

impl Replica {
    /// Spawns the tailing thread against the leader server at `addr`,
    /// subscribing to `shard`'s WAL. `runtime` must be a standby built
    /// from the same genesis state the leader's log starts at (its
    /// applied-record cursor starts at `status.applied()`, so pass a
    /// fresh status for a fresh standby).
    pub fn spawn(
        addr: SocketAddr,
        shard: u32,
        runtime: MaintenanceRuntime,
        status: ReplicaStatus,
        cfg: ReplicaConfig,
    ) -> std::io::Result<Replica> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_status = status.clone();
        let join = std::thread::Builder::new()
            .name(format!("aivm-replica-{shard}"))
            .spawn(move || tail_loop(addr, shard, runtime, thread_status, cfg, thread_stop))?;
        Ok(Replica {
            stop,
            status,
            join: Some(join),
        })
    }

    /// The shared replication status (same atomics the thread updates).
    pub fn status(&self) -> ReplicaStatus {
        self.status.clone()
    }

    /// Stops the poll loop and returns the runtime, caught up to
    /// whatever the last successful poll applied. The caller promotes
    /// it (typically after one final drain of the sealed leader log).
    pub fn stop(mut self) -> MaintenanceRuntime {
        self.stop.store(true, Ordering::SeqCst);
        let join = self.join.take().expect("replica already stopped");
        join.join().expect("replica thread panicked")
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// One leader session: handshake, then subscribe/apply until the
/// connection tears, the protocol desyncs, or the stop flag rises.
/// Returns `true` when stopping (vs. needing a reconnect).
fn tail_session(
    stream: &mut TcpStream,
    shard: u32,
    runtime: &mut MaintenanceRuntime,
    status: &ReplicaStatus,
    cfg: &ReplicaConfig,
    stop: &AtomicBool,
) -> bool {
    if write_hello(stream).is_err() {
        return false;
    }
    if !matches!(read_hello_reply(stream), Ok(HandshakeStatus::Ok)) {
        return false;
    }
    while !stop.load(Ordering::SeqCst) {
        let applied = status.applied();
        let frame = RequestFrame {
            deadline_ms: cfg.deadline.as_millis().min(u32::MAX as u128) as u32,
            request: Request::ReplicaSubscribe {
                shard,
                from_record: applied,
            },
        };
        if send_request(stream, &frame).is_err() {
            return false;
        }
        let (epoch, from_record, leader_records, bytes) = match recv_response(stream) {
            Ok(Response::WalSegment {
                epoch,
                from_record,
                leader_records,
                bytes,
            }) => (epoch, from_record, leader_records, bytes),
            // Typed rejection (shard dead, tail missing) or transport
            // failure: tear the session and retry from scratch.
            Ok(_) | Err(_) => return false,
        };
        status.set_epoch(epoch);
        status.set_leader_records(leader_records);
        let records = match decode_segment(&bytes) {
            Ok(r) => r,
            Err(_) => return false, // transport damage: resubscribe
        };
        if from_record > applied || leader_records < applied {
            // Divergence: a gap the leader cannot serve (log vanished
            // under us), or a leader log shorter than what we already
            // applied (truncated/rebuilt — the tail clamps from_record
            // to its end, so only the record count betrays it). Either
            // way this standby can no longer catch up by tailing;
            // surface it instead of polling forever as "healthy".
            status.set_healthy(false);
            return false;
        }
        // Records before the cursor are duplicates (leader log
        // truncated and rebuilt under us): skip, never double-apply.
        let skip = (applied - from_record) as usize;
        let mut cursor = applied;
        for rec in records.iter().skip(skip) {
            if runtime.apply_record(rec).is_err() {
                // A record that fails to apply will fail on every
                // retry; stop advancing and flag the standby.
                status.set_healthy(false);
                return false;
            }
            cursor += 1;
            status.set_applied(cursor);
        }
        status.set_staleness(runtime.pending().total());
        status.set_healthy(true);
        if cursor >= leader_records {
            std::thread::sleep(cfg.poll_interval);
        }
    }
    true
}

fn tail_loop(
    addr: SocketAddr,
    shard: u32,
    mut runtime: MaintenanceRuntime,
    status: ReplicaStatus,
    cfg: ReplicaConfig,
    stop: Arc<AtomicBool>,
) -> MaintenanceRuntime {
    while !stop.load(Ordering::SeqCst) {
        let session = TcpStream::connect_timeout(&addr, cfg.deadline).and_then(|s| {
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(cfg.deadline))?;
            s.set_write_timeout(Some(cfg.deadline))?;
            Ok(s)
        });
        match session {
            Ok(mut stream) => {
                if tail_session(&mut stream, shard, &mut runtime, &status, &cfg, &stop) {
                    break;
                }
                status.set_healthy(false);
            }
            Err(_) => status.set_healthy(false),
        }
        // Interruptible backoff so stop() never waits a full backoff.
        let t0 = std::time::Instant::now();
        while t0.elapsed() < cfg.reconnect_backoff && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    runtime
}
