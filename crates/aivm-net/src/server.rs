//! The std-only TCP server: an event-driven readiness loop over a
//! [`ServeHandle`], with admission control.
//!
//! ## Architecture
//!
//! One accept thread plus a fixed pool of worker threads
//! ([`NetServerConfig::workers`]), each running its own epoll instance
//! ([`crate::poller`]). Connections are dispatched round-robin; a
//! worker multiplexes its share of non-blocking sockets, so 10k+ open
//! connections cost 10k socket buffers — not 10k stacks. Each
//! connection is a small state machine:
//!
//! * a [`FrameBuffer`] accumulates whatever bytes `read` returns at
//!   readiness and yields complete, checksum-validated frames in place;
//! * requests are decoded **zero-copy** ([`crate::decode_request_ref`])
//!   straight out of that read buffer — a Submit batch allocates
//!   nothing until its rows are materialized for ingest;
//! * responses are appended to a write buffer and flushed on write
//!   readiness, never blocking the worker.
//!
//! Reads that must consult the scheduler (`Fresh`, `Flush`, `Metrics`)
//! do not park the worker either: the request becomes a *pending
//! ticket* ([`ServeHandle::begin_read`]) polled on the worker's tick,
//! and further frames from that connection wait (pipelining stays
//! ordered) while other connections keep being served.
//!
//! ## Admission control
//!
//! Three rejection points, all *before* any side effect:
//!
//! 1. **Connection cap** — past [`NetServerConfig::max_connections`]
//!    open connections, the handshake answers
//!    [`HandshakeStatus::Overloaded`] and closes. No frame is ever left
//!    half-written.
//! 2. **Queue high water** — a `Submit` arriving while the scheduler's
//!    ingest queue sits at or above
//!    [`NetServerConfig::submit_high_water`] outstanding events is
//!    answered with [`ErrorCode::Overloaded`] without ingesting *any*
//!    of its batch, which is what makes client-side submit retries
//!    safe. Below the mark (or with the mark disabled), submits ride
//!    the event-weighted bounded queue; one that finds the queue at
//!    hard capacity is *parked* on its connection and re-offered each
//!    poll tick — the event-loop equivalent of blocking backpressure —
//!    until admitted or its deadline expires, in which case it too is
//!    answered `Overloaded`, still before any side effect.
//! 3. **Deadlines** — a pending read whose budget expires while queued
//!    behind a backlog is answered [`ErrorCode::DeadlineExceeded`]
//!    (typed, not torn).
//!
//! A corrupt inbound frame is answered with a best-effort
//! [`ErrorCode::BadRequest`] and the connection is closed — a byte
//! stream cannot be resynchronised past garbage, exactly like the WAL's
//! hard-corruption rule.
//!
//! ## Shutdown and drain
//!
//! [`NetServer::shutdown`] (and equivalently dropping the server —
//! `Drop` runs the identical sequence, so no thread is ever leaked)
//! proceeds in order:
//!
//! 1. the accept thread observes the stop flag within
//!    [`NetServerConfig::poll_interval`], stops accepting, and wakes
//!    every worker;
//! 2. workers stop parsing *new* frames, resolve every in-flight
//!    pending reply, and flush every write buffer — bounded by a
//!    [`DRAIN_GRACE`] grace period after which stragglers are closed;
//! 3. `shutdown` joins the workers, then the accept thread, before
//!    returning — so no reply is abandoned mid-write and every
//!    `ServeHandle` clone is dropped (a subsequent
//!    `ServeServer::shutdown` cannot hang on this server's handles).

use crate::frame::{
    append_frame, decode_request_ref, encode_response, ErrorCode, FrameBuffer, FrameError,
    HandshakeStatus, NetMetrics, RequestRef, Response, ShardMetricsRow, SubmitRef, ViewMetricsRow,
    WireReadResult, NET_MAGIC, NET_VERSION,
};
use crate::poller::{Event, Interest, Poller};
use aivm_engine::{fxhash, Modification, WRow};
use aivm_serve::{
    ApplyTicket, DeadlineError, FetchOutcome, MetricsSnapshot, MetricsTicket, MultiMetricsSnapshot,
    ReadMode, ReadTicket, RegistryApplyTicket, RegistryHandle, RegistryMetricsTicket,
    RegistryReadTicket, ServeHandle, TrySendError,
};
use aivm_shard::{merge_metrics, RouteError, ShardRouter};
use std::collections::VecDeque;
use std::io::{ErrorKind, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the TCP server.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Hard cap on concurrently open connections; the cap'th + 1 client
    /// is rejected at the handshake with [`HandshakeStatus::Overloaded`].
    pub max_connections: usize,
    /// Reject `Submit` requests while the scheduler queue holds at
    /// least this many outstanding *events* (the queue charges capacity
    /// per modification, not per message). `None` disables the check;
    /// submits that find the queue at hard capacity are then parked on
    /// the connection and retried each poll tick until admitted or
    /// their deadline expires.
    pub submit_high_water: Option<usize>,
    /// Deadline applied to requests that carry none (`deadline_ms` 0).
    pub default_deadline: Duration,
    /// The tick at which workers poll pending scheduler replies, check
    /// deadlines, and (with the accept thread) observe shutdown.
    pub poll_interval: Duration,
    /// Event-loop worker threads. `0` sizes the pool from the machine's
    /// available parallelism (clamped to [2, 8]).
    pub workers: usize,
    /// Acknowledge a `Submit` only after the scheduler has *applied*
    /// the batch (and appended it to the WAL, when one is attached),
    /// instead of at enqueue. Slower — every submit takes a scheduler
    /// round-trip — but an acknowledged write then survives a leader
    /// crash, which is what the failover chaos experiments assert.
    pub durable_acks: bool,
    /// Record in [`NetMetrics::shards_auto`] that the shard width was
    /// resolved automatically (e.g. loadgen's `--shards auto`) rather
    /// than pinned by the operator. Purely informational.
    pub shards_auto: bool,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 4096,
            submit_high_water: None,
            default_deadline: Duration::from_secs(5),
            poll_interval: Duration::from_millis(1),
            workers: 0,
            durable_acks: false,
            shards_auto: false,
        }
    }
}

impl NetServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8)
    }
}

/// Network-layer counters, shared across workers.
#[derive(Default)]
struct NetStats {
    connections_active: AtomicU64,
    connections_total: AtomicU64,
    connections_rejected: AtomicU64,
    requests: AtomicU64,
    submitted_events: AtomicU64,
    overload_rejections: AtomicU64,
    deadline_rejections: AtomicU64,
}

/// Immutable context shared by the accept thread and every worker.
struct Shared {
    n_tables: usize,
    cfg: NetServerConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    /// Admitted (cap-counted) connections currently open.
    open: AtomicUsize,
}

/// How long a drain may keep resolving in-flight replies and flushing
/// write buffers before stragglers are force-closed.
const DRAIN_GRACE: Duration = Duration::from_secs(1);

/// Pause reading a connection whose write buffer backs up past this
/// (the peer is not draining replies); resume below it.
const WBUF_HIGH: usize = 256 * 1024;

/// Delta batches pushed per subscription per worker tick, bounding one
/// pump pass's frame burst (the rest follow next tick).
const MAX_PUSH_BATCHES: usize = 16;

/// How long an over-cap connection may dawdle before its handshake
/// arrives; past this it is closed without the courtesy reply.
const REJECT_HELLO_CUTOFF: Duration = Duration::from_millis(250);

/// A running TCP server. [`NetServer::shutdown`] stops and drains it;
/// dropping it without calling `shutdown` performs the *same* full
/// drain (no thread outlives the value).
pub struct NetServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
}

/// What a worker's requests are routed against: one scheduler handle,
/// or a shard router fanning out over several.
#[derive(Clone)]
enum Backend {
    /// The unsharded fast path — identical to the pre-sharding server.
    Single(ServeHandle),
    /// Key-partitioned shards behind a [`ShardRouter`].
    Sharded(ShardRouter),
    /// A multi-view registry runtime: per-view reads, per-view metrics
    /// rows, and live push subscriptions over the registry's
    /// [`aivm_serve::SubscriptionHub`].
    Registry(RegistryHandle),
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    ///
    /// `n_tables` is the view's base-table count, used to reject
    /// out-of-range `Submit.table` values as [`ErrorCode::BadRequest`]
    /// before they reach the scheduler.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: ServeHandle,
        n_tables: usize,
        cfg: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        NetServer::bind_backend(addr, Backend::Single(handle), n_tables, cfg)
    }

    /// Binds a *sharded* server: submits hash to their owning shard,
    /// stale reads scatter-gather the per-shard snapshots, fresh reads
    /// and flushes fan out, and metrics aggregate across shards. The
    /// router carries the partitioner, merge plan and per-shard
    /// handles; the caller typically also spawns an
    /// [`aivm_shard::Coordinator`] over a clone of the same router so
    /// budget rebalancing and serving observe the same shard liveness.
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        router: ShardRouter,
        cfg: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let n_tables = router.partitioner().key_cols().len();
        NetServer::bind_backend(addr, Backend::Sharded(router), n_tables, cfg)
    }

    /// Binds a *multi-view registry* server: submits target the
    /// registry's global base-table axis, reads and subscriptions name
    /// a view id, metrics carry per-view rows, and workers push
    /// seq-tagged delta batches to subscribed connections at every
    /// flush boundary (see [`Request::Subscribe`]).
    ///
    /// [`Request::Subscribe`]: crate::Request::Subscribe
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        handle: RegistryHandle,
        cfg: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let n_tables = handle.table_count();
        NetServer::bind_backend(addr, Backend::Registry(handle), n_tables, cfg)
    }

    fn bind_backend(
        addr: impl ToSocketAddrs,
        backend: Backend,
        n_tables: usize,
        cfg: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            n_tables,
            cfg,
            stop: Arc::clone(&stop),
            stats: Arc::new(NetStats::default()),
            open: AtomicUsize::new(0),
        });
        let accept_join = std::thread::Builder::new()
            .name("aivm-net-accept".into())
            .spawn(move || accept_loop(listener, backend, shared))?;
        Ok(NetServer {
            addr: local,
            stop,
            accept_join: Some(accept_join),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every open connection (pending replies
    /// resolved, write buffers flushed, bounded by [`DRAIN_GRACE`]),
    /// and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A connection freshly accepted, on its way to a worker.
struct NewConn {
    stream: TcpStream,
    /// Counted against the connection cap. Non-admitted connections get
    /// a handshake-level `Overloaded` reply and are closed.
    admitted: bool,
}

/// The accept thread's view of one worker.
struct WorkerHandle {
    inbox: Arc<Mutex<VecDeque<NewConn>>>,
    /// Writing a byte wakes the worker's poller.
    wake_tx: UnixStream,
    join: JoinHandle<()>,
}

fn wake(handle: &WorkerHandle) {
    // Best-effort: a full pipe already guarantees a pending wakeup.
    let _ = (&handle.wake_tx).write(&[1]);
}

fn accept_loop(listener: TcpListener, backend: Backend, shared: Arc<Shared>) {
    let n_workers = shared.cfg.effective_workers();
    let mut workers = Vec::with_capacity(n_workers);
    for i in 0..n_workers {
        match spawn_worker(i, backend.clone(), Arc::clone(&shared)) {
            Ok(w) => workers.push(w),
            Err(_) if !workers.is_empty() => break, // run with fewer
            Err(_) => return,                       // cannot serve at all
        }
    }
    drop(backend);

    let poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return,
    };
    let _ = poller.add(listener.as_raw_fd(), 0, Interest::READ);
    let tick = shared.cfg.poll_interval.max(Duration::from_millis(1));
    let mut events = Vec::new();
    let mut rr = 0usize;
    while !shared.stop.load(Ordering::SeqCst) {
        let _ = poller.wait(&mut events, Some(tick));
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    shared
                        .stats
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    let cap = shared.cfg.max_connections.max(1);
                    // Reserve a cap slot optimistically; workers release
                    // it when the connection closes.
                    let admitted = shared.open.fetch_add(1, Ordering::SeqCst) < cap;
                    if !admitted {
                        shared.open.fetch_sub(1, Ordering::SeqCst);
                        shared
                            .stats
                            .connections_rejected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    let w = &workers[rr % workers.len()];
                    rr = rr.wrapping_add(1);
                    w.inbox
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push_back(NewConn { stream, admitted });
                    wake(w);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }
    drop(listener);
    for w in &workers {
        wake(w);
    }
    for w in workers {
        let _ = w.join.join();
    }
}

fn spawn_worker(
    index: usize,
    backend: Backend,
    shared: Arc<Shared>,
) -> std::io::Result<WorkerHandle> {
    let inbox: Arc<Mutex<VecDeque<NewConn>>> = Arc::new(Mutex::new(VecDeque::new()));
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let poller = Poller::new()?;
    poller.add(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ)?;
    let worker_inbox = Arc::clone(&inbox);
    let join = std::thread::Builder::new()
        .name(format!("aivm-net-worker-{index}"))
        .spawn(move || {
            Worker {
                shared,
                backend,
                poller,
                wake_rx,
                inbox: worker_inbox,
                conns: Vec::new(),
                free: Vec::new(),
            }
            .run()
        })?;
    Ok(WorkerHandle {
        inbox,
        wake_tx,
        join,
    })
}

const WAKE_TOKEN: u64 = 0;

fn token_of(slot: usize) -> u64 {
    slot as u64 + 1
}

fn slot_of(token: u64) -> usize {
    (token - 1) as usize
}

/// Where a connection is in its lifecycle.
#[derive(PartialEq, Eq)]
enum Phase {
    /// Waiting for the fixed-size client hello.
    Hello,
    /// Handshake done; frames flow.
    Active,
}

/// A scheduler round-trip in flight for one connection. While one is
/// pending the connection's later frames stay buffered (pipelining
/// order), but every *other* connection keeps being served.
enum Pending {
    /// A submit the ingest queue had no room for. The event-loop
    /// equivalent of the blocking server's backpressure: the decoded
    /// batch parks here and re-attempts admission every tick, replying
    /// `SubmitOk` the moment capacity frees — the client waits on its
    /// reply instead of sleeping through a retry backoff. Nothing was
    /// enqueued while parked, so expiring the deadline into an
    /// `Overloaded` rejection stays side-effect free and retry-safe.
    Submit {
        table: usize,
        mods: Vec<Modification>,
        /// With [`NetServerConfig::durable_acks`]: the apply ticket of
        /// an already-admitted batch — the reply waits for the
        /// scheduler to apply (and WAL-append) it, not just enqueue it.
        ticket: Option<ApplyTicket>,
        started: Instant,
        deadline: Duration,
    },
    /// The sharded submit in flight: sub-batches not yet admitted park
    /// here and re-attempt each tick, like [`Pending::Submit`]. Once
    /// *any* sub-batch is admitted the request has had a side effect;
    /// from then on a failure resolves to `Internal` (not retry-safe)
    /// instead of the pre-admission `Overloaded`/`ShardUnavailable`
    /// rejections.
    SubmitSharded {
        table: usize,
        /// The fencing epoch the submit was stamped with (0 skips the
        /// check). Re-verified on every parked re-attempt: a failover
        /// while the submit waits on a full queue must still fence it.
        epoch: u64,
        /// Per-shard sub-batches still awaiting admission.
        parts: Vec<(usize, Vec<Modification>)>,
        /// Events admitted so far (across already-admitted sub-batches).
        accepted: u64,
        /// Sub-batch count at split time, for error messages.
        total: usize,
        /// With [`NetServerConfig::durable_acks`]: apply tickets of the
        /// sub-batches already admitted; the reply waits for every one.
        tickets: Vec<ApplyTicket>,
        started: Instant,
        deadline: Duration,
    },
    Read {
        ticket: ReadTicket,
        fresh: bool,
        want_rows: bool,
        started: Instant,
        deadline: Duration,
    },
    /// A fresh read (or flush, with `flush`) fanned out across shards:
    /// per-shard tickets resolve independently; the reply merges them
    /// once the last one lands. A shard dying mid-flight is skipped and
    /// flags the merged result degraded rather than failing the read.
    ReadSharded {
        /// Outstanding `(shard, ticket)` pairs.
        tickets: Vec<(usize, ReadTicket)>,
        /// Results gathered so far.
        results: Vec<aivm_serve::ReadResult>,
        degraded: bool,
        want_rows: bool,
        /// Reply `FlushOk` instead of `ReadOk`.
        flush: bool,
        started: Instant,
        deadline: Duration,
    },
    Flush {
        ticket: ReadTicket,
        started: Instant,
        deadline: Duration,
    },
    Metrics {
        ticket: MetricsTicket,
        per_shard: bool,
        started: Instant,
        deadline: Duration,
    },
    /// Metrics fanned out across shards; merged once every live shard
    /// answered (dead ones are skipped).
    MetricsSharded {
        tickets: Vec<(usize, MetricsTicket)>,
        snaps: Vec<(usize, MetricsSnapshot)>,
        per_shard: bool,
        started: Instant,
        deadline: Duration,
    },
    /// A registry submit parked on a full queue (or, with durable acks,
    /// waiting on its apply ticket) — the registry twin of
    /// [`Pending::Submit`].
    SubmitRegistry {
        table: usize,
        mods: Vec<Modification>,
        ticket: Option<RegistryApplyTicket>,
        started: Instant,
        deadline: Duration,
    },
    /// A fresh per-view read through the registry scheduler (stale
    /// reads are answered wait-free from the hub snapshot).
    ReadRegistry {
        ticket: RegistryReadTicket,
        want_rows: bool,
        started: Instant,
        deadline: Duration,
    },
    /// A registry flush: one fresh read per view, merged into a single
    /// `FlushOk` (group sharing means only the first member of each
    /// group pays the drain; the rest see zero pending).
    FlushRegistry {
        tickets: Vec<RegistryReadTicket>,
        flush_cost: f64,
        violated: bool,
        started: Instant,
        deadline: Duration,
    },
    /// Registry metrics in flight; the reply attaches per-view rows
    /// when the request asked for them.
    MetricsRegistry {
        ticket: RegistryMetricsTicket,
        per_shard: bool,
        per_view: bool,
        started: Instant,
        deadline: Duration,
    },
}

/// One live push subscription held by a connection: the next delta seq
/// this subscriber expects for its view.
struct SubState {
    view: u32,
    next_seq: u64,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    rbuf: FrameBuffer,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    phase: Phase,
    admitted: bool,
    opened: Instant,
    /// Finish flushing `wbuf`, then close (handshake rejections,
    /// post-corrupt error replies, drain).
    close_after_flush: bool,
    pending: Option<Pending>,
    /// Live push subscriptions (registry backend only). The worker's
    /// tick pumps hub deltas into `wbuf` for each entry, bounded by
    /// [`WBUF_HIGH`].
    subs: Vec<SubState>,
    /// Interest currently registered with the poller.
    registered: Interest,
    /// Marked for removal at the end of the current dispatch.
    dead: bool,
}

impl Conn {
    fn wbuf_len(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// The interest this connection should be registered for right now:
    /// read while it may parse (no pending reply, no backed-up write
    /// buffer), write while bytes wait to flush.
    fn desired_interest(&self) -> Interest {
        Interest {
            readable: self.pending.is_none()
                && !self.close_after_flush
                && self.wbuf_len() < WBUF_HIGH,
            writable: self.wbuf_len() > 0,
        }
    }
}

struct Worker {
    shared: Arc<Shared>,
    backend: Backend,
    poller: Poller,
    wake_rx: UnixStream,
    inbox: Arc<Mutex<VecDeque<NewConn>>>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Worker {
    fn run(mut self) {
        let tick = self.shared.cfg.poll_interval.max(Duration::from_millis(1));
        // A parked submit is waiting for the scheduler to drain the
        // ingest queue, which happens on the scheduler's own
        // (sub-)millisecond cadence — retrying it on the full tick
        // would make the retry tick the ingest ceiling for small client
        // counts. Reads park on scheduler *replies* that take a tick to
        // produce anyway, so they keep the coarser cadence.
        let submit_tick = tick.min(Duration::from_micros(500));
        let mut events: Vec<Event> = Vec::new();
        let mut drain_started: Option<Instant> = None;
        loop {
            let stopping = self.shared.stop.load(Ordering::SeqCst);
            if stopping && drain_started.is_none() {
                drain_started = Some(Instant::now());
                self.begin_drain();
            }
            let timeout = if self.has_parked_submit() {
                submit_tick
            } else if stopping || self.needs_tick() {
                tick
            } else {
                Duration::from_millis(200)
            };
            let _ = self.poller.wait(&mut events, Some(timeout));
            for &ev in &events {
                if ev.token == WAKE_TOKEN {
                    self.drain_wake();
                } else {
                    self.dispatch(slot_of(ev.token), ev);
                }
            }
            self.admit_new(stopping || drain_started.is_some());
            self.poll_pendings();
            self.pump_subscriptions();
            self.sweep_reject_cutoffs();
            if let Some(t0) = drain_started {
                let force = t0.elapsed() >= DRAIN_GRACE;
                self.drain_step(force);
                if self.conns.iter().all(Option::is_none) {
                    break;
                }
            }
        }
    }

    /// True when some connection needs timer-driven progress (pending
    /// scheduler replies, live subscriptions to pump, over-cap
    /// handshake cutoffs).
    fn needs_tick(&self) -> bool {
        self.conns.iter().flatten().any(|c| {
            c.pending.is_some() || !c.subs.is_empty() || (!c.admitted && c.phase == Phase::Hello)
        })
    }

    /// True when some connection holds a submit parked on a full ingest
    /// queue — the one pending kind whose progress is gated purely on
    /// this worker re-offering it.
    fn has_parked_submit(&self) -> bool {
        self.conns.iter().flatten().any(|c| {
            matches!(
                c.pending,
                Some(Pending::Submit { .. }) | Some(Pending::SubmitSharded { .. })
            )
        })
    }

    fn drain_wake(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(std::io::Read::read(&mut &self.wake_rx, &mut sink), Ok(n) if n > 0) {}
    }

    /// Moves freshly dispatched connections from the inbox into slots.
    /// During a drain new connections are closed unserved.
    fn admit_new(&mut self, draining: bool) {
        loop {
            let new = self
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            let Some(new) = new else { break };
            if draining {
                if new.admitted {
                    self.shared.open.fetch_sub(1, Ordering::SeqCst);
                }
                continue; // stream drops → closed
            }
            let _ = new.stream.set_nonblocking(true);
            let _ = new.stream.set_nodelay(true);
            let slot = self.free.pop().unwrap_or_else(|| {
                self.conns.push(None);
                self.conns.len() - 1
            });
            let registered = Interest::READ;
            if self
                .poller
                .add(new.stream.as_raw_fd(), token_of(slot), registered)
                .is_err()
            {
                if new.admitted {
                    self.shared.open.fetch_sub(1, Ordering::SeqCst);
                }
                self.free.push(slot);
                continue;
            }
            if new.admitted {
                self.shared
                    .stats
                    .connections_active
                    .fetch_add(1, Ordering::Relaxed);
            }
            self.conns[slot] = Some(Conn {
                stream: new.stream,
                rbuf: FrameBuffer::new(),
                wbuf: Vec::new(),
                wpos: 0,
                phase: Phase::Hello,
                admitted: new.admitted,
                opened: Instant::now(),
                close_after_flush: false,
                pending: None,
                subs: Vec::new(),
                registered,
                dead: false,
            });
            // The hello may already be buffered in the kernel; the
            // level-triggered poller would tell us, but serving it now
            // saves a tick.
            self.dispatch(
                slot,
                Event {
                    token: token_of(slot),
                    readable: true,
                    writable: false,
                    closed: false,
                },
            );
        }
    }

    /// Handles one readiness event for one connection.
    fn dispatch(&mut self, slot: usize, ev: Event) {
        let shared = Arc::clone(&self.shared);
        let backend = self.backend.clone();
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if ev.readable {
            handle_readable(&shared, &backend, conn);
        }
        if ev.writable {
            flush_wbuf(conn);
        }
        if ev.closed && !ev.readable {
            conn.dead = true;
        }
        self.finish_dispatch(slot);
    }

    /// Applies the outcome of any mutation pass: close dead connections,
    /// re-register interest for live ones.
    fn finish_dispatch(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.dead {
            self.close(slot);
            return;
        }
        let desired = conn.desired_interest();
        if desired != conn.registered
            && self
                .poller
                .modify(conn.stream.as_raw_fd(), token_of(slot), desired)
                .is_ok()
        {
            conn.registered = desired;
        }
    }

    /// Polls every in-flight scheduler ticket; a resolved one queues its
    /// response and lets the connection resume parsing buffered frames.
    fn poll_pendings(&mut self) {
        let shared = Arc::clone(&self.shared);
        let backend = self.backend.clone();
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.pending.is_none() {
                continue;
            }
            if poll_pending(&shared, &backend, conn) {
                // Resolved: frames that queued up behind the pending
                // reply parse now, without waiting for new readability.
                process(&shared, &backend, conn);
                flush_wbuf(conn);
                self.finish_dispatch(slot);
            }
        }
    }

    /// Pushes new hub delta batches to every subscribed connection
    /// (registry backend only). The per-subscriber buffer is the
    /// connection's write buffer, bounded by [`WBUF_HIGH`]: a peer that
    /// stops draining its socket stops receiving pushes, the hub's
    /// bounded ring absorbs the backlog, and once the position falls
    /// off the ring the subscriber is resynced from the snapshot — the
    /// flush path never waits on a slow subscriber.
    fn pump_subscriptions(&mut self) {
        let Backend::Registry(handle) = &self.backend else {
            return;
        };
        let hub = Arc::clone(handle.hub());
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if conn.subs.is_empty() || conn.dead || conn.close_after_flush {
                continue;
            }
            let mut queued = false;
            for i in 0..conn.subs.len() {
                if conn.wbuf_len() >= WBUF_HIGH {
                    break;
                }
                let (sub_view, mut next_seq) = (conn.subs[i].view, conn.subs[i].next_seq);
                let view = sub_view as usize;
                let head = hub.head_seq(view);
                if head >= next_seq {
                    hub.note_lag(view, head - next_seq + 1);
                }
                match hub.fetch(view, next_seq, MAX_PUSH_BATCHES) {
                    FetchOutcome::AtHead => {}
                    FetchOutcome::Deltas(batches) => {
                        for b in batches {
                            queue_response(
                                conn,
                                &Response::ViewDelta {
                                    view: b.view,
                                    seq: b.seq,
                                    checksum: b.checksum,
                                    staleness: b.staleness,
                                    rows: b.rows.clone(),
                                },
                            );
                            next_seq = b.seq + 1;
                            queued = true;
                        }
                    }
                    FetchOutcome::Resync(snap) => {
                        queue_response(
                            conn,
                            &Response::SubscribeOk {
                                view: sub_view,
                                seq: snap.seq,
                                resync: true,
                                checksum: snap.checksum,
                                rows: snap.rows.clone(),
                            },
                        );
                        next_seq = snap.seq + 1;
                        queued = true;
                    }
                }
                conn.subs[i].next_seq = next_seq;
            }
            if queued {
                flush_wbuf(conn);
                self.finish_dispatch(slot);
            }
        }
    }

    /// Closes over-cap connections whose hello never arrived.
    fn sweep_reject_cutoffs(&mut self) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if !conn.admitted
                && conn.phase == Phase::Hello
                && conn.opened.elapsed() >= REJECT_HELLO_CUTOFF
            {
                conn.dead = true;
                self.finish_dispatch(slot);
            }
        }
    }

    /// Entering shutdown: no new frames are parsed; in-flight pendings
    /// and unflushed replies get the grace period.
    fn begin_drain(&mut self) {
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.close_after_flush = true;
                self.finish_dispatch(slot);
            }
        }
    }

    /// One drain iteration: flush what can flush, close what is done —
    /// or everything, once the grace period lapsed.
    fn drain_step(&mut self, force: bool) {
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            flush_wbuf(conn);
            if force || (conn.pending.is_none() && conn.wbuf_len() == 0) {
                conn.dead = true;
            }
            self.finish_dispatch(slot);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            if !conn.subs.is_empty() {
                if let Backend::Registry(handle) = &self.backend {
                    for s in &conn.subs {
                        handle.hub().subscriber_closed(s.view as usize);
                    }
                }
            }
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            if conn.admitted {
                self.shared.open.fetch_sub(1, Ordering::SeqCst);
                self.shared
                    .stats
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            }
            self.free.push(slot);
        }
    }
}

/// Reads until `WouldBlock`/EOF, parsing as bytes land. Bounded passes
/// per event so one firehose connection cannot starve its worker.
fn handle_readable(shared: &Shared, backend: &Backend, conn: &mut Conn) {
    for _ in 0..8 {
        if conn.dead
            || conn.pending.is_some()
            || conn.close_after_flush
            || conn.wbuf_len() >= WBUF_HIGH
        {
            break;
        }
        match conn.rbuf.fill_from(&mut conn.stream) {
            // EOF. Clean at a frame boundary, torn mid-frame — either
            // way the peer is gone and no reply can land: close.
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(_) => process(shared, backend, conn),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    flush_wbuf(conn);
}

/// Parses everything currently buffered: the handshake, then frames
/// until the buffer runs dry, a scheduler round-trip starts, or the
/// stream turns corrupt.
fn process(shared: &Shared, backend: &Backend, conn: &mut Conn) {
    if conn.phase == Phase::Hello && !handle_hello(conn) {
        return;
    }
    while conn.phase == Phase::Active
        && !conn.dead
        && conn.pending.is_none()
        && !conn.close_after_flush
        && conn.wbuf_len() < WBUF_HIGH
    {
        match conn.rbuf.next_frame() {
            Ok(None) => break,
            Ok(Some(range)) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let outcome = {
                    let payload = conn.rbuf.payload(range);
                    handle_frame(shared, backend, payload)
                };
                match outcome {
                    FrameOutcome::Reply(resp) => queue_response(conn, &resp),
                    FrameOutcome::Wait(p) => conn.pending = Some(p),
                    FrameOutcome::Subscribe {
                        view,
                        next_seq,
                        reply,
                    } => {
                        match conn.subs.iter_mut().find(|s| s.view == view) {
                            // Re-subscribing an already-subscribed view
                            // repositions it (no double bookkeeping).
                            Some(s) => s.next_seq = next_seq,
                            None => {
                                conn.subs.push(SubState { view, next_seq });
                                if let Backend::Registry(handle) = backend {
                                    handle.hub().subscriber_opened(view as usize);
                                }
                            }
                        }
                        queue_response(conn, &reply);
                    }
                    FrameOutcome::Unsubscribe { view, reply } => {
                        if let Some(pos) = conn.subs.iter().position(|s| s.view == view) {
                            conn.subs.swap_remove(pos);
                            if let Backend::Registry(handle) = backend {
                                handle.hub().subscriber_closed(view as usize);
                            }
                        }
                        queue_response(conn, &reply);
                    }
                    FrameOutcome::Corrupt(err) => {
                        corrupt_teardown(conn, &err);
                        return;
                    }
                }
            }
            Err(FrameError::Corrupt(err)) => {
                corrupt_teardown(conn, &err);
                return;
            }
            // next_frame never yields Closed/Io; treat defensively.
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// A corrupt stream cannot be resynchronised: answer with a typed
/// error (best-effort) and close once it flushes.
fn corrupt_teardown(conn: &mut Conn, err: &aivm_engine::EngineError) {
    queue_response(
        conn,
        &Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("undecodable request: {err}"),
        },
    );
    conn.close_after_flush = true;
}

/// Consumes the 6-byte hello once buffered. Returns true when the
/// connection moved to `Active`.
fn handle_hello(conn: &mut Conn) -> bool {
    let Some(hello) = conn.rbuf.take(6) else {
        return false;
    };
    let mut fixed = [0u8; 6];
    fixed.copy_from_slice(hello);
    if &fixed[..4] != NET_MAGIC {
        // Not our protocol: close silently (same as the blocking
        // server's failed read_hello).
        conn.dead = true;
        return false;
    }
    let version = u16::from_le_bytes([fixed[4], fixed[5]]);
    let status = if !conn.admitted {
        HandshakeStatus::Overloaded
    } else if version == NET_VERSION {
        HandshakeStatus::Ok
    } else {
        HandshakeStatus::VersionMismatch
    };
    conn.wbuf.extend_from_slice(NET_MAGIC);
    conn.wbuf.extend_from_slice(&NET_VERSION.to_le_bytes());
    conn.wbuf.push(match status {
        HandshakeStatus::Ok => 0,
        HandshakeStatus::Overloaded => 1,
        HandshakeStatus::VersionMismatch => 2,
    });
    if status == HandshakeStatus::Ok {
        conn.phase = Phase::Active;
        true
    } else {
        conn.close_after_flush = true;
        false
    }
}

/// What one decoded frame turns into.
enum FrameOutcome {
    /// Answer immediately.
    Reply(Response),
    /// A scheduler round-trip started; poll the ticket.
    Wait(Pending),
    /// Register a push subscription on the connection (the position is
    /// already resolved), then answer.
    Subscribe {
        view: u32,
        next_seq: u64,
        reply: Response,
    },
    /// Drop a push subscription from the connection, then answer.
    Unsubscribe { view: u32, reply: Response },
    /// Undecodable payload below the frame checksum: drop the
    /// connection after a best-effort error reply.
    Corrupt(aivm_engine::EngineError),
}

/// The request's remaining deadline budget (`deadline_ms` 0 falls back
/// to the configured default).
fn deadline_of(deadline_ms: u32, cfg: &NetServerConfig) -> Duration {
    if deadline_ms == 0 {
        cfg.default_deadline
    } else {
        Duration::from_millis(u64::from(deadline_ms))
    }
}

fn handle_frame(shared: &Shared, backend: &Backend, payload: &[u8]) -> FrameOutcome {
    let frame = match decode_request_ref(payload) {
        Ok(f) => f,
        Err(err) => return FrameOutcome::Corrupt(err),
    };
    let deadline = deadline_of(frame.deadline_ms, &shared.cfg);
    match backend {
        Backend::Single(handle) => handle_frame_single(shared, handle, frame.request, deadline),
        Backend::Sharded(router) => handle_frame_sharded(shared, router, frame.request, deadline),
        Backend::Registry(handle) => handle_frame_registry(shared, handle, frame.request, deadline),
    }
}

/// The rejection for view-targeted requests naming a view the backend
/// does not have (a single-view server only has view 0).
fn bad_view(view: u32, views: usize) -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: format!("view {view} out of range ({views} views)"),
    }
}

/// The rejection for `Subscribe`/`Unsubscribe` on a backend without a
/// subscription hub.
fn no_subscriptions() -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: "push subscriptions require a registry server".into(),
    }
}

fn handle_frame_single(
    shared: &Shared,
    handle: &ServeHandle,
    request: RequestRef<'_>,
    deadline: Duration,
) -> FrameOutcome {
    match request {
        RequestRef::Ping => FrameOutcome::Reply(Response::Pong),
        RequestRef::Submit(s) => submit(shared, handle, s, deadline),
        RequestRef::Read {
            view,
            fresh,
            want_rows,
        } => {
            if view != 0 {
                return FrameOutcome::Reply(bad_view(view, 1));
            }
            // Stale reads are answered straight from the published
            // flush-boundary snapshot: no scheduler round-trip, the
            // checksum is precomputed, and rows are cloned only when
            // the client asked for them.
            if !fresh {
                if let Some(snap) = handle.snapshot_for_read() {
                    return FrameOutcome::Reply(Response::ReadOk(WireReadResult {
                        fresh: false,
                        lag: snap.lag(),
                        flush_cost: 0.0,
                        violated: false,
                        degraded: false,
                        checksum: snap.checksum,
                        rows: want_rows.then(|| snap.rows.clone()),
                    }));
                }
            }
            let mode = if fresh {
                ReadMode::Fresh
            } else {
                ReadMode::Stale
            };
            match handle.begin_read(mode) {
                Some(ticket) => FrameOutcome::Wait(Pending::Read {
                    ticket,
                    fresh,
                    want_rows,
                    started: Instant::now(),
                    deadline,
                }),
                None => FrameOutcome::Reply(unavailable(handle)),
            }
        }
        RequestRef::Metrics {
            per_shard,
            per_view: _,
        } => match handle.begin_metrics() {
            Some(ticket) => FrameOutcome::Wait(Pending::Metrics {
                ticket,
                per_shard,
                started: Instant::now(),
                deadline,
            }),
            None => FrameOutcome::Reply(unavailable(handle)),
        },
        RequestRef::Flush => match handle.begin_read(ReadMode::Fresh) {
            Some(ticket) => FrameOutcome::Wait(Pending::Flush {
                ticket,
                started: Instant::now(),
                deadline,
            }),
            None => FrameOutcome::Reply(unavailable(handle)),
        },
        RequestRef::ReplicaSubscribe { .. } => FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: "replication requires a sharded server".into(),
        }),
        RequestRef::Subscribe { .. } | RequestRef::Unsubscribe { .. } => {
            FrameOutcome::Reply(no_subscriptions())
        }
    }
}

fn handle_frame_sharded(
    shared: &Shared,
    router: &ShardRouter,
    request: RequestRef<'_>,
    deadline: Duration,
) -> FrameOutcome {
    match request {
        RequestRef::Ping => FrameOutcome::Reply(Response::Pong),
        RequestRef::Submit(s) => submit_sharded(shared, router, s, deadline),
        RequestRef::Read {
            view,
            fresh,
            want_rows,
        } => {
            if view != 0 {
                return FrameOutcome::Reply(bad_view(view, 1));
            }
            if !fresh {
                // Merged scatter-gather over the per-shard published
                // snapshots — still wait-free: no scheduler round-trip
                // on any shard, dead shards skipped and flagged.
                return match router.read_stale() {
                    Ok(m) => FrameOutcome::Reply(Response::ReadOk(WireReadResult {
                        fresh: false,
                        lag: m.lag,
                        flush_cost: 0.0,
                        violated: false,
                        degraded: m.degraded,
                        checksum: m.checksum,
                        rows: want_rows.then_some(m.rows),
                    })),
                    Err(err) => FrameOutcome::Reply(Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("shard merge failed: {err}"),
                    }),
                };
            }
            begin_fanout_read(router, want_rows, false, deadline)
        }
        RequestRef::Flush => begin_fanout_read(router, false, true, deadline),
        RequestRef::Metrics {
            per_shard,
            per_view: _,
        } => {
            let mut tickets = Vec::new();
            let mut any_slot = false;
            for i in 0..router.shards() {
                let Some(handle) = router.handle(i) else {
                    continue;
                };
                any_slot = true;
                match handle.begin_metrics() {
                    Some(t) => tickets.push((i, t)),
                    None => router.mark_dead(i),
                }
            }
            if tickets.is_empty() {
                let _ = any_slot;
                return FrameOutcome::Reply(all_shards_unavailable());
            }
            FrameOutcome::Wait(Pending::MetricsSharded {
                tickets,
                snaps: Vec::new(),
                per_shard,
                started: Instant::now(),
                deadline,
            })
        }
        RequestRef::ReplicaSubscribe { shard, from_record } => {
            FrameOutcome::Reply(replica_subscribe(router, shard, from_record))
        }
        RequestRef::Subscribe { .. } | RequestRef::Unsubscribe { .. } => {
            FrameOutcome::Reply(no_subscriptions())
        }
    }
}

/// Routes one decoded frame against a multi-view registry backend.
fn handle_frame_registry(
    shared: &Shared,
    handle: &RegistryHandle,
    request: RequestRef<'_>,
    deadline: Duration,
) -> FrameOutcome {
    match request {
        RequestRef::Ping => FrameOutcome::Reply(Response::Pong),
        RequestRef::Submit(s) => submit_registry(shared, handle, s, deadline),
        RequestRef::Read {
            view,
            fresh,
            want_rows,
        } => {
            let v = view as usize;
            if v >= handle.view_count() {
                return FrameOutcome::Reply(bad_view(view, handle.view_count()));
            }
            if !fresh {
                // Wait-free off the hub's latest published snapshot,
                // exactly like the single backend's stale path.
                let Some(snap) = handle.snapshot_for_read(v) else {
                    return FrameOutcome::Reply(registry_unavailable(handle));
                };
                return FrameOutcome::Reply(Response::ReadOk(WireReadResult {
                    fresh: false,
                    lag: snap.lag(),
                    flush_cost: 0.0,
                    violated: false,
                    degraded: false,
                    checksum: snap.checksum,
                    rows: want_rows.then(|| snap.rows.clone()),
                }));
            }
            match handle.begin_read(v, ReadMode::Fresh) {
                Some(ticket) => FrameOutcome::Wait(Pending::ReadRegistry {
                    ticket,
                    want_rows,
                    started: Instant::now(),
                    deadline,
                }),
                None => FrameOutcome::Reply(registry_unavailable(handle)),
            }
        }
        RequestRef::Flush => {
            let mut tickets = Vec::with_capacity(handle.view_count());
            for v in 0..handle.view_count() {
                match handle.begin_read(v, ReadMode::Fresh) {
                    Some(t) => tickets.push(t),
                    None => return FrameOutcome::Reply(registry_unavailable(handle)),
                }
            }
            FrameOutcome::Wait(Pending::FlushRegistry {
                tickets,
                flush_cost: 0.0,
                violated: false,
                started: Instant::now(),
                deadline,
            })
        }
        RequestRef::Metrics {
            per_shard,
            per_view,
        } => match handle.begin_metrics() {
            Some(ticket) => FrameOutcome::Wait(Pending::MetricsRegistry {
                ticket,
                per_shard,
                per_view,
                started: Instant::now(),
                deadline,
            }),
            None => FrameOutcome::Reply(registry_unavailable(handle)),
        },
        RequestRef::ReplicaSubscribe { .. } => FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: "replication requires a sharded server".into(),
        }),
        RequestRef::Subscribe { view, from_seq } => subscribe_registry(handle, view, from_seq),
        RequestRef::Unsubscribe { view } => {
            if (view as usize) >= handle.view_count() {
                return FrameOutcome::Reply(bad_view(view, handle.view_count()));
            }
            // The ack is a plain Pong: by the time it is queued, no
            // further ViewDelta for this view follows it on the wire.
            FrameOutcome::Unsubscribe {
                view,
                reply: Response::Pong,
            }
        }
    }
}

/// Resolves a `Subscribe` request to its starting position and reply.
///
/// * `from_seq == u64::MAX` — start from the current snapshot: the
///   reply is a resync carrying the full materialized rows.
/// * `from_seq` still on the hub's delta ring — a resume-ack: the
///   reply carries no rows and the pump pushes `ViewDelta` frames from
///   exactly `from_seq` (no gap, no duplicate).
/// * `from_seq` off the ring — the subscriber is too far behind (or
///   from a previous incarnation): degrade to a snapshot resync
///   instead of an error.
fn subscribe_registry(handle: &RegistryHandle, view: u32, from_seq: u64) -> FrameOutcome {
    let v = view as usize;
    if v >= handle.view_count() {
        return FrameOutcome::Reply(bad_view(view, handle.view_count()));
    }
    let hub = handle.hub();
    let resync = |snap: &aivm_engine::ViewSnapshot| FrameOutcome::Subscribe {
        view,
        next_seq: snap.seq + 1,
        reply: Response::SubscribeOk {
            view,
            seq: snap.seq,
            resync: true,
            checksum: snap.checksum,
            rows: snap.rows.clone(),
        },
    };
    if from_seq == u64::MAX {
        return resync(&hub.snapshot(v));
    }
    match hub.fetch(v, from_seq, 1) {
        FetchOutcome::AtHead | FetchOutcome::Deltas(_) => FrameOutcome::Subscribe {
            view,
            next_seq: from_seq,
            reply: Response::SubscribeOk {
                view,
                seq: from_seq.saturating_sub(1),
                resync: false,
                // The subscriber verified this state when it folded the
                // delta producing it; the ack doesn't recompute it.
                checksum: 0,
                rows: Vec::new(),
            },
        },
        FetchOutcome::Resync(snap) => resync(&snap),
    }
}

/// `unavailable` for the registry backend.
fn registry_unavailable(handle: &RegistryHandle) -> Response {
    Response::Error {
        code: ErrorCode::Unavailable,
        message: match handle.last_error() {
            Some(e) => format!("scheduler stopped: {e}"),
            None => "scheduler stopped".into(),
        },
    }
}

/// How many WAL bytes one `WalSegment` reply may carry. A follower far
/// behind pages through the log in bounded chunks instead of receiving
/// one unbounded frame.
const WAL_SEGMENT_MAX_BYTES: usize = 256 * 1024;

/// Serves one page of a shard leader's WAL tail to a tailing follower,
/// piggybacking the shard's current fencing epoch.
fn replica_subscribe(router: &ShardRouter, shard: u32, from_record: u64) -> Response {
    let i = shard as usize;
    if i >= router.shards() {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("shard {i} out of range ({} shards)", router.shards()),
        };
    }
    let Some(tail) = router.wal_tail(i) else {
        return Response::Error {
            code: ErrorCode::ShardUnavailable,
            message: format!("shard {i} has no replication tail attached"),
        };
    };
    match tail.segment(from_record, WAL_SEGMENT_MAX_BYTES) {
        Ok(seg) => Response::WalSegment {
            epoch: router.epoch_of(i),
            from_record: seg.from_record,
            leader_records: seg.leader_records,
            bytes: seg.bytes,
        },
        Err(err) => Response::Error {
            code: ErrorCode::Internal,
            message: format!("wal tail read failed: {err}"),
        },
    }
}

/// Fans a fresh read (or flush) out to every live shard. Shards that
/// refuse a ticket are marked dead; the eventual merge is flagged
/// degraded when any slot was skipped.
fn begin_fanout_read(
    router: &ShardRouter,
    want_rows: bool,
    flush: bool,
    deadline: Duration,
) -> FrameOutcome {
    let mut tickets = Vec::new();
    let mut degraded = false;
    for i in 0..router.shards() {
        let Some(handle) = router.handle(i) else {
            degraded = true;
            continue;
        };
        match handle.begin_read(ReadMode::Fresh) {
            Some(t) => tickets.push((i, t)),
            None => {
                router.mark_dead(i);
                degraded = true;
            }
        }
    }
    if tickets.is_empty() {
        return FrameOutcome::Reply(all_shards_unavailable());
    }
    FrameOutcome::Wait(Pending::ReadSharded {
        tickets,
        results: Vec::new(),
        degraded,
        want_rows,
        flush,
        started: Instant::now(),
        deadline,
    })
}

fn submit(
    shared: &Shared,
    handle: &ServeHandle,
    s: SubmitRef<'_>,
    deadline: Duration,
) -> FrameOutcome {
    if (s.table as usize) >= shared.n_tables {
        return FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "table {} out of range ({} tables)",
                s.table, shared.n_tables
            ),
        });
    }
    // Admission check for the WHOLE batch before the first ingest: a
    // rejected submit has provably had no side effect, so the client may
    // retry it without double-applying.
    if let Some(hw) = shared.cfg.submit_high_water {
        if handle.queue_depth() >= hw {
            shared
                .stats
                .overload_rejections
                .fetch_add(1, Ordering::Relaxed);
            return FrameOutcome::Reply(Response::Error {
                code: ErrorCode::Overloaded,
                message: format!("ingest queue at {} (high water {hw})", handle.queue_depth()),
            });
        }
    }
    // The only allocations on the submit path: materializing the rows
    // the engine will keep. The frame itself was decoded zero-copy.
    let mut mods: Vec<Modification> = Vec::new();
    if let Err(err) = s.decode_mods_into(&mut mods) {
        // Unreachable in practice (decode_request_ref validated), but
        // typed rather than trusted.
        return FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("undecodable request: {err}"),
        });
    }
    let table = s.table as usize;
    match try_submit(shared, handle, table, &mods) {
        SubmitStep::Parked => FrameOutcome::Wait(Pending::Submit {
            table,
            mods,
            ticket: None,
            started: Instant::now(),
            deadline,
        }),
        SubmitStep::Durable(ticket) => FrameOutcome::Wait(Pending::Submit {
            table,
            mods,
            ticket: Some(ticket),
            started: Instant::now(),
            deadline,
        }),
        SubmitStep::Reply(resp) => FrameOutcome::Reply(resp),
    }
}

/// The outcome of one single-backend admission attempt.
enum SubmitStep {
    /// The queue is full right now — park and retry each tick.
    Parked,
    /// The request resolved (`SubmitOk` at enqueue, or a typed error).
    Reply(Response),
    /// Admitted under durable acks: poll the apply ticket before
    /// acknowledging.
    Durable(ApplyTicket),
}

/// One admission attempt for a decoded batch.
fn try_submit(
    shared: &Shared,
    handle: &ServeHandle,
    table: usize,
    mods: &[Modification],
) -> SubmitStep {
    let accepted = mods.len() as u64;
    // The clone is cheap (rows are `Arc`s) and keeps the batch owned by
    // the connection until admission actually succeeds.
    if shared.cfg.durable_acks {
        return match handle.try_ingest_batch_tracked(table, mods.to_vec()) {
            Ok(ticket) => {
                shared
                    .stats
                    .submitted_events
                    .fetch_add(accepted, Ordering::Relaxed);
                SubmitStep::Durable(ticket)
            }
            Err(TrySendError::Full) => SubmitStep::Parked,
            Err(TrySendError::Disconnected) => SubmitStep::Reply(unavailable(handle)),
        };
    }
    match handle.try_ingest_batch(table, mods.to_vec()) {
        Ok(()) => {
            shared
                .stats
                .submitted_events
                .fetch_add(accepted, Ordering::Relaxed);
            SubmitStep::Reply(Response::SubmitOk { accepted })
        }
        Err(TrySendError::Full) => SubmitStep::Parked,
        Err(TrySendError::Disconnected) => SubmitStep::Reply(unavailable(handle)),
    }
}

/// The outcome of one registry-backend admission attempt.
enum SubmitRegistryStep {
    /// The queue is full right now — park and retry each tick.
    Parked,
    /// The request resolved (`SubmitOk` at enqueue, or a typed error).
    Reply(Response),
    /// Admitted under durable acks: poll the apply ticket before
    /// acknowledging.
    Durable(RegistryApplyTicket),
}

/// The registry submit entry point — the single-backend flow against
/// the registry's global base-table axis.
fn submit_registry(
    shared: &Shared,
    handle: &RegistryHandle,
    s: SubmitRef<'_>,
    deadline: Duration,
) -> FrameOutcome {
    if (s.table as usize) >= shared.n_tables {
        return FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "table {} out of range ({} tables)",
                s.table, shared.n_tables
            ),
        });
    }
    if let Some(hw) = shared.cfg.submit_high_water {
        if handle.queue_depth() >= hw {
            shared
                .stats
                .overload_rejections
                .fetch_add(1, Ordering::Relaxed);
            return FrameOutcome::Reply(Response::Error {
                code: ErrorCode::Overloaded,
                message: format!("ingest queue at {} (high water {hw})", handle.queue_depth()),
            });
        }
    }
    let mut mods: Vec<Modification> = Vec::new();
    if let Err(err) = s.decode_mods_into(&mut mods) {
        return FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("undecodable request: {err}"),
        });
    }
    let table = s.table as usize;
    match try_submit_registry(shared, handle, table, &mods) {
        SubmitRegistryStep::Parked => FrameOutcome::Wait(Pending::SubmitRegistry {
            table,
            mods,
            ticket: None,
            started: Instant::now(),
            deadline,
        }),
        SubmitRegistryStep::Durable(ticket) => FrameOutcome::Wait(Pending::SubmitRegistry {
            table,
            mods,
            ticket: Some(ticket),
            started: Instant::now(),
            deadline,
        }),
        SubmitRegistryStep::Reply(resp) => FrameOutcome::Reply(resp),
    }
}

/// One admission attempt for a decoded registry batch.
fn try_submit_registry(
    shared: &Shared,
    handle: &RegistryHandle,
    table: usize,
    mods: &[Modification],
) -> SubmitRegistryStep {
    let accepted = mods.len() as u64;
    if shared.cfg.durable_acks {
        return match handle.try_ingest_batch_tracked(table, mods.to_vec()) {
            Ok(ticket) => {
                shared
                    .stats
                    .submitted_events
                    .fetch_add(accepted, Ordering::Relaxed);
                SubmitRegistryStep::Durable(ticket)
            }
            Err(TrySendError::Full) => SubmitRegistryStep::Parked,
            Err(TrySendError::Disconnected) => {
                SubmitRegistryStep::Reply(registry_unavailable(handle))
            }
        };
    }
    match handle.try_ingest_batch(table, mods.to_vec()) {
        Ok(()) => {
            shared
                .stats
                .submitted_events
                .fetch_add(accepted, Ordering::Relaxed);
            SubmitRegistryStep::Reply(Response::SubmitOk { accepted })
        }
        Err(TrySendError::Full) => SubmitRegistryStep::Parked,
        Err(TrySendError::Disconnected) => SubmitRegistryStep::Reply(registry_unavailable(handle)),
    }
}

/// Polls the apply ticket of an admitted durable-ack registry submit.
fn poll_registry_apply(
    shared: &Shared,
    ticket: &RegistryApplyTicket,
    accepted: u64,
    started: Instant,
    deadline: Duration,
) -> Option<Response> {
    match ticket.try_take() {
        Ok(Some(Ok(()))) => Some(Response::SubmitOk { accepted }),
        Ok(Some(Err(err))) => Some(Response::Error {
            code: ErrorCode::Internal,
            message: format!("apply failed after admission: {err}"),
        }),
        Ok(None) if started.elapsed() >= deadline => {
            shared
                .stats
                .deadline_rejections
                .fetch_add(1, Ordering::Relaxed);
            Some(Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "batch admitted but not applied within {deadline:?}; durability indeterminate"
                ),
            })
        }
        Ok(None) => None,
        Err(_) => Some(Response::Error {
            code: ErrorCode::Internal,
            message: "scheduler stopped after admission; write durability indeterminate".into(),
        }),
    }
}

/// The sharded submit entry point. The whole batch is split by owning
/// shard and admission-checked against *every* target shard before the
/// first sub-batch is enqueued, so pre-admission rejections
/// (`BadRequest`, `Overloaded`, `ShardUnavailable`) are retry-safe: no
/// shard has seen any part of the batch.
fn submit_sharded(
    shared: &Shared,
    router: &ShardRouter,
    s: SubmitRef<'_>,
    deadline: Duration,
) -> FrameOutcome {
    if (s.table as usize) >= shared.n_tables {
        return FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!(
                "table {} out of range ({} tables)",
                s.table, shared.n_tables
            ),
        });
    }
    let mut mods: Vec<Modification> = Vec::new();
    if let Err(err) = s.decode_mods_into(&mut mods) {
        return FrameOutcome::Reply(Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("undecodable request: {err}"),
        });
    }
    let table = s.table as usize;
    // Routing errors (repartitioning update, arity too short for the
    // partition column) are the client's fault — typed, before any
    // side effect.
    let mut parts = match router.split_batch(table, mods) {
        Ok(p) => p,
        Err(err) => {
            return FrameOutcome::Reply(Response::Error {
                code: ErrorCode::BadRequest,
                message: format!("unroutable batch: {err}"),
            })
        }
    };
    if parts.is_empty() {
        return FrameOutcome::Reply(Response::SubmitOk { accepted: 0 });
    }
    // Pre-check every target shard: epoch fence, then liveness, then
    // high water. Failing here — before the first enqueue — is what
    // keeps retries safe even though the batch spans shards.
    for (shard, _) in &parts {
        if s.epoch != 0 {
            let current = router.epoch_of(*shard);
            if s.epoch < current {
                return FrameOutcome::Reply(stale_epoch(*shard, current, s.epoch));
            }
        }
        let Some(handle) = router.handle(*shard) else {
            return FrameOutcome::Reply(shard_unavailable(*shard));
        };
        if let Some(hw) = shared.cfg.submit_high_water {
            let depth = handle.queue_depth();
            if depth >= hw {
                shared
                    .stats
                    .overload_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return FrameOutcome::Reply(Response::Error {
                    code: ErrorCode::Overloaded,
                    message: format!("shard {shard} ingest queue at {depth} (high water {hw})"),
                });
            }
        }
    }
    let total = parts.len();
    let mut accepted = 0u64;
    let mut tickets = Vec::new();
    match try_submit_sharded(
        shared,
        router,
        table,
        s.epoch,
        &mut parts,
        &mut accepted,
        total,
        &mut tickets,
    ) {
        Some(resp) => FrameOutcome::Reply(resp),
        None => FrameOutcome::Wait(Pending::SubmitSharded {
            table,
            epoch: s.epoch,
            parts,
            accepted,
            total,
            tickets,
            started: Instant::now(),
            deadline,
        }),
    }
}

/// One admission round over the remaining sub-batches. `None` parks the
/// submit (some queue is full, or — with durable acks — admitted
/// sub-batches are still waiting on their apply tickets); a response
/// ends the request — `SubmitOk` once every sub-batch is in (and, with
/// durable acks, applied), `ShardUnavailable` (retry-safe) when a
/// target died before anything was admitted, `Internal` when a target
/// died *after* part of the batch was admitted (the client must
/// reconcile, not blindly retry).
#[allow(clippy::too_many_arguments)]
fn try_submit_sharded(
    shared: &Shared,
    router: &ShardRouter,
    table: usize,
    epoch: u64,
    parts: &mut Vec<(usize, Vec<Modification>)>,
    accepted: &mut u64,
    total: usize,
    tickets: &mut Vec<ApplyTicket>,
) -> Option<Response> {
    // Re-run the epoch fence on every admission round, not just the
    // initial pre-check: a submit parked on a full queue can outlive a
    // failover, and admitting it afterwards would feed the promoted
    // follower a batch whose prefix may already have been drained from
    // the dead leader's log — the double-apply the fence exists to
    // reject. Rejection is only retry-safe while nothing has been
    // admitted; past that point the partial-submit paths below own the
    // error semantics.
    if epoch != 0 && *accepted == 0 {
        for (shard, _) in parts.iter() {
            let current = router.epoch_of(*shard);
            if epoch < current {
                return Some(stale_epoch(*shard, current, epoch));
            }
        }
    }
    let durable = shared.cfg.durable_acks;
    let mut i = 0;
    while i < parts.len() {
        let (shard, mods) = &parts[i];
        let shard = *shard;
        let events = mods.len() as u64;
        // Clone keeps the sub-batch owned by the connection until its
        // admission actually succeeds (rows are `Arc`s; cheap).
        let step = if durable {
            match router.handle(shard) {
                None => Err(RouteError::ShardUnavailable(shard)),
                Some(h) => match h.try_ingest_batch_tracked(table, mods.clone()) {
                    Ok(t) => {
                        tickets.push(t);
                        Ok(())
                    }
                    Err(TrySendError::Full) => Err(RouteError::Overloaded(shard)),
                    Err(TrySendError::Disconnected) => Err(RouteError::ShardUnavailable(shard)),
                },
            }
        } else {
            router.try_submit_shard(shard, table, mods.clone())
        };
        match step {
            Ok(()) => {
                *accepted += events;
                shared
                    .stats
                    .submitted_events
                    .fetch_add(events, Ordering::Relaxed);
                parts.swap_remove(i);
            }
            Err(RouteError::Overloaded(_)) => i += 1,
            Err(RouteError::ShardUnavailable(_)) => {
                if *accepted == 0 {
                    return Some(shard_unavailable(shard));
                }
                return Some(Response::Error {
                    code: ErrorCode::Internal,
                    message: format!(
                        "partial submit: shard {shard} died after {} events \
                         ({} of {total} sub-batches) were admitted",
                        *accepted,
                        total - parts.len()
                    ),
                });
            }
        }
    }
    (parts.is_empty() && tickets.is_empty()).then_some(Response::SubmitOk {
        accepted: *accepted,
    })
}

/// The retry-safe rejection for a submit stamped with a pre-failover
/// epoch: nothing was enqueued anywhere.
fn stale_epoch(shard: usize, current: u64, stamped: u64) -> Response {
    Response::Error {
        code: ErrorCode::StaleEpoch,
        message: format!(
            "shard {shard} is at epoch {current}, submit stamped epoch {stamped}; \
             refresh the epoch and retry (nothing was enqueued)"
        ),
    }
}

/// The retry-safe rejection for a submit whose owning shard is dead:
/// nothing was enqueued anywhere.
fn shard_unavailable(shard: usize) -> Response {
    Response::Error {
        code: ErrorCode::ShardUnavailable,
        message: format!("shard {shard} unavailable; batch rejected before any side effect"),
    }
}

fn all_shards_unavailable() -> Response {
    Response::Error {
        code: ErrorCode::Unavailable,
        message: "all shards unavailable".into(),
    }
}

/// Polls the apply tickets of an admitted durable-ack submit. `None`
/// keeps waiting; `SubmitOk` once every ticket confirms its sub-batch
/// applied (and WAL-logged). Every failure past this point is
/// `Internal`/`DeadlineExceeded`, never retry-safe: the batch (or part
/// of it) is already in a scheduler queue, and its durability is
/// indeterminate at best.
fn poll_apply_tickets(
    shared: &Shared,
    tickets: &mut Vec<ApplyTicket>,
    accepted: u64,
    started: Instant,
    deadline: Duration,
) -> Option<Response> {
    let mut i = 0;
    while i < tickets.len() {
        match tickets[i].try_take() {
            Ok(Some(Ok(()))) => {
                tickets.swap_remove(i);
            }
            Ok(Some(Err(err))) => {
                return Some(Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("apply failed after admission: {err}"),
                });
            }
            Ok(None) => i += 1,
            Err(_) => {
                return Some(Response::Error {
                    code: ErrorCode::Internal,
                    message: "scheduler stopped after admission; write durability indeterminate"
                        .into(),
                });
            }
        }
    }
    if tickets.is_empty() {
        return Some(Response::SubmitOk { accepted });
    }
    if started.elapsed() >= deadline {
        shared
            .stats
            .deadline_rejections
            .fetch_add(1, Ordering::Relaxed);
        return Some(Response::Error {
            code: ErrorCode::DeadlineExceeded,
            message: format!(
                "batch admitted but not applied within {deadline:?}; durability indeterminate"
            ),
        });
    }
    None
}

/// Polls one pending ticket (or ticket fan-out). Returns true when it
/// resolved (a response was queued and `conn.pending` cleared).
fn poll_pending(shared: &Shared, backend: &Backend, conn: &mut Conn) -> bool {
    let Some(pending) = conn.pending.as_mut() else {
        return false;
    };
    let resolved: Option<Response> = match pending {
        Pending::Submit {
            table,
            mods,
            ticket,
            started,
            deadline,
        } => {
            let Backend::Single(handle) = backend else {
                return mismatched_pending(conn);
            };
            if ticket.is_some() {
                // Admitted under durable acks: the batch is in; only
                // the apply outcome is outstanding.
                let mut one = Vec::new();
                if let Some(t) = ticket.take() {
                    one.push(t);
                }
                let resolved =
                    poll_apply_tickets(shared, &mut one, mods.len() as u64, *started, *deadline);
                if resolved.is_none() {
                    *ticket = one.pop();
                }
                resolved
            } else {
                match try_submit(shared, handle, *table, mods) {
                    SubmitStep::Reply(resp) => Some(resp),
                    SubmitStep::Durable(t) => {
                        *ticket = Some(t);
                        None
                    }
                    SubmitStep::Parked if started.elapsed() >= *deadline => {
                        // Still nothing enqueued, so the rejection is
                        // retry-safe — Overloaded, not DeadlineExceeded.
                        shared
                            .stats
                            .overload_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        Some(Response::Error {
                            code: ErrorCode::Overloaded,
                            message: format!("ingest queue stayed at capacity for {deadline:?}"),
                        })
                    }
                    SubmitStep::Parked => None,
                }
            }
        }
        Pending::SubmitSharded {
            table,
            epoch,
            parts,
            accepted,
            total,
            tickets,
            started,
            deadline,
        } => {
            let Backend::Sharded(router) = backend else {
                return mismatched_pending(conn);
            };
            match try_submit_sharded(
                shared, router, *table, *epoch, parts, accepted, *total, tickets,
            ) {
                Some(resp) => Some(resp),
                None if parts.is_empty() => {
                    // Every sub-batch is admitted; with durable acks
                    // the reply now waits on the apply tickets.
                    poll_apply_tickets(shared, tickets, *accepted, *started, *deadline)
                }
                None if started.elapsed() >= *deadline => {
                    shared
                        .stats
                        .overload_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    if *accepted == 0 {
                        // Nothing enqueued on any shard: retry-safe.
                        Some(Response::Error {
                            code: ErrorCode::Overloaded,
                            message: format!(
                                "shard ingest queues stayed at capacity for {deadline:?}"
                            ),
                        })
                    } else {
                        // Part of the batch is in; an Overloaded reply
                        // would invite a double-applying retry. Be
                        // honest instead.
                        Some(Response::Error {
                            code: ErrorCode::Internal,
                            message: format!(
                                "partial submit: {accepted} events admitted, \
                                 {} of {total} sub-batches still queued at deadline",
                                parts.len()
                            ),
                        })
                    }
                }
                None => None,
            }
        }
        Pending::Read {
            ticket,
            fresh,
            want_rows,
            started,
            deadline,
        } => match ticket.try_take() {
            Ok(Some(Ok(r))) => {
                let checksum = r.rows.as_deref().map(rows_checksum).unwrap_or(0);
                Some(Response::ReadOk(WireReadResult {
                    fresh: *fresh,
                    lag: r.lag,
                    flush_cost: r.flush_cost,
                    violated: r.violated,
                    degraded: false,
                    checksum,
                    rows: if *want_rows { r.rows } else { None },
                }))
            }
            Ok(Some(Err(err))) => Some(Response::Error {
                code: ErrorCode::Internal,
                message: err.to_string(),
            }),
            Ok(None) => deadline_check(shared, *started, *deadline),
            Err(DeadlineError::Disconnected) | Err(_) => Some(stale_unavailable(shared)),
        },
        Pending::ReadSharded {
            tickets,
            results,
            degraded,
            want_rows,
            flush,
            started,
            deadline,
        } => {
            let Backend::Sharded(router) = backend else {
                return mismatched_pending(conn);
            };
            let mut failed: Option<Response> = None;
            let mut i = 0;
            while i < tickets.len() {
                let (shard, ticket) = &tickets[i];
                let shard = *shard;
                match ticket.try_take() {
                    Ok(Some(Ok(r))) => {
                        results.push(r);
                        tickets.swap_remove(i);
                    }
                    Ok(Some(Err(err))) => {
                        failed = Some(Response::Error {
                            code: ErrorCode::Internal,
                            message: err.to_string(),
                        });
                        break;
                    }
                    Ok(None) => i += 1,
                    Err(_) => {
                        // The shard died mid-read: skip it, serve the
                        // survivors, flag the merge degraded.
                        router.mark_dead(shard);
                        *degraded = true;
                        tickets.swap_remove(i);
                    }
                }
            }
            if failed.is_some() {
                failed
            } else if !tickets.is_empty() {
                deadline_check(shared, *started, *deadline)
            } else if results.is_empty() {
                Some(all_shards_unavailable())
            } else {
                match router.merge_reads(results) {
                    Ok(m) if *flush => Some(Response::FlushOk {
                        flush_cost: m.flush_cost,
                        violated: m.violated,
                    }),
                    Ok(m) => Some(Response::ReadOk(WireReadResult {
                        fresh: true,
                        lag: m.lag,
                        flush_cost: m.flush_cost,
                        violated: m.violated,
                        degraded: *degraded,
                        checksum: m.checksum,
                        rows: want_rows.then_some(m.rows),
                    })),
                    Err(err) => Some(Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("shard merge failed: {err}"),
                    }),
                }
            }
        }
        Pending::Flush {
            ticket,
            started,
            deadline,
        } => match ticket.try_take() {
            Ok(Some(Ok(r))) => Some(Response::FlushOk {
                flush_cost: r.flush_cost,
                violated: r.violated,
            }),
            Ok(Some(Err(err))) => Some(Response::Error {
                code: ErrorCode::Internal,
                message: err.to_string(),
            }),
            Ok(None) => deadline_check(shared, *started, *deadline),
            Err(_) => Some(stale_unavailable(shared)),
        },
        Pending::Metrics {
            ticket,
            per_shard,
            started,
            deadline,
        } => match ticket.try_take() {
            Ok(Some(snap)) => {
                let mut nm = net_metrics(&snap, shared);
                if let Backend::Single(handle) = backend {
                    nm.staleness_max = handle.snapshot_for_read().map(|s| s.lag()).unwrap_or(0);
                }
                if *per_shard {
                    nm.per_shard = Some(vec![ShardMetricsRow {
                        shard: 0,
                        live: true,
                        events_ingested: snap.events_ingested,
                        queue_depth: snap.queue_depth as u64,
                        flush_count: snap.flush_count,
                        total_flush_cost: snap.total_flush_cost,
                        budget: snap.budget,
                        staleness: nm.staleness_max,
                        epoch: 0,
                        replica_lag: 0,
                        health: 1,
                    }]);
                }
                Some(Response::MetricsOk(Box::new(nm)))
            }
            Ok(None) => deadline_check(shared, *started, *deadline),
            Err(_) => Some(stale_unavailable(shared)),
        },
        Pending::MetricsSharded {
            tickets,
            snaps,
            per_shard,
            started,
            deadline,
        } => {
            let Backend::Sharded(router) = backend else {
                return mismatched_pending(conn);
            };
            let mut i = 0;
            while i < tickets.len() {
                let (shard, ticket) = &tickets[i];
                let shard = *shard;
                match ticket.try_take() {
                    Ok(Some(snap)) => {
                        snaps.push((shard, snap));
                        tickets.swap_remove(i);
                    }
                    Ok(None) => i += 1,
                    Err(_) => {
                        router.mark_dead(shard);
                        tickets.swap_remove(i);
                    }
                }
            }
            if !tickets.is_empty() {
                deadline_check(shared, *started, *deadline)
            } else if snaps.is_empty() {
                Some(all_shards_unavailable())
            } else {
                Some(Response::MetricsOk(Box::new(sharded_metrics(
                    shared, router, snaps, *per_shard,
                ))))
            }
        }
        Pending::SubmitRegistry {
            table,
            mods,
            ticket,
            started,
            deadline,
        } => {
            let Backend::Registry(handle) = backend else {
                return mismatched_pending(conn);
            };
            if let Some(t) = ticket.as_ref() {
                poll_registry_apply(shared, t, mods.len() as u64, *started, *deadline)
            } else {
                match try_submit_registry(shared, handle, *table, mods) {
                    SubmitRegistryStep::Reply(resp) => Some(resp),
                    SubmitRegistryStep::Durable(t) => {
                        *ticket = Some(t);
                        None
                    }
                    SubmitRegistryStep::Parked if started.elapsed() >= *deadline => {
                        shared
                            .stats
                            .overload_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        Some(Response::Error {
                            code: ErrorCode::Overloaded,
                            message: format!("ingest queue stayed at capacity for {deadline:?}"),
                        })
                    }
                    SubmitRegistryStep::Parked => None,
                }
            }
        }
        Pending::ReadRegistry {
            ticket,
            want_rows,
            started,
            deadline,
        } => match ticket.try_take() {
            Ok(Some(Ok(r))) => {
                let checksum = r.rows.as_deref().map(rows_checksum).unwrap_or(0);
                Some(Response::ReadOk(WireReadResult {
                    fresh: true,
                    lag: r.lag,
                    flush_cost: r.flush_cost,
                    violated: r.violated,
                    degraded: false,
                    checksum,
                    rows: if *want_rows { r.rows } else { None },
                }))
            }
            Ok(Some(Err(err))) => Some(Response::Error {
                code: ErrorCode::Internal,
                message: err.to_string(),
            }),
            Ok(None) => deadline_check(shared, *started, *deadline),
            Err(_) => Some(stale_unavailable(shared)),
        },
        Pending::FlushRegistry {
            tickets,
            flush_cost,
            violated,
            started,
            deadline,
        } => {
            let mut failed: Option<Response> = None;
            let mut i = 0;
            while i < tickets.len() {
                match tickets[i].try_take() {
                    Ok(Some(Ok(r))) => {
                        *flush_cost += r.flush_cost;
                        *violated |= r.violated;
                        tickets.swap_remove(i);
                    }
                    Ok(Some(Err(err))) => {
                        failed = Some(Response::Error {
                            code: ErrorCode::Internal,
                            message: err.to_string(),
                        });
                        break;
                    }
                    Ok(None) => i += 1,
                    Err(_) => {
                        failed = Some(stale_unavailable(shared));
                        break;
                    }
                }
            }
            if failed.is_some() {
                failed
            } else if !tickets.is_empty() {
                deadline_check(shared, *started, *deadline)
            } else {
                Some(Response::FlushOk {
                    flush_cost: *flush_cost,
                    violated: *violated,
                })
            }
        }
        Pending::MetricsRegistry {
            ticket,
            per_shard,
            per_view,
            started,
            deadline,
        } => match ticket.try_take() {
            Ok(Some(mm)) => Some(Response::MetricsOk(Box::new(registry_net_metrics(
                shared, &mm, *per_shard, *per_view,
            )))),
            Ok(None) => deadline_check(shared, *started, *deadline),
            Err(_) => Some(stale_unavailable(shared)),
        },
    };
    match resolved {
        Some(resp) => {
            conn.pending = None;
            queue_response(conn, &resp);
            true
        }
        None => false,
    }
}

/// Defensive: a pending variant met the wrong backend kind (cannot
/// happen — variants are constructed per backend). Fail the request
/// typed rather than panicking the worker.
fn mismatched_pending(conn: &mut Conn) -> bool {
    conn.pending = None;
    queue_response(
        conn,
        &Response::Error {
            code: ErrorCode::Internal,
            message: "pending request does not match server backend".into(),
        },
    );
    true
}

/// Folds the gathered per-shard snapshots into the merged wire metrics:
/// counters sum, staleness takes the worst shard, and the optional
/// per-shard breakdown includes dead slots with `live: false`.
fn sharded_metrics(
    shared: &Shared,
    router: &ShardRouter,
    snaps: &[(usize, MetricsSnapshot)],
    per_shard: bool,
) -> NetMetrics {
    let merged = merge_metrics(&snaps.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>());
    let mut nm = net_metrics(&merged, shared);
    nm.shards = router.shards() as u64;
    nm.shards_live = snaps.len() as u64;
    let lag_of = |i: usize| -> u64 {
        router
            .handle(i)
            .and_then(|h| h.snapshot_for_read())
            .map(|s| s.lag())
            .unwrap_or(0)
    };
    let replica_lag_of =
        |i: usize| -> u64 { router.replica_status(i).map(|r| r.lag()).unwrap_or(0) };
    nm.staleness_max = (0..router.shards()).map(lag_of).max().unwrap_or(0);
    nm.failovers = router.failovers();
    nm.cluster_epoch = router.cluster_epoch();
    nm.replica_lag_max = (0..router.shards()).map(replica_lag_of).max().unwrap_or(0);
    if per_shard {
        let rows = (0..router.shards())
            .map(|i| match snaps.iter().find(|(s, _)| *s == i) {
                Some((_, m)) => ShardMetricsRow {
                    shard: i as u32,
                    live: true,
                    events_ingested: m.events_ingested,
                    queue_depth: m.queue_depth as u64,
                    flush_count: m.flush_count,
                    total_flush_cost: m.total_flush_cost,
                    budget: m.budget,
                    staleness: lag_of(i),
                    epoch: router.epoch_of(i),
                    replica_lag: replica_lag_of(i),
                    health: shard_health(router, i, true),
                },
                None => ShardMetricsRow {
                    shard: i as u32,
                    live: false,
                    events_ingested: 0,
                    queue_depth: 0,
                    flush_count: 0,
                    total_flush_cost: 0.0,
                    budget: 0.0,
                    staleness: 0,
                    epoch: router.epoch_of(i),
                    replica_lag: replica_lag_of(i),
                    health: shard_health(router, i, false),
                },
            })
            .collect();
        nm.per_shard = Some(rows);
    }
    nm
}

/// The per-shard health code surfaced in metrics rows: 0 = leader dead,
/// 1 = leader live with no (healthy) follower tailing, 2 = leader live
/// with a healthy follower.
fn shard_health(router: &ShardRouter, i: usize, live: bool) -> u8 {
    if !live {
        return 0;
    }
    match router.replica_status(i) {
        Some(r) if r.healthy() => 2,
        _ => 1,
    }
}

/// `None` = keep waiting; a response once the budget is spent.
fn deadline_check(shared: &Shared, started: Instant, deadline: Duration) -> Option<Response> {
    if started.elapsed() < deadline {
        return None;
    }
    shared
        .stats
        .deadline_rejections
        .fetch_add(1, Ordering::Relaxed);
    Some(Response::Error {
        code: ErrorCode::DeadlineExceeded,
        message: format!(
            "read missed its {deadline:?} deadline after {:?} queued",
            started.elapsed()
        ),
    })
}

fn unavailable(handle: &ServeHandle) -> Response {
    Response::Error {
        code: ErrorCode::Unavailable,
        message: match handle.last_error() {
            Some(e) => format!("scheduler stopped: {e}"),
            None => "scheduler stopped".into(),
        },
    }
}

/// `unavailable` for contexts that only have the shared state (the
/// pending poller); the ticket's disconnect already names the cause.
fn stale_unavailable(_shared: &Shared) -> Response {
    Response::Error {
        code: ErrorCode::Unavailable,
        message: "scheduler stopped".into(),
    }
}

fn queue_response(conn: &mut Conn, resp: &Response) {
    append_frame(&mut conn.wbuf, &encode_response(resp));
}

/// Writes buffered response bytes until the socket would block.
fn flush_wbuf(conn: &mut Conn) {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
        if conn.close_after_flush {
            conn.dead = true;
        }
    } else if conn.wpos > WBUF_HIGH {
        // Keep the buffer from holding a long-dead prefix.
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
}

/// Folds a runtime snapshot and the net-layer counters into the wire
/// metrics struct.
fn net_metrics(snap: &MetricsSnapshot, shared: &Shared) -> NetMetrics {
    let stats = &shared.stats;
    NetMetrics {
        events_ingested: snap.events_ingested,
        ticks: snap.ticks,
        flush_count: snap.flush_count,
        total_flush_cost: snap.total_flush_cost,
        fresh_reads: snap.fresh_reads,
        stale_reads: snap.stale_reads,
        snapshot_reads: snap.snapshot_reads,
        constraint_violations: snap.constraint_violations,
        policy_demotions: snap.policy_demotions,
        recalibrations: snap.recalibrations,
        degraded: snap.degraded,
        queue_depth: snap.queue_depth as u64,
        max_queue_depth: snap.max_queue_depth as u64,
        shed_events: snap.shed_events,
        ingest_errors: snap.ingest_errors,
        wal_records: snap.wal_records,
        wal_fsync_lag: snap.wal_fsync_lag,
        wal_sync_every: snap.wal_sync_every,
        connections_active: stats.connections_active.load(Ordering::Relaxed),
        connections_total: stats.connections_total.load(Ordering::Relaxed),
        connections_rejected: stats.connections_rejected.load(Ordering::Relaxed),
        requests: stats.requests.load(Ordering::Relaxed),
        submitted_events: stats.submitted_events.load(Ordering::Relaxed),
        overload_rejections: stats.overload_rejections.load(Ordering::Relaxed),
        deadline_rejections: stats.deadline_rejections.load(Ordering::Relaxed),
        shards: 1,
        shards_live: 1,
        staleness_max: 0,
        budget: snap.budget,
        budget_rebalances: snap.budget_rebalances,
        failovers: 0,
        cluster_epoch: 0,
        replica_lag_max: 0,
        shards_auto: shared.cfg.shards_auto,
        views: 1,
        subscribers: 0,
        deltas_pushed: 0,
        sub_lag_max: 0,
        heavy_keys: snap.heavy_keys,
        heavy_reclassifications: snap.heavy_reclassifications,
        heavy_hits: snap.heavy_hits,
        light_hits: snap.light_hits,
        per_shard: None,
        per_view: None,
        last_error: snap.last_error.clone(),
    }
}

/// Folds a registry metrics snapshot into the wire metrics struct:
/// scheduler-global counters plus the view axis (fleet totals always,
/// per-view rows when asked for).
fn registry_net_metrics(
    shared: &Shared,
    mm: &MultiMetricsSnapshot,
    per_shard: bool,
    per_view: bool,
) -> NetMetrics {
    let mut nm = net_metrics(&mm.global, shared);
    nm.views = mm.views.len() as u64;
    nm.subscribers = mm.views.iter().map(|v| v.subscribers).sum();
    nm.deltas_pushed = mm.views.iter().map(|v| v.deltas_pushed).sum();
    nm.sub_lag_max = mm.views.iter().map(|v| v.sub_lag_max).max().unwrap_or(0);
    nm.staleness_max = mm.views.iter().map(|v| v.pending).max().unwrap_or(0);
    if per_shard {
        nm.per_shard = Some(vec![ShardMetricsRow {
            shard: 0,
            live: true,
            events_ingested: mm.global.events_ingested,
            queue_depth: mm.global.queue_depth as u64,
            flush_count: mm.global.flush_count,
            total_flush_cost: mm.global.total_flush_cost,
            budget: mm.global.budget,
            staleness: nm.staleness_max,
            epoch: 0,
            replica_lag: 0,
            health: 1,
        }]);
    }
    if per_view {
        nm.per_view = Some(
            mm.views
                .iter()
                .map(|v| ViewMetricsRow {
                    view: v.view,
                    group: v.group,
                    flushes: v.flushes,
                    pending: v.pending,
                    violations: v.violations,
                    deltas_pushed: v.deltas_pushed,
                    subscribers: v.subscribers,
                    sub_lag_max: v.sub_lag_max,
                })
                .collect(),
        );
    }
    nm
}

/// The same order-independent content checksum as
/// `MaterializedView::result_checksum`, computed over shipped rows.
fn rows_checksum(rows: &[WRow]) -> u64 {
    let mut acc: u64 = 0;
    for (row, w) in rows {
        acc = acc.wrapping_add(fxhash::hash_one(&(row, w)));
    }
    acc
}
