//! The std-only TCP server: thread-per-connection over a
//! [`ServeHandle`], with admission control.
//!
//! ## Admission control
//!
//! Three rejection points, all *before* any side effect:
//!
//! 1. **Connection cap** — past [`NetServerConfig::max_connections`]
//!    open connections, the handshake answers
//!    [`HandshakeStatus::Overloaded`] and closes. No frame is ever left
//!    half-written.
//! 2. **Queue high water** — a `Submit` arriving while the scheduler's
//!    ingest queue sits at or above
//!    [`NetServerConfig::submit_high_water`] is answered with
//!    [`ErrorCode::Overloaded`] without ingesting *any* of its batch,
//!    which is what makes client-side submit retries safe. Below the
//!    mark, submits ride the bounded queue's own backpressure.
//! 3. **Deadlines** — a request whose budget is already spent is
//!    answered [`ErrorCode::DeadlineExceeded`] instead of being
//!    started; reads additionally give up (typed, not torn) when the
//!    reply misses the remaining budget while queued behind a backlog.
//!
//! A corrupt inbound frame is answered with a best-effort
//! [`ErrorCode::BadRequest`] and the connection is closed — a byte
//! stream cannot be resynchronised past garbage, exactly like the WAL's
//! hard-corruption rule.
//!
//! ## Shutdown
//!
//! [`NetServer::shutdown`] stops accepting, then *drains*: connection
//! threads observe the stop flag at their next request boundary, finish
//! the in-flight request, and exit; `shutdown` joins every one of them
//! before returning, so no reply is ever abandoned mid-write.

use crate::frame::{
    read_hello, recv_request, send_response, write_hello_reply, ErrorCode, FrameError,
    HandshakeStatus, NetMetrics, Request, RequestFrame, Response, WireReadResult, NET_VERSION,
};
use aivm_engine::{fxhash, WRow};
use aivm_serve::{DeadlineError, MetricsSnapshot, ReadMode, ServeHandle};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the TCP server.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Hard cap on concurrently open connections; the cap'th + 1 client
    /// is rejected at the handshake with [`HandshakeStatus::Overloaded`].
    pub max_connections: usize,
    /// Reject `Submit` requests while the scheduler queue holds at
    /// least this many messages. `None` disables the check (pure
    /// backpressure).
    pub submit_high_water: Option<usize>,
    /// Deadline applied to requests that carry none (`deadline_ms` 0).
    pub default_deadline: Duration,
    /// How often the accept loop polls for shutdown.
    pub poll_interval: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_connections: 64,
            submit_high_water: None,
            default_deadline: Duration::from_secs(5),
            poll_interval: Duration::from_millis(1),
        }
    }
}

/// Network-layer counters, shared across connection threads.
#[derive(Default)]
struct NetStats {
    connections_active: AtomicU64,
    connections_total: AtomicU64,
    connections_rejected: AtomicU64,
    requests: AtomicU64,
    submitted_events: AtomicU64,
    overload_rejections: AtomicU64,
    deadline_rejections: AtomicU64,
}

/// A running TCP server. Dropping it without calling
/// [`NetServer::shutdown`] leaks the accept thread; call `shutdown`.
pub struct NetServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    ///
    /// `n_tables` is the view's base-table count, used to reject
    /// out-of-range `Submit.table` values as [`ErrorCode::BadRequest`]
    /// before they reach the scheduler.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: ServeHandle,
        n_tables: usize,
        cfg: NetServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let stats = Arc::new(NetStats::default());
        let accept_join = std::thread::spawn(move || {
            accept_loop(listener, handle, n_tables, cfg, accept_stop, stats)
        });
        Ok(NetServer {
            addr: local,
            stop,
            accept_join: Some(accept_join),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every open connection (each finishes its
    /// in-flight request), and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    handle: ServeHandle,
    n_tables: usize,
    cfg: NetServerConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
) {
    let mut conns: HashMap<u64, JoinHandle<()>> = HashMap::new();
    let mut next_id = 0u64;
    let done: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    while !stop.load(Ordering::SeqCst) {
        // Reap finished connection threads so the map stays bounded.
        for id in done.lock().unwrap_or_else(|e| e.into_inner()).drain(..) {
            if let Some(j) = conns.remove(&id) {
                let _ = j.join();
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stats.connections_total.fetch_add(1, Ordering::Relaxed);
                if conns.len() >= cfg.max_connections.max(1) {
                    stats.connections_rejected.fetch_add(1, Ordering::Relaxed);
                    reject_connection(stream);
                    continue;
                }
                let id = next_id;
                next_id += 1;
                let ctx = ConnCtx {
                    handle: handle.clone(),
                    n_tables,
                    cfg: cfg.clone(),
                    stop: Arc::clone(&stop),
                    stats: Arc::clone(&stats),
                };
                let done = Arc::clone(&done);
                conns.insert(
                    id,
                    std::thread::spawn(move || {
                        serve_connection(stream, ctx);
                        done.lock().unwrap_or_else(|e| e.into_inner()).push(id);
                    }),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(cfg.poll_interval);
            }
            Err(_) => std::thread::sleep(cfg.poll_interval),
        }
    }
    // Drain: connection threads see the stop flag at their next request
    // boundary and exit after finishing in-flight work.
    for (_, j) in conns.drain() {
        let _ = j.join();
    }
}

/// Answers an over-cap connection with a typed handshake rejection
/// (best-effort: the peer may already be gone).
fn reject_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = read_hello(&mut stream);
    let _ = write_hello_reply(&mut stream, HandshakeStatus::Overloaded);
}

struct ConnCtx {
    handle: ServeHandle,
    n_tables: usize,
    cfg: NetServerConfig,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
}

fn serve_connection(mut stream: TcpStream, ctx: ConnCtx) {
    ctx.stats.connections_active.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let status = match read_hello(&mut stream) {
        Ok(v) if v == NET_VERSION => HandshakeStatus::Ok,
        Ok(_) => HandshakeStatus::VersionMismatch,
        Err(_) => {
            ctx.stats.connections_active.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    };
    if write_hello_reply(&mut stream, status).is_err() || status != HandshakeStatus::Ok {
        ctx.stats.connections_active.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    // Bound every blocking read so the drain in `shutdown` cannot hang
    // behind an idle connection holding its socket open.
    let _ = stream.set_read_timeout(Some(ctx.cfg.poll_interval.max(Duration::from_millis(1))));
    while !ctx.stop.load(Ordering::SeqCst) {
        let req = match recv_request(&mut stream) {
            Ok(req) => req,
            Err(e) if e.is_timeout() => continue,
            Err(FrameError::Closed) | Err(FrameError::Io(_)) => break,
            Err(FrameError::Corrupt(err)) => {
                // The stream cannot be resynchronised; answer with a
                // typed error (best-effort) and drop the connection.
                let _ = send_response(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::BadRequest,
                        message: format!("undecodable request: {err}"),
                    },
                );
                break;
            }
        };
        ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
        let resp = handle_request(&req, &ctx);
        if send_response(&mut stream, &resp).is_err() {
            break;
        }
    }
    ctx.stats.connections_active.fetch_sub(1, Ordering::Relaxed);
}

/// The request's remaining deadline budget (`deadline_ms` 0 falls back
/// to the configured default).
fn deadline_of(req: &RequestFrame, cfg: &NetServerConfig) -> Duration {
    if req.deadline_ms == 0 {
        cfg.default_deadline
    } else {
        Duration::from_millis(u64::from(req.deadline_ms))
    }
}

fn handle_request(req: &RequestFrame, ctx: &ConnCtx) -> Response {
    let deadline = deadline_of(req, &ctx.cfg);
    match &req.request {
        Request::Ping => Response::Pong,
        Request::Submit { table, mods } => submit(*table, mods, ctx),
        Request::Read { fresh, want_rows } => read(*fresh, *want_rows, deadline, ctx),
        Request::Metrics => metrics(ctx),
        Request::Flush => match read(true, false, deadline, ctx) {
            Response::ReadOk(r) => Response::FlushOk {
                flush_cost: r.flush_cost,
                violated: r.violated,
            },
            other => other,
        },
    }
}

fn submit(table: u32, mods: &[aivm_engine::Modification], ctx: &ConnCtx) -> Response {
    if (table as usize) >= ctx.n_tables {
        return Response::Error {
            code: ErrorCode::BadRequest,
            message: format!("table {table} out of range ({} tables)", ctx.n_tables),
        };
    }
    // Admission check for the WHOLE batch before the first ingest: a
    // rejected submit has provably had no side effect, so the client may
    // retry it without double-applying.
    if let Some(hw) = ctx.cfg.submit_high_water {
        if ctx.handle.queue_depth() >= hw {
            ctx.stats
                .overload_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Response::Error {
                code: ErrorCode::Overloaded,
                message: format!(
                    "ingest queue at {} (high water {hw})",
                    ctx.handle.queue_depth()
                ),
            };
        }
    }
    for m in mods {
        if !ctx.handle.ingest_dml(table as usize, m.clone()) {
            return unavailable(ctx);
        }
    }
    ctx.stats
        .submitted_events
        .fetch_add(mods.len() as u64, Ordering::Relaxed);
    Response::SubmitOk {
        accepted: mods.len() as u64,
    }
}

fn read(fresh: bool, want_rows: bool, deadline: Duration, ctx: &ConnCtx) -> Response {
    // Stale reads are answered straight from the published
    // flush-boundary snapshot: no scheduler round-trip, the checksum is
    // precomputed, and rows are cloned only when the client asked for
    // them. Deadlines cannot fire here — there is nothing to wait for.
    if !fresh {
        if let Some(snap) = ctx.handle.snapshot_for_read() {
            return Response::ReadOk(WireReadResult {
                fresh: false,
                lag: snap.lag(),
                flush_cost: 0.0,
                violated: false,
                checksum: snap.checksum,
                rows: want_rows.then(|| snap.rows.clone()),
            });
        }
    }
    let mode = if fresh {
        ReadMode::Fresh
    } else {
        ReadMode::Stale
    };
    let started = Instant::now();
    match ctx.handle.read_deadline(mode, deadline) {
        Ok(Ok(r)) => {
            let checksum = r.rows.as_deref().map(rows_checksum).unwrap_or(0);
            Response::ReadOk(WireReadResult {
                fresh,
                lag: r.lag,
                flush_cost: r.flush_cost,
                violated: r.violated,
                checksum,
                rows: if want_rows { r.rows } else { None },
            })
        }
        Ok(Err(err)) => Response::Error {
            code: ErrorCode::Internal,
            message: err.to_string(),
        },
        Err(DeadlineError::TimedOut) => {
            ctx.stats
                .deadline_rejections
                .fetch_add(1, Ordering::Relaxed);
            Response::Error {
                code: ErrorCode::DeadlineExceeded,
                message: format!(
                    "read missed its {deadline:?} deadline after {:?} queued",
                    started.elapsed()
                ),
            }
        }
        Err(DeadlineError::Disconnected) => unavailable(ctx),
    }
}

fn metrics(ctx: &ConnCtx) -> Response {
    match ctx.handle.metrics() {
        Some(snap) => Response::MetricsOk(Box::new(net_metrics(&snap, &ctx.stats))),
        None => unavailable(ctx),
    }
}

fn unavailable(ctx: &ConnCtx) -> Response {
    Response::Error {
        code: ErrorCode::Unavailable,
        message: match ctx.handle.last_error() {
            Some(e) => format!("scheduler stopped: {e}"),
            None => "scheduler stopped".into(),
        },
    }
}

/// Folds a runtime snapshot and the net-layer counters into the wire
/// metrics struct.
fn net_metrics(snap: &MetricsSnapshot, stats: &NetStats) -> NetMetrics {
    NetMetrics {
        events_ingested: snap.events_ingested,
        ticks: snap.ticks,
        flush_count: snap.flush_count,
        total_flush_cost: snap.total_flush_cost,
        fresh_reads: snap.fresh_reads,
        stale_reads: snap.stale_reads,
        snapshot_reads: snap.snapshot_reads,
        constraint_violations: snap.constraint_violations,
        policy_demotions: snap.policy_demotions,
        recalibrations: snap.recalibrations,
        degraded: snap.degraded,
        queue_depth: snap.queue_depth as u64,
        max_queue_depth: snap.max_queue_depth as u64,
        shed_events: snap.shed_events,
        ingest_errors: snap.ingest_errors,
        wal_records: snap.wal_records,
        wal_fsync_lag: snap.wal_fsync_lag,
        wal_sync_every: snap.wal_sync_every,
        connections_active: stats.connections_active.load(Ordering::Relaxed),
        connections_total: stats.connections_total.load(Ordering::Relaxed),
        connections_rejected: stats.connections_rejected.load(Ordering::Relaxed),
        requests: stats.requests.load(Ordering::Relaxed),
        submitted_events: stats.submitted_events.load(Ordering::Relaxed),
        overload_rejections: stats.overload_rejections.load(Ordering::Relaxed),
        deadline_rejections: stats.deadline_rejections.load(Ordering::Relaxed),
        last_error: snap.last_error.clone(),
    }
}

/// The same order-independent content checksum as
/// `MaterializedView::result_checksum`, computed over shipped rows.
fn rows_checksum(rows: &[WRow]) -> u64 {
    let mut acc: u64 = 0;
    for (row, w) in rows {
        acc = acc.wrapping_add(fxhash::hash_one(&(row, w)));
    }
    acc
}
