//! `aivm-client` — the client side of the `aivm-net` wire protocol.
//!
//! A [`Client`] owns a small pool of TCP connections to one server and
//! gives every request three behaviours the raw protocol leaves to the
//! caller:
//!
//! * **Deadline propagation** — each request runs under one deadline
//!   budget ([`ClientConfig::deadline`]). The *remaining* budget at
//!   send time rides the wire in `deadline_ms` (so the server refuses
//!   work the client has already given up on), bounds the socket
//!   connect/read timeouts, and caps retry backoff sleeps. When the
//!   budget is spent, the call returns
//!   [`ClientError::DeadlineExceeded`] — it never blocks past it.
//! * **Bounded retries with jittered backoff** — transient failures
//!   retry up to [`ClientConfig::retries`] times, sleeping
//!   `base × 2^attempt × uniform(0.5, 1.0)` between attempts (seeded,
//!   so test runs are reproducible). What counts as transient depends
//!   on idempotency: reads, pings, metrics and flushes retry on any
//!   transport error or server `Overloaded`; a **submit** retries
//!   *only* on rejections the server guarantees happened before any
//!   side effect (`Overloaded`, connection-cap handshake rejections,
//!   dial failures) — a transport error mid-submit is returned to the
//!   caller, because retrying could double-apply the batch.
//! * **Connection pooling** — completed requests return their
//!   connection to a bounded pool; any error discards it (a failed
//!   stream cannot be resynchronised). Pool checkout is cheap enough to
//!   share one `Client` across threads (`&self` methods, internal
//!   locking).
//! * **A circuit breaker** — after [`ClientConfig::breaker_threshold`]
//!   consecutive transport-level failures the endpoint is presumed
//!   down and requests fail fast with [`ClientError::CircuitOpen`]
//!   (no dial, no deadline burned) until a jittered cooldown elapses;
//!   then exactly one request is let through as a half-open probe —
//!   its outcome closes or re-opens the circuit. Typed server
//!   rejections (`Overloaded`, `StaleEpoch`, ...) prove the endpoint
//!   alive and never trip the breaker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aivm_engine::{EngineError, Modification, WRow};
use aivm_net::{
    read_hello_reply, recv_response, send_request, write_hello, ErrorCode, FrameError,
    HandshakeStatus, NetMetrics, Request, RequestFrame, Response, WireReadResult,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Client behaviour knobs.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-request deadline budget (connect + queue + retries + reply).
    pub deadline: Duration,
    /// Retries after the first attempt (0 = fail fast).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Idle connections kept pooled (further ones are closed on
    /// return).
    pub pool: usize,
    /// Seed for backoff jitter (reproducible retry schedules).
    pub seed: u64,
    /// Consecutive transport failures that open the circuit breaker
    /// (`0` disables it).
    pub breaker_threshold: u32,
    /// How long an open circuit rejects before letting a half-open
    /// probe through (jittered `× uniform(0.5, 1.0)` per trip, like
    /// retry backoff, so a fleet of clients does not re-probe in sync).
    pub breaker_cooldown: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline: Duration::from_secs(5),
            retries: 3,
            backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(200),
            pool: 2,
            seed: 0,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(100),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure after retries (or on a non-retryable request).
    Io(std::io::Error),
    /// The byte stream failed validation; the connection was dropped.
    Protocol(EngineError),
    /// The server answered with a typed error frame.
    Rejected {
        /// The taxonomy bucket.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The handshake was refused (server at its connection cap after
    /// retries, or a protocol version mismatch).
    Handshake(HandshakeStatus),
    /// The deadline budget was spent before a reply arrived.
    DeadlineExceeded,
    /// The server replied with a frame of the wrong kind.
    UnexpectedResponse(&'static str),
    /// The circuit breaker is open: recent consecutive transport
    /// failures marked the endpoint down, and the cooldown has not
    /// elapsed. Nothing was sent.
    CircuitOpen,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Rejected { code, message } => write!(f, "rejected ({code}): {message}"),
            ClientError::Handshake(s) => write!(f, "handshake refused: {s:?}"),
            ClientError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ClientError::UnexpectedResponse(what) => write!(f, "unexpected response: {what}"),
            ClientError::CircuitOpen => write!(f, "circuit open: endpoint presumed down"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// True when the failure is the server saying "not now" — the
    /// overload signals loadgen counts separately from hard errors.
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                code: ErrorCode::Overloaded,
                ..
            } | ClientError::Handshake(HandshakeStatus::Overloaded)
        )
    }

    /// True when a sharded server rejected the request because its
    /// owning shard is down. Guaranteed to precede any side effect, so
    /// retrying is safe — and useful, since a killed shard may rejoin
    /// after recovery.
    pub fn is_shard_unavailable(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                code: ErrorCode::ShardUnavailable,
                ..
            }
        )
    }

    /// True when a sharded server rejected a submit because it was
    /// stamped with a pre-failover epoch. Guaranteed to precede any
    /// side effect; refresh the epoch (from `Metrics`) and retry.
    pub fn is_stale_epoch(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                code: ErrorCode::StaleEpoch,
                ..
            }
        )
    }
}

/// Retry counters, for loadgen summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retries triggered by `Overloaded` rejections (frame or
    /// handshake).
    pub overload_retries: u64,
    /// Retries triggered by transport errors (idempotent requests and
    /// pre-send dial failures only).
    pub transport_retries: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Requests rejected fast with [`ClientError::CircuitOpen`].
    pub breaker_rejections: u64,
}

/// Circuit-breaker state (see the crate docs).
enum BreakerState {
    /// Normal service; counts consecutive transport failures.
    Closed { fails: u32 },
    /// Failing fast until the cooldown elapses.
    Open { until: Instant },
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

/// A pooled, deadline-aware connection to one `aivm-net` server. Share
/// by reference across threads; all methods take `&self`.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    rng: Mutex<SmallRng>,
    overload_retries: AtomicU64,
    transport_retries: AtomicU64,
    breaker: Mutex<BreakerState>,
    breaker_trips: AtomicU64,
    breaker_rejections: AtomicU64,
}

impl Client {
    /// Creates a client for `addr`. No connection is opened until the
    /// first request.
    pub fn new(addr: impl ToSocketAddrs, cfg: ClientConfig) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address resolved")
        })?;
        Ok(Client {
            addr,
            rng: Mutex::new(SmallRng::seed_from_u64(cfg.seed)),
            cfg,
            pool: Mutex::new(Vec::new()),
            overload_retries: AtomicU64::new(0),
            transport_retries: AtomicU64::new(0),
            breaker: Mutex::new(BreakerState::Closed { fails: 0 }),
            breaker_trips: AtomicU64::new(0),
            breaker_rejections: AtomicU64::new(0),
        })
    }

    /// Retry counters accumulated over the client's lifetime.
    pub fn retry_stats(&self) -> RetryStats {
        RetryStats {
            overload_retries: self.overload_retries.load(Ordering::Relaxed),
            transport_retries: self.transport_retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::UnexpectedResponse("expected Pong")),
        }
    }

    /// Submits a DML batch for one base table (position within the
    /// view). Retried only on rejections that provably preceded any
    /// side effect; on success every modification was ingested, in
    /// order.
    pub fn submit(&self, table: u32, mods: Vec<Modification>) -> Result<u64, ClientError> {
        self.submit_fenced(0, table, mods)
    }

    /// [`Client::submit`] stamped with the target shard's fencing
    /// `epoch` (from a prior `Metrics` per-shard row; `0` skips the
    /// check). A sharded server rejects the batch with
    /// [`ErrorCode::StaleEpoch`] *before any side effect* when the
    /// shard has failed over since — the caller refreshes the epoch
    /// and retries safely, and a batch routed through a deposed
    /// leader's view of the cluster is never double-applied.
    pub fn submit_fenced(
        &self,
        epoch: u64,
        table: u32,
        mods: Vec<Modification>,
    ) -> Result<u64, ClientError> {
        match self.request(Request::Submit { epoch, table, mods })? {
            Response::SubmitOk { accepted } => Ok(accepted),
            _ => Err(ClientError::UnexpectedResponse("expected SubmitOk")),
        }
    }

    /// Reads view 0. `fresh` forces a flush-then-read (≤ C);
    /// `want_rows` ships the materialized rows, not just the checksum.
    pub fn read(&self, fresh: bool, want_rows: bool) -> Result<WireReadResult, ClientError> {
        self.read_view(0, fresh, want_rows)
    }

    /// Reads one registry view by id (single-view servers only have
    /// view 0). Stale reads are served wait-free from the published
    /// snapshot; fresh reads flush the view's sharing group first.
    pub fn read_view(
        &self,
        view: u32,
        fresh: bool,
        want_rows: bool,
    ) -> Result<WireReadResult, ClientError> {
        match self.request(Request::Read {
            view,
            fresh,
            want_rows,
        })? {
            Response::ReadOk(r) => Ok(r),
            _ => Err(ClientError::UnexpectedResponse("expected ReadOk")),
        }
    }

    /// Fetches a metrics snapshot (aggregated across shards on a
    /// sharded server).
    pub fn metrics(&self) -> Result<NetMetrics, ClientError> {
        self.metrics_full(false, false)
    }

    /// Fetches a metrics snapshot, optionally including the per-shard
    /// breakdown (`per_shard`; a single-runtime server answers with its
    /// one shard).
    pub fn metrics_detailed(&self, per_shard: bool) -> Result<NetMetrics, ClientError> {
        self.metrics_full(per_shard, false)
    }

    /// Fetches a metrics snapshot with any combination of the per-shard
    /// and per-view breakdowns (the latter only a registry server
    /// fills).
    pub fn metrics_full(&self, per_shard: bool, per_view: bool) -> Result<NetMetrics, ClientError> {
        match self.request(Request::Metrics {
            per_shard,
            per_view,
        })? {
            Response::MetricsOk(m) => Ok(*m),
            _ => Err(ClientError::UnexpectedResponse("expected MetricsOk")),
        }
    }

    /// Forces a full flush, returning `(flush_cost, violated)`.
    pub fn flush(&self) -> Result<(f64, bool), ClientError> {
        match self.request(Request::Flush)? {
            Response::FlushOk {
                flush_cost,
                violated,
            } => Ok((flush_cost, violated)),
            _ => Err(ClientError::UnexpectedResponse("expected FlushOk")),
        }
    }

    /// Opens a live push subscription on a registry view, returning a
    /// blocking [`Subscription`] iterator over
    /// [`SubscriptionEvent`]s.
    ///
    /// `from_seq` is the first delta seq wanted (the subscriber's last
    /// folded seq + 1); [`Client::subscribe_head`] starts from the
    /// current snapshot instead. A `from_seq` the server no longer
    /// holds deltas for degrades to a snapshot resync — the first
    /// event is then a [`SubscriptionEvent::Snapshot`] replacing any
    /// folded state, never an error.
    ///
    /// The subscription rides its own dedicated connection (pushes are
    /// unsolicited frames; pooled request/reply connections never see
    /// them), so dropping the `Subscription` closes it and the server
    /// releases the subscriber slot.
    pub fn subscribe(&self, view: u32, from_seq: u64) -> Result<Subscription, ClientError> {
        let remaining = self.cfg.deadline;
        let mut stream = self.dial(remaining)?;
        let deadline_ms = remaining.as_millis().min(u128::from(u32::MAX)) as u32;
        send_request(
            &mut stream,
            &RequestFrame {
                deadline_ms,
                request: Request::Subscribe { view, from_seq },
            },
        )
        .map_err(ClientError::Io)?;
        match recv_sub_response(&mut stream)? {
            Response::SubscribeOk {
                view: v,
                seq,
                resync,
                checksum,
                rows,
            } => {
                if v != view {
                    return Err(ClientError::UnexpectedResponse(
                        "SubscribeOk for a different view",
                    ));
                }
                let pending = resync.then_some(SubscriptionEvent::Snapshot {
                    view,
                    seq,
                    checksum,
                    rows,
                });
                Ok(Subscription {
                    stream,
                    view,
                    next_seq: seq + 1,
                    pending,
                    done: false,
                })
            }
            Response::Error { code, message } => Err(ClientError::Rejected { code, message }),
            _ => Err(ClientError::UnexpectedResponse("expected SubscribeOk")),
        }
    }

    /// [`Client::subscribe`] starting from the current snapshot: the
    /// first event is always the full state, then deltas follow.
    pub fn subscribe_head(&self, view: u32) -> Result<Subscription, ClientError> {
        self.subscribe(view, u64::MAX)
    }

    /// Runs one request under the deadline/retry/breaker policy
    /// described in the crate docs.
    pub fn request(&self, request: Request) -> Result<Response, ClientError> {
        let started = Instant::now();
        let idempotent = request.is_idempotent();
        let mut attempt = 0u32;
        loop {
            let Some(remaining) = self.cfg.deadline.checked_sub(started.elapsed()) else {
                return Err(ClientError::DeadlineExceeded);
            };
            if remaining.is_zero() {
                return Err(ClientError::DeadlineExceeded);
            }
            if !self.breaker_admit() {
                self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(ClientError::CircuitOpen);
            }
            let outcome = self.attempt(&request, remaining);
            match &outcome {
                // Any reply frame — including a typed rejection —
                // proves the endpoint alive.
                Ok(_) | Err(ClientError::Rejected { .. }) => self.breaker_record(true),
                Err(_) => self.breaker_record(false),
            }
            let err = match outcome {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            // The server guarantees Overloaded and ShardUnavailable
            // rejections precede any side effect (retry-safe for every
            // request kind); a transport failure is only safe to retry
            // when the request is idempotent.
            let overload = err.is_overload();
            let retryable = overload
                || err.is_shard_unavailable()
                || (idempotent && matches!(err, ClientError::Io(_) | ClientError::Protocol(_)));
            attempt += 1;
            if !retryable || attempt > self.cfg.retries {
                return Err(err);
            }
            if overload {
                self.overload_retries.fetch_add(1, Ordering::Relaxed);
            } else {
                self.transport_retries.fetch_add(1, Ordering::Relaxed);
            }
            let sleep = self
                .jittered_backoff(attempt)
                .min(self.cfg.deadline.saturating_sub(started.elapsed()));
            if sleep.is_zero() {
                return Err(ClientError::DeadlineExceeded);
            }
            std::thread::sleep(sleep);
        }
    }

    /// Whether the breaker lets a request through right now. An open
    /// circuit whose cooldown elapsed flips to half-open and admits
    /// exactly this caller as the probe.
    fn breaker_admit(&self) -> bool {
        if self.cfg.breaker_threshold == 0 {
            return true;
        }
        let mut state = self.breaker.lock().unwrap_or_else(|e| e.into_inner());
        match *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { until } => {
                if Instant::now() >= until {
                    *state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // A probe is already in flight; don't pile on.
            BreakerState::HalfOpen => false,
        }
    }

    /// Feeds one attempt outcome to the breaker. Success (any reply
    /// frame) closes it; a transport failure counts toward the
    /// threshold, and a failed half-open probe re-opens immediately.
    fn breaker_record(&self, success: bool) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        let mut state = self.breaker.lock().unwrap_or_else(|e| e.into_inner());
        if success {
            *state = BreakerState::Closed { fails: 0 };
            return;
        }
        let trip = match *state {
            BreakerState::Closed { fails } => {
                let fails = fails + 1;
                if fails >= self.cfg.breaker_threshold {
                    true
                } else {
                    *state = BreakerState::Closed { fails };
                    false
                }
            }
            BreakerState::HalfOpen => true,
            BreakerState::Open { .. } => return,
        };
        if trip {
            let factor = {
                let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
                rng.gen_range(0.5..1.0)
            };
            *state = BreakerState::Open {
                until: Instant::now() + self.cfg.breaker_cooldown.mul_f64(factor),
            };
            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `base × 2^(attempt-1) × uniform(0.5, 1.0)`, capped.
    fn jittered_backoff(&self, attempt: u32) -> Duration {
        let factor = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            rng.gen_range(0.5..1.0)
        };
        let base = self
            .cfg
            .backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.cfg.max_backoff);
        base.mul_f64(factor)
    }

    /// One attempt: checkout (or dial), send with the remaining budget
    /// on the wire, await the reply within it.
    fn attempt(&self, request: &Request, remaining: Duration) -> Result<Response, ClientError> {
        let mut stream = self.checkout(remaining)?;
        let deadline_ms = remaining.as_millis().min(u128::from(u32::MAX)) as u32;
        stream
            .set_read_timeout(Some(remaining))
            .and_then(|()| stream.set_write_timeout(Some(remaining)))
            .map_err(ClientError::Io)?;
        let frame = RequestFrame {
            deadline_ms,
            request: request.clone(),
        };
        if let Err(e) = send_request(&mut stream, &frame) {
            // A send on a pooled connection can hit a stale socket the
            // server already closed; that is a transport error (the
            // retry policy decides, by idempotency, what to do).
            return Err(ClientError::Io(e));
        }
        match recv_response(&mut stream) {
            Ok(resp) => {
                match &resp {
                    Response::Error { code, message } => {
                        // The connection stays healthy after a typed
                        // error; pool it.
                        self.checkin(stream);
                        Err(ClientError::Rejected {
                            code: *code,
                            message: message.clone(),
                        })
                    }
                    _ => {
                        self.checkin(stream);
                        Ok(resp)
                    }
                }
            }
            Err(FrameError::Closed) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "server closed the connection",
            ))),
            Err(e) if e.is_timeout() => Err(ClientError::DeadlineExceeded),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(FrameError::Corrupt(e)) => Err(ClientError::Protocol(e)),
        }
    }

    /// Pops a pooled connection or dials (handshaking) a new one within
    /// the remaining deadline.
    fn checkout(&self, remaining: Duration) -> Result<TcpStream, ClientError> {
        if let Some(s) = self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop() {
            return Ok(s);
        }
        self.dial(remaining)
    }

    /// Dials and handshakes a fresh connection within the remaining
    /// deadline, bypassing the pool.
    fn dial(&self, remaining: Duration) -> Result<TcpStream, ClientError> {
        let mut stream =
            TcpStream::connect_timeout(&self.addr, remaining).map_err(ClientError::Io)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(remaining))
            .map_err(ClientError::Io)?;
        write_hello(&mut stream).map_err(ClientError::Io)?;
        match read_hello_reply(&mut stream) {
            Ok(HandshakeStatus::Ok) => Ok(stream),
            Ok(status) => Err(ClientError::Handshake(status)),
            Err(FrameError::Corrupt(e)) => Err(ClientError::Protocol(e)),
            Err(FrameError::Closed) => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "server closed during handshake",
            ))),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
        }
    }

    /// Returns a healthy connection to the pool (closed if full).
    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < self.cfg.pool {
            pool.push(stream);
        }
    }
}

/// Receives one frame on a subscription connection, mapping transport
/// failures into [`ClientError`]. A clean server close surfaces as
/// `Io(ConnectionReset)`; the iterator turns it into end-of-stream.
fn recv_sub_response(stream: &mut TcpStream) -> Result<Response, ClientError> {
    match recv_response(stream) {
        Ok(resp) => Ok(resp),
        Err(FrameError::Closed) => Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "server closed the subscription",
        ))),
        Err(e) if e.is_timeout() => Err(ClientError::DeadlineExceeded),
        Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
        Err(FrameError::Corrupt(e)) => Err(ClientError::Protocol(e)),
    }
}

/// One event pushed on a live [`Subscription`].
#[derive(Clone, Debug, PartialEq)]
pub enum SubscriptionEvent {
    /// A full-state resync. Replace any folded state with `rows` —
    /// sent as the first event of a from-head subscribe, and mid-stream
    /// whenever the subscriber fell off the server's bounded delta ring
    /// (slow-consumer degradation: the server resyncs instead of
    /// queueing without bound).
    Snapshot {
        /// The subscribed view.
        view: u32,
        /// The snapshot's flush seq.
        seq: u64,
        /// Content checksum of `rows`.
        checksum: u64,
        /// The full materialized view at `seq`.
        rows: Vec<WRow>,
    },
    /// One delta batch: signed difference rows (weight > 0 added,
    /// < 0 removed) taking the folded state from `seq - 1` to `seq`.
    Delta {
        /// The subscribed view.
        view: u32,
        /// The seq this delta produces.
        seq: u64,
        /// Content checksum of the folded state at `seq`.
        checksum: u64,
        /// The view's total pending backlog when this was published.
        staleness: u64,
        /// The signed difference rows.
        rows: Vec<WRow>,
    },
}

impl SubscriptionEvent {
    /// The seq the event's state corresponds to.
    pub fn seq(&self) -> u64 {
        match self {
            SubscriptionEvent::Snapshot { seq, .. } | SubscriptionEvent::Delta { seq, .. } => *seq,
        }
    }

    /// The content checksum the subscriber's folded state must match
    /// after applying this event.
    pub fn checksum(&self) -> u64 {
        match self {
            SubscriptionEvent::Snapshot { checksum, .. }
            | SubscriptionEvent::Delta { checksum, .. } => *checksum,
        }
    }
}

/// Closes a [`Subscription`]'s socket from another thread, unblocking
/// its iterator (which then ends). Obtained via
/// [`Subscription::stopper`].
pub struct SubscriptionStopper {
    stream: TcpStream,
}

impl SubscriptionStopper {
    /// Shuts the subscription's connection down. The blocked iterator
    /// wakes with end-of-stream.
    pub fn stop(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A blocking iterator over the pushed events of one registry view,
/// opened by [`Client::subscribe`].
///
/// The iterator yields [`SubscriptionEvent`]s in seq order and
/// enforces the protocol's no-gap/no-duplicate discipline: a delta
/// whose seq is not exactly `last + 1` ends the stream with an error
/// (the server never sends one — a gap means the transport lied).
/// Dropping the subscription closes its dedicated connection, which is
/// how the server learns to release the subscriber slot; no explicit
/// unsubscribe round-trip is required.
pub struct Subscription {
    stream: TcpStream,
    view: u32,
    next_seq: u64,
    pending: Option<SubscriptionEvent>,
    done: bool,
}

impl Subscription {
    /// The subscribed view id.
    pub fn view(&self) -> u32 {
        self.view
    }

    /// The seq of the next delta the iterator expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// A handle that closes this subscription's socket from another
    /// thread, unblocking the iterator.
    pub fn stopper(&self) -> std::io::Result<SubscriptionStopper> {
        Ok(SubscriptionStopper {
            stream: self.stream.try_clone()?,
        })
    }

    /// Receives the next event, blocking at most `timeout`.
    ///
    /// `Ok(None)` means the wait timed out *between* frames — the
    /// subscription is still live and the call can be repeated. Note
    /// that a timeout that fires in the middle of a partially received
    /// frame poisons the byte stream; use [`Subscription::stopper`] for
    /// clean cross-thread shutdown and this only where the caller owns
    /// the pacing (e.g. polling an idle view).
    pub fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<SubscriptionEvent>, ClientError> {
        match self.recv_event(Some(timeout)) {
            Err(ClientError::DeadlineExceeded) => Ok(None),
            other => other,
        }
    }

    /// Core receive: returns `Ok(None)` at end-of-stream (server
    /// closed), the next event otherwise.
    fn recv_event(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<SubscriptionEvent>, ClientError> {
        if let Some(ev) = self.pending.take() {
            return Ok(Some(ev));
        }
        if self.done {
            return Ok(None);
        }
        self.stream.set_read_timeout(timeout).map_err(|e| {
            self.done = true;
            ClientError::Io(e)
        })?;
        match recv_sub_response(&mut self.stream) {
            Ok(Response::ViewDelta {
                view,
                seq,
                checksum,
                staleness,
                rows,
            }) => {
                if view != self.view {
                    self.done = true;
                    return Err(ClientError::UnexpectedResponse(
                        "ViewDelta for a different view",
                    ));
                }
                if seq != self.next_seq {
                    self.done = true;
                    return Err(ClientError::UnexpectedResponse(
                        "ViewDelta out of seq order (gap or duplicate)",
                    ));
                }
                self.next_seq = seq + 1;
                Ok(Some(SubscriptionEvent::Delta {
                    view,
                    seq,
                    checksum,
                    staleness,
                    rows,
                }))
            }
            Ok(Response::SubscribeOk {
                view,
                seq,
                resync,
                checksum,
                rows,
            }) => {
                // Mid-stream resync: this subscriber fell off the delta
                // ring and the server restarted it from a snapshot.
                if view != self.view || !resync {
                    self.done = true;
                    return Err(ClientError::UnexpectedResponse(
                        "unexpected SubscribeOk mid-stream",
                    ));
                }
                self.next_seq = seq + 1;
                Ok(Some(SubscriptionEvent::Snapshot {
                    view,
                    seq,
                    checksum,
                    rows,
                }))
            }
            Ok(Response::Error { code, message }) => {
                self.done = true;
                Err(ClientError::Rejected { code, message })
            }
            Ok(_) => {
                self.done = true;
                Err(ClientError::UnexpectedResponse(
                    "unexpected frame kind on a subscription",
                ))
            }
            Err(ClientError::DeadlineExceeded) if timeout.is_some() => {
                Err(ClientError::DeadlineExceeded)
            }
            Err(e) => {
                // Transport end (including a clean server close or a
                // stopper shutdown) terminates the stream.
                self.done = true;
                match e {
                    ClientError::Io(ref io)
                        if io.kind() == std::io::ErrorKind::ConnectionReset
                            || io.kind() == std::io::ErrorKind::UnexpectedEof =>
                    {
                        Ok(None)
                    }
                    other => Err(other),
                }
            }
        }
    }
}

impl Iterator for Subscription {
    type Item = Result<SubscriptionEvent, ClientError>;

    /// Blocks until the next pushed event; `None` when the server (or a
    /// [`SubscriptionStopper`]) closed the connection.
    fn next(&mut self) -> Option<Self::Item> {
        match self.recv_event(None) {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_jittered_bounded_and_monotone_in_expectation() {
        let client = Client::new(
            "127.0.0.1:1",
            ClientConfig {
                backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(100),
                seed: 7,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        for attempt in 1..=10u32 {
            let d = client.jittered_backoff(attempt);
            // Jitter halves at most; the cap bounds above.
            assert!(d >= Duration::from_millis(5), "attempt {attempt}: {d:?}");
            assert!(d <= Duration::from_millis(100), "attempt {attempt}: {d:?}");
        }
        // Same seed → same schedule (reproducibility). A fresh pair,
        // because `client`'s RNG has already advanced above.
        let make = || {
            Client::new(
                "127.0.0.1:1",
                ClientConfig {
                    backoff: Duration::from_millis(10),
                    max_backoff: Duration::from_millis(100),
                    seed: 7,
                    ..ClientConfig::default()
                },
            )
            .unwrap()
        };
        let (a, b) = (make(), make());
        for attempt in 1..=10u32 {
            assert_eq!(a.jittered_backoff(attempt), b.jittered_backoff(attempt));
        }
    }

    #[test]
    fn dead_endpoint_fails_within_deadline_not_forever() {
        // Port 1 on localhost refuses immediately; the client must give
        // up after its bounded retries, well within the deadline.
        let client = Client::new(
            "127.0.0.1:1",
            ClientConfig {
                deadline: Duration::from_secs(2),
                retries: 2,
                backoff: Duration::from_millis(1),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let started = Instant::now();
        let err = client.ping().unwrap_err();
        assert!(
            matches!(err, ClientError::Io(_) | ClientError::DeadlineExceeded),
            "got {err}"
        );
        assert!(started.elapsed() < Duration::from_secs(2));
        // The dial failures counted as transport retries.
        assert_eq!(client.retry_stats().transport_retries, 2);
    }

    #[test]
    fn breaker_opens_fails_fast_and_half_open_probes() {
        let client = Client::new(
            "127.0.0.1:1",
            ClientConfig {
                deadline: Duration::from_secs(2),
                retries: 0,
                backoff: Duration::from_millis(1),
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_millis(50),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let hard =
            |e: &ClientError| matches!(e, ClientError::Io(_) | ClientError::DeadlineExceeded);
        // Two consecutive hard failures trip the breaker open.
        assert!(hard(&client.ping().unwrap_err()));
        assert!(hard(&client.ping().unwrap_err()));
        assert_eq!(client.retry_stats().breaker_trips, 1);
        // Open circuit: fail fast, no dial, no deadline burned.
        let t0 = Instant::now();
        assert!(matches!(
            client.ping().unwrap_err(),
            ClientError::CircuitOpen
        ));
        assert!(t0.elapsed() < Duration::from_millis(20));
        assert!(client.retry_stats().breaker_rejections >= 1);
        // Cooldown elapsed (jitter only shortens it): exactly one probe
        // goes through, fails on the dead endpoint, re-opens.
        std::thread::sleep(Duration::from_millis(60));
        assert!(hard(&client.ping().unwrap_err()));
        assert_eq!(client.retry_stats().breaker_trips, 2);
        assert!(matches!(
            client.ping().unwrap_err(),
            ClientError::CircuitOpen
        ));
    }
}
