//! Client-vs-live-server integration tests: pooling, retries on
//! overload, deadline propagation, and submit exactly-once semantics.

use aivm_client::{Client, ClientConfig, ClientError};
use aivm_core::CostModel;
use aivm_engine::{
    parse_query, row, DataType, Database, MaterializedView, MinStrategy, Modification, Schema,
    ViewDef,
};
use aivm_net::{ErrorCode, NetServer, NetServerConfig};
use aivm_serve::{MaintenanceRuntime, NaiveFlush, ServeConfig, ServeServer, ServerConfig};
use std::time::Duration;

fn tiny_engine_runtime() -> (MaintenanceRuntime, Database) {
    let mut db = Database::new();
    let t = db
        .create_table("t", Schema::new(vec![("id", DataType::Int)]))
        .unwrap();
    db.set_key_column(t, 0);
    let genesis = db.clone();
    let view = MaterializedView::new(
        &db,
        ViewDef {
            name: "v".into(),
            tables: vec!["t".into()],
            join_preds: vec![],
            filters: vec![None],
            residual: None,
            projection: None,
            aggregate: None,
            distinct: false,
        },
        MinStrategy::Multiset,
    )
    .unwrap();
    let cfg = ServeConfig::new(vec![CostModel::linear(0.5, 0.1)], 50.0);
    let rt = MaintenanceRuntime::engine(cfg, Box::new(NaiveFlush::new()), db, view).unwrap();
    (rt, genesis)
}

struct TestRig {
    serve: ServeServer,
    net: NetServer,
}

fn spawn_rig(net_cfg: NetServerConfig) -> TestRig {
    let (rt, _genesis) = tiny_engine_runtime();
    let serve = ServeServer::spawn(rt, ServerConfig::default());
    let net = NetServer::bind("127.0.0.1:0", serve.handle(), 1, net_cfg).unwrap();
    TestRig { serve, net }
}

#[test]
fn typed_requests_round_trip_and_match_direct_evaluation() {
    let rig = spawn_rig(NetServerConfig::default());
    let client = Client::new(rig.net.local_addr(), ClientConfig::default()).unwrap();

    client.ping().unwrap();

    let mods: Vec<Modification> = (0..25i64).map(|i| Modification::Insert(row![i])).collect();
    assert_eq!(client.submit(0, mods.clone()).unwrap(), 25);

    let read = client.read(true, true).unwrap();
    assert!(read.fresh);
    assert_eq!(read.lag, 0);
    assert!(!read.violated);
    assert_eq!(read.rows.as_ref().map(Vec::len), Some(25));

    let (_, mut direct_db) = tiny_engine_runtime();
    let t = direct_db.table_id("t").unwrap();
    for m in &mods {
        direct_db.apply(t, m).unwrap();
    }
    let direct = parse_query(&direct_db, "SELECT id FROM t")
        .unwrap()
        .execute(&direct_db)
        .unwrap();
    let mut acc: u64 = 0;
    for (r, w) in &direct {
        acc = acc.wrapping_add(aivm_engine::fxhash::hash_one(&(r, w)));
    }
    assert_eq!(read.checksum, acc);

    let m = client.metrics().unwrap();
    assert_eq!(m.events_ingested, 25);
    assert!(!m.degraded);

    let (_cost, violated) = client.flush().unwrap();
    assert!(!violated);

    // No failures, no retries.
    assert_eq!(client.retry_stats().overload_retries, 0);
    assert_eq!(client.retry_stats().transport_retries, 0);

    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn pooled_connection_is_reused_across_requests() {
    let rig = spawn_rig(NetServerConfig::default());
    let client = Client::new(rig.net.local_addr(), ClientConfig::default()).unwrap();
    for _ in 0..20 {
        client.ping().unwrap();
    }
    // 20 pings over one pooled connection: the server saw one
    // connection, not twenty.
    let m = client.metrics().unwrap();
    assert_eq!(m.connections_total, 1);
    assert!(m.requests >= 21);
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn overloaded_submit_retries_and_eventually_lands() {
    // A submit high-water of 0 pending events rejects whenever the
    // queue is non-empty; with the 1ms tick draining it, retries land.
    let rig = spawn_rig(NetServerConfig {
        submit_high_water: Some(64),
        ..NetServerConfig::default()
    });
    let client = Client::new(
        rig.net.local_addr(),
        ClientConfig {
            retries: 50,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let mut accepted = 0u64;
    for burst in 0..40i64 {
        let mods: Vec<Modification> = (0..32)
            .map(|i| Modification::Insert(row![burst * 32 + i]))
            .collect();
        accepted += client.submit(0, mods).unwrap();
    }
    assert_eq!(accepted, 40 * 32);
    // Every event landed exactly once: Overloaded rejections precede
    // side effects, so retries cannot double-apply.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = client.metrics().unwrap();
        if m.events_ingested == 40 * 32 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ingested {} != {}",
            m.events_ingested,
            40 * 32
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn persistent_overload_exhausts_bounded_retries() {
    // A zero high-water mark rejects every submit: the client must
    // stop after its bounded retries and surface the typed rejection,
    // not spin forever.
    let rig = spawn_rig(NetServerConfig {
        submit_high_water: Some(0),
        ..NetServerConfig::default()
    });
    let client = Client::new(
        rig.net.local_addr(),
        ClientConfig {
            deadline: Duration::from_secs(5),
            retries: 3,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let mods: Vec<Modification> = (0..4i64).map(|i| Modification::Insert(row![i])).collect();
    match client.submit(0, mods).unwrap_err() {
        ClientError::Rejected { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected Overloaded, got {other}"),
    }
    assert_eq!(client.retry_stats().overload_retries, 3);
    // Nothing was ingested: rejection preceded any side effect.
    assert_eq!(client.metrics().unwrap().events_ingested, 0);
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn deadline_zero_budget_fails_fast() {
    let rig = spawn_rig(NetServerConfig::default());
    let client = Client::new(
        rig.net.local_addr(),
        ClientConfig {
            deadline: Duration::ZERO,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(
        client.ping().unwrap_err(),
        ClientError::DeadlineExceeded
    ));
    rig.net.shutdown();
    rig.serve.shutdown();
}

#[test]
fn client_is_shareable_across_threads() {
    let rig = spawn_rig(NetServerConfig::default());
    let client =
        std::sync::Arc::new(Client::new(rig.net.local_addr(), ClientConfig::default()).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let c = client.clone();
            std::thread::spawn(move || {
                let mods: Vec<Modification> = (0..16i64)
                    .map(|i| Modification::Insert(row![t * 16 + i]))
                    .collect();
                assert_eq!(c.submit(0, mods).unwrap(), 16);
                c.read(false, false).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let read = client.read(true, false).unwrap();
    assert_eq!(read.lag, 0);
    assert!(!read.violated);
    let m = client.metrics().unwrap();
    assert_eq!(m.events_ingested, 64);
    rig.net.shutdown();
    rig.serve.shutdown();
}
