//! Batch-processing cost functions `f_i : Z⁺ → R`.
//!
//! The paper assumes each per-table cost function is **monotone**
//! (`f(x) ≥ f(y)` for `x ≥ y`) and **subadditive** (`f(0) = 0` and
//! `f(x+y) ≤ f(x) + f(y)`). Subadditivity is what makes batching pay off.
//!
//! [`CostModel`] provides every shape used in the paper:
//!
//! * [`CostModel::Linear`] — `f(k) = a·k + b` for `k ≥ 1` (§3.3). This is
//!   the shape the paper measures on its commercial DBMS (Figs. 1 and 4):
//!   a fixed setup cost `b` (parsing, hash-table builds, index loading)
//!   plus a per-modification cost `a`.
//! * [`CostModel::Step`] — `f(k) = ⌈k/B⌉·c`, the I/O-scan example of a
//!   subadditive but *non-concave* function (§2).
//! * [`CostModel::Power`] — `f(k) = b + s·k^e` with `e ≤ 1`, a concave
//!   shape (§7 future work discusses concavity).
//! * [`CostModel::Piecewise`] — monotone linear interpolation through
//!   measured sample points, the "measured by experiments" acquisition
//!   path of §2; produced by `aivm-engine`'s measurement harness.
//! * [`CostModel::Capped`] — the §3.2 tightness construction:
//!   `f(x) = (ε·x/2)·C` for `x ≤ 2/ε`, else `(1 + ε/2)·C`.

/// Tolerance used when comparing costs against the response-time budget.
/// Costs are `f64`s built from sums of per-table terms; a strict `<=`
/// comparison would make validity judgements flap on the last ulp.
pub const COST_EPS: f64 = 1e-9;

/// `true` when a refresh of cost `cost` fits within budget `c`.
#[inline]
pub fn fits(cost: f64, c: f64) -> bool {
    cost <= c + COST_EPS
}

/// Behaviour shared by all cost functions.
pub trait CostFn {
    /// Cost of processing a batch of `k` modifications.
    fn eval(&self, k: u64) -> f64;

    /// Largest batch size `k` with `eval(k) ≤ budget`, or 0 when even a
    /// single modification exceeds the budget.
    ///
    /// The default implementation exploits monotonicity: exponential
    /// search for an upper bound followed by binary search.
    fn max_batch(&self, budget: f64) -> u64 {
        if !fits(self.eval(1), budget) {
            return 0;
        }
        // Exponential search for the first power-of-two batch that busts
        // the budget.
        let mut hi: u64 = 2;
        while fits(self.eval(hi), budget) {
            if hi >= u64::MAX / 2 {
                return u64::MAX;
            }
            hi *= 2;
        }
        let mut lo = hi / 2; // fits
                             // Invariant: eval(lo) fits, eval(hi) does not.
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if fits(self.eval(mid), budget) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// A concrete, serializable cost function. See the module docs for the
/// provenance of each variant.
#[derive(Clone, Debug, PartialEq)]
pub enum CostModel {
    /// `f(0) = 0`, `f(k) = a·k + b` for `k ≥ 1`.
    Linear {
        /// Per-modification cost.
        a: f64,
        /// Fixed batch-setup cost.
        b: f64,
    },
    /// `f(k) = ⌈k / block⌉ · cost_per_block` — subadditive, not concave.
    Step {
        /// Number of modifications per block.
        block: u64,
        /// Cost of processing one block.
        cost_per_block: f64,
    },
    /// `f(0) = 0`, `f(k) = setup + scale · k^exponent` for `k ≥ 1`,
    /// with `0 < exponent ≤ 1` (concave).
    Power {
        /// Fixed batch-setup cost.
        setup: f64,
        /// Multiplier of the power term.
        scale: f64,
        /// Exponent in `(0, 1]`.
        exponent: f64,
    },
    /// Monotone piecewise-linear interpolation through `(k, cost)` sample
    /// points. Extrapolates the final segment's slope beyond the last
    /// sample. Samples must be strictly increasing in `k`.
    Piecewise {
        /// Sample points, sorted by batch size. An implicit `(0, 0)` point
        /// is always prepended.
        points: Vec<(u64, f64)>,
    },
    /// The §3.2 tightness construction, parameterized by `ε` and the
    /// response-time budget `c` it is built against:
    /// `f(x) = (ε·x/2)·c` for `0 ≤ x ≤ 2/ε`, else `(1 + ε/2)·c`.
    Capped {
        /// The ε of the construction; `1/ε` should be an integer.
        eps: f64,
        /// The response-time budget the function is calibrated to.
        c: f64,
    },
}

impl CostModel {
    /// Convenience constructor for the linear shape of §3.3.
    pub fn linear(a: f64, b: f64) -> Self {
        CostModel::Linear { a, b }
    }

    /// Fits a least-squares line through `(k, cost)` samples and returns
    /// the corresponding [`CostModel::Linear`]. Used to turn measured
    /// curves (Figs. 1/4) into the analytic form §3.3 reasons about.
    ///
    /// Returns `None` with fewer than two samples or zero variance in `k`.
    pub fn fit_linear(samples: &[(u64, f64)]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|&(k, _)| k as f64).sum();
        let sy: f64 = samples.iter().map(|&(_, c)| c).sum();
        let sxx: f64 = samples.iter().map(|&(k, _)| (k as f64) * (k as f64)).sum();
        let sxy: f64 = samples.iter().map(|&(k, c)| (k as f64) * c).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        let a = (n * sxy - sx * sy) / denom;
        let b = (sy - a * sx) / n;
        Some(CostModel::Linear { a, b: b.max(0.0) })
    }

    /// This model with every cost multiplied by `factor` (batch-size
    /// parameters are untouched), so `scaled(f).eval(k) = f·eval(k)` for
    /// all `k`. Scaling by a positive factor preserves monotonicity and
    /// subadditivity. The serving runtime recalibrates a drifting cost
    /// model this way when measured flush costs run consistently above
    /// the estimates.
    pub fn scaled(&self, factor: f64) -> CostModel {
        match self {
            CostModel::Linear { a, b } => CostModel::Linear {
                a: a * factor,
                b: b * factor,
            },
            CostModel::Step {
                block,
                cost_per_block,
            } => CostModel::Step {
                block: *block,
                cost_per_block: cost_per_block * factor,
            },
            CostModel::Power {
                setup,
                scale,
                exponent,
            } => CostModel::Power {
                setup: setup * factor,
                scale: scale * factor,
                exponent: *exponent,
            },
            CostModel::Piecewise { points } => CostModel::Piecewise {
                points: points.iter().map(|&(k, c)| (k, c * factor)).collect(),
            },
            CostModel::Capped { eps, c } => CostModel::Capped {
                eps: *eps,
                c: c * factor,
            },
        }
    }

    /// Checks monotonicity empirically over `k ∈ [0, upto]`.
    pub fn check_monotone(&self, upto: u64) -> bool {
        let mut prev = self.eval(0);
        for k in 1..=upto {
            let cur = self.eval(k);
            if cur + COST_EPS < prev {
                return false;
            }
            prev = cur;
        }
        true
    }

    /// Checks subadditivity empirically: `f(0) = 0` and
    /// `f(x+y) ≤ f(x) + f(y)` for all `1 ≤ x ≤ y`, `x + y ≤ upto`.
    pub fn check_subadditive(&self, upto: u64) -> bool {
        if self.eval(0).abs() > COST_EPS {
            return false;
        }
        for x in 1..=upto / 2 {
            for y in x..=(upto - x) {
                if self.eval(x + y) > self.eval(x) + self.eval(y) + COST_EPS {
                    return false;
                }
            }
        }
        true
    }
}

impl CostFn for CostModel {
    fn eval(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        match self {
            CostModel::Linear { a, b } => a * k as f64 + b,
            CostModel::Step {
                block,
                cost_per_block,
            } => {
                let blocks = k.div_ceil((*block).max(1));
                blocks as f64 * cost_per_block
            }
            CostModel::Power {
                setup,
                scale,
                exponent,
            } => setup + scale * (k as f64).powf(*exponent),
            CostModel::Piecewise { points } => {
                // Walk segments; an implicit (0, 0) anchors the first one.
                let (mut k0, mut c0) = (0u64, 0.0f64);
                for &(k1, c1) in points {
                    if k <= k1 {
                        let span = (k1 - k0) as f64;
                        if span == 0.0 {
                            return c1;
                        }
                        let frac = (k - k0) as f64 / span;
                        return c0 + frac * (c1 - c0);
                    }
                    (k0, c0) = (k1, c1);
                }
                // Extrapolate with the slope of the last segment (or flat
                // if there is only the implicit origin).
                match points.len() {
                    0 => 0.0,
                    1 => {
                        let (k1, c1) = points[0];
                        let slope = c1 / k1.max(1) as f64;
                        c1 + slope * (k - k1) as f64
                    }
                    _ => {
                        let (ka, ca) = points[points.len() - 2];
                        let (kb, cb) = points[points.len() - 1];
                        let slope = (cb - ca) / (kb - ka).max(1) as f64;
                        cb + slope * (k - kb) as f64
                    }
                }
            }
            CostModel::Capped { eps, c } => {
                let x = k as f64;
                if x <= 2.0 / eps {
                    (eps * x / 2.0) * c
                } else {
                    (1.0 + eps / 2.0) * c
                }
            }
        }
    }
}

/// Evaluates the aggregate refresh cost `f(v) = Σ_i f_i(v[i])` of a state
/// vector under per-table cost functions.
pub fn total_cost(costs: &[CostModel], v: &crate::counts::Counts) -> f64 {
    debug_assert_eq!(costs.len(), v.len());
    costs.iter().zip(v.iter()).map(|(f, k)| f.eval(k)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::Counts;

    #[test]
    fn linear_has_zero_at_origin() {
        let f = CostModel::linear(0.5, 3.0);
        assert_eq!(f.eval(0), 0.0);
        assert!((f.eval(1) - 3.5).abs() < 1e-12);
        assert!((f.eval(10) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn linear_is_monotone_and_subadditive() {
        let f = CostModel::linear(0.25, 2.0);
        assert!(f.check_monotone(200));
        assert!(f.check_subadditive(200));
    }

    #[test]
    fn step_is_subadditive_but_not_concave() {
        let f = CostModel::Step {
            block: 10,
            cost_per_block: 1.0,
        };
        assert!(f.check_monotone(100));
        assert!(f.check_subadditive(100));
        // Non-concavity: the jump at k = 11 exceeds the jump at k = 2.
        let d_small = f.eval(2) - f.eval(1);
        let d_jump = f.eval(11) - f.eval(10);
        assert!(d_jump > d_small);
    }

    #[test]
    fn power_is_monotone_and_subadditive() {
        let f = CostModel::Power {
            setup: 1.0,
            scale: 2.0,
            exponent: 0.5,
        };
        assert!(f.check_monotone(300));
        assert!(f.check_subadditive(300));
    }

    #[test]
    fn capped_matches_paper_definition() {
        // ε = 0.5, C = 10: f(x) = 2.5x for x ≤ 4, 12.5 beyond.
        let f = CostModel::Capped { eps: 0.5, c: 10.0 };
        assert!((f.eval(2) - 5.0).abs() < 1e-12);
        assert!((f.eval(4) - 10.0).abs() < 1e-12);
        assert!((f.eval(5) - 12.5).abs() < 1e-12);
        assert!((f.eval(1000) - 12.5).abs() < 1e-12);
        assert!(f.check_monotone(50));
        assert!(f.check_subadditive(50));
    }

    #[test]
    fn piecewise_interpolates_and_extrapolates() {
        let f = CostModel::Piecewise {
            points: vec![(10, 5.0), (20, 7.0)],
        };
        assert_eq!(f.eval(0), 0.0);
        assert!((f.eval(5) - 2.5).abs() < 1e-12);
        assert!((f.eval(10) - 5.0).abs() < 1e-12);
        assert!((f.eval(15) - 6.0).abs() < 1e-12);
        // Beyond the last point: slope (7-5)/(20-10) = 0.2.
        assert!((f.eval(30) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_single_point_extrapolates_through_origin() {
        let f = CostModel::Piecewise {
            points: vec![(10, 5.0)],
        };
        assert!((f.eval(20) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn max_batch_is_exact_boundary() {
        let f = CostModel::linear(1.0, 2.0); // f(k) = k + 2
        assert_eq!(f.max_batch(10.0), 8);
        assert_eq!(f.max_batch(2.5), 0, "f(1) = 3 > 2.5");
        assert_eq!(f.max_batch(3.0), 1);
    }

    #[test]
    fn max_batch_handles_flat_functions() {
        let f = CostModel::Capped { eps: 0.5, c: 10.0 };
        // f caps at 12.5, so any budget >= 12.5 admits unbounded batches.
        assert_eq!(f.max_batch(12.5), u64::MAX);
        // Budget 10 admits exactly 2/eps = 4.
        assert_eq!(f.max_batch(10.0), 4);
    }

    #[test]
    fn fit_linear_recovers_exact_line() {
        let samples: Vec<(u64, f64)> = (1..=20).map(|k| (k, 0.7 * k as f64 + 4.0)).collect();
        let fit = CostModel::fit_linear(&samples).unwrap();
        match fit {
            CostModel::Linear { a, b } => {
                assert!((a - 0.7).abs() < 1e-9);
                assert!((b - 4.0).abs() < 1e-9);
            }
            other => panic!("expected linear fit, got {other:?}"),
        }
    }

    #[test]
    fn fit_linear_rejects_degenerate_input() {
        assert!(CostModel::fit_linear(&[(1, 1.0)]).is_none());
        assert!(CostModel::fit_linear(&[(5, 1.0), (5, 2.0)]).is_none());
    }

    #[test]
    fn scaled_multiplies_every_shape_pointwise() {
        let models = vec![
            CostModel::linear(0.5, 3.0),
            CostModel::Step {
                block: 10,
                cost_per_block: 1.0,
            },
            CostModel::Power {
                setup: 1.0,
                scale: 2.0,
                exponent: 0.5,
            },
            CostModel::Piecewise {
                points: vec![(10, 5.0), (20, 7.0)],
            },
            CostModel::Capped { eps: 0.5, c: 10.0 },
        ];
        for f in models {
            let g = f.scaled(1.5);
            for k in [0u64, 1, 4, 11, 25, 100] {
                assert!((g.eval(k) - 1.5 * f.eval(k)).abs() < 1e-9, "{f:?} at k={k}");
            }
            assert!(g.check_monotone(60));
            assert!(g.check_subadditive(60));
        }
    }

    #[test]
    fn total_cost_sums_components() {
        let costs = vec![CostModel::linear(1.0, 1.0), CostModel::linear(2.0, 0.5)];
        let v = Counts::from_slice(&[3, 2]);
        // (3 + 1) + (4 + 0.5) = 8.5
        assert!((total_cost(&costs, &v) - 8.5).abs() < 1e-12);
        let z = Counts::zero(2);
        assert_eq!(total_cost(&costs, &z), 0.0);
    }

    #[test]
    fn fits_tolerates_rounding() {
        assert!(fits(10.0 + 1e-12, 10.0));
        assert!(!fits(10.1, 10.0));
    }
}
