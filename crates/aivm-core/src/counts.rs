//! Fixed-length vectors of modification counts.
//!
//! The paper models both system states (sizes of the delta tables
//! `ΔR_1..ΔR_n`) and maintenance actions as n-vectors of non-negative
//! integers. [`Counts`] is that n-vector.
//!
//! `Counts` is the hottest value type in the solver — every A\* node,
//! action and heuristic evaluation manipulates one — so vectors of
//! dimension ≤ 4 (the paper's instances have `n = 2`) are stored inline
//! with no heap allocation; longer vectors spill to a `Vec`.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Index, IndexMut};

/// Dimension up to which components are stored inline.
const INLINE_CAP: usize = 4;

#[derive(Clone)]
enum Repr {
    Inline { len: u8, buf: [u64; INLINE_CAP] },
    Heap(Vec<u64>),
}

/// An n-vector of non-negative modification counts.
///
/// Component `i` is the number of modifications of base table `R_i`
/// represented by this vector (pending in a state, or processed by an
/// action).
#[derive(Clone)]
pub struct Counts(Repr);

impl Default for Counts {
    fn default() -> Self {
        Counts(Repr::Inline {
            len: 0,
            buf: [0; INLINE_CAP],
        })
    }
}

impl Counts {
    /// Creates the zero vector of dimension `n`.
    pub fn zero(n: usize) -> Self {
        if n <= INLINE_CAP {
            Counts(Repr::Inline {
                len: n as u8,
                buf: [0; INLINE_CAP],
            })
        } else {
            Counts(Repr::Heap(vec![0; n]))
        }
    }

    /// Creates a vector from explicit components.
    pub fn from_slice(v: &[u64]) -> Self {
        if v.len() <= INLINE_CAP {
            let mut buf = [0; INLINE_CAP];
            buf[..v.len()].copy_from_slice(v);
            Counts(Repr::Inline {
                len: v.len() as u8,
                buf,
            })
        } else {
            Counts(Repr::Heap(v.to_vec()))
        }
    }

    /// Number of components (the number of base tables `n`).
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when every component is zero (`s = 0`: the view is up to date,
    /// or `p = 0`: the plan takes no action).
    pub fn is_zero(&self) -> bool {
        self.as_slice().iter().all(|&c| c == 0)
    }

    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.as_slice().iter().sum()
    }

    /// Component-wise sum.
    pub fn add(&self, other: &Counts) -> Counts {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Counts) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// Component-wise difference. Returns `None` when any component would
    /// go negative, i.e. when `other` is not dominated by `self`.
    pub fn checked_sub(&self, other: &Counts) -> Option<Counts> {
        let mut out = self.clone();
        if out.checked_sub_assign(other) {
            Some(out)
        } else {
            None
        }
    }

    /// Subtracts `other` from `self` in place. Returns `false` — leaving
    /// `self` unchanged — when any component would go negative. The
    /// allocation-free form of [`Counts::checked_sub`] for hot loops.
    pub fn checked_sub_assign(&mut self, other: &Counts) -> bool {
        debug_assert_eq!(self.len(), other.len());
        if !other.dominated_by(self) {
            return false;
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
        true
    }

    /// Component-wise `self ≤ other`.
    pub fn dominated_by(&self, other: &Counts) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .all(|(a, b)| a <= b)
    }

    /// Iterator over components.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.as_slice().iter().copied()
    }

    /// Underlying slice.
    pub fn as_slice(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Underlying mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        match &mut self.0 {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Overwrites `self` with `other`'s components without reallocating
    /// when dimensions match.
    pub fn copy_from(&mut self, other: &Counts) {
        if self.len() == other.len() {
            self.as_mut_slice().copy_from_slice(other.as_slice());
        } else {
            *self = other.clone();
        }
    }

    /// Sets every component to zero, keeping the dimension.
    pub fn clear(&mut self) {
        for c in self.as_mut_slice() {
            *c = 0;
        }
    }

    /// Indices of the non-zero components.
    pub fn support(&self) -> Vec<usize> {
        self.as_slice()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect()
    }
}

impl PartialEq for Counts {
    fn eq(&self, other: &Counts) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Counts {}

impl Hash for Counts {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Index<usize> for Counts {
    type Output = u64;
    fn index(&self, i: usize) -> &u64 {
        &self.as_slice()[i]
    }
}

impl IndexMut<usize> for Counts {
    fn index_mut(&mut self, i: usize) -> &mut u64 {
        &mut self.as_mut_slice()[i]
    }
}

impl fmt::Debug for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

impl From<Vec<u64>> for Counts {
    fn from(v: Vec<u64>) -> Self {
        if v.len() <= INLINE_CAP {
            Counts::from_slice(&v)
        } else {
            Counts(Repr::Heap(v))
        }
    }
}

impl FromIterator<u64> for Counts {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut it = iter.into_iter();
        let mut len = 0usize;
        let mut buf = [0u64; INLINE_CAP];
        for v in it.by_ref() {
            if len < INLINE_CAP {
                buf[len] = v;
                len += 1;
            } else {
                // Fifth component: spill everything gathered so far.
                let mut vec = Vec::with_capacity(INLINE_CAP * 2);
                vec.extend_from_slice(&buf);
                vec.push(v);
                vec.extend(it);
                return Counts(Repr::Heap(vec));
            }
        }
        Counts(Repr::Inline {
            len: len as u8,
            buf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        let z = Counts::zero(3);
        assert!(z.is_zero());
        assert_eq!(z.len(), 3);
        assert_eq!(z.total(), 0);
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = Counts::from_slice(&[3, 0, 7]);
        let b = Counts::from_slice(&[1, 2, 3]);
        let s = a.add(&b);
        assert_eq!(s, Counts::from_slice(&[4, 2, 10]));
        assert_eq!(s.checked_sub(&b), Some(a.clone()));
        assert_eq!(a.checked_sub(&b), None, "component 1 would go negative");
    }

    #[test]
    fn checked_sub_assign_leaves_self_on_failure() {
        let mut a = Counts::from_slice(&[3, 1]);
        assert!(!a.checked_sub_assign(&Counts::from_slice(&[1, 2])));
        assert_eq!(a, Counts::from_slice(&[3, 1]), "unchanged on failure");
        assert!(a.checked_sub_assign(&Counts::from_slice(&[1, 1])));
        assert_eq!(a, Counts::from_slice(&[2, 0]));
    }

    #[test]
    fn dominated_by_is_componentwise() {
        let a = Counts::from_slice(&[1, 2]);
        let b = Counts::from_slice(&[2, 2]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert!(a.dominated_by(&a));
    }

    #[test]
    fn support_lists_nonzero_indices() {
        let a = Counts::from_slice(&[0, 5, 0, 1]);
        assert_eq!(a.support(), vec![1, 3]);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Counts::from_slice(&[1, 1]);
        let b = Counts::from_slice(&[4, 0]);
        let expect = a.add(&b);
        a.add_assign(&b);
        assert_eq!(a, expect);
    }

    #[test]
    fn debug_format_is_compact() {
        let a = Counts::from_slice(&[1, 2]);
        assert_eq!(format!("{a:?}"), "⟨1,2⟩");
    }

    #[test]
    fn inline_and_heap_representations_agree() {
        // Dimension 5 spills to the heap; behaviour must match inline.
        let inline = Counts::from_slice(&[1, 2, 3, 4]);
        assert_eq!(inline.len(), 4);
        let heap: Counts = (1..=5u64).collect();
        assert_eq!(heap.len(), 5);
        assert_eq!(heap.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(heap.total(), 15);
        let heap2 = Counts::from(vec![1u64, 2, 3, 4, 5]);
        assert_eq!(heap, heap2);
        use std::collections::hash_map::DefaultHasher;
        let h = |c: &Counts| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&heap), h(&heap2));
        // Equality and hashing are representation-independent for the
        // same dimension: from_slice(≤4) is inline, From<Vec> of the
        // same data must compare and hash identically.
        let a = Counts::from_slice(&[7, 8]);
        let b: Counts = vec![7u64, 8].into();
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn copy_from_and_clear() {
        let mut a = Counts::zero(2);
        a.copy_from(&Counts::from_slice(&[9, 4]));
        assert_eq!(a, Counts::from_slice(&[9, 4]));
        a.clear();
        assert!(a.is_zero());
        assert_eq!(a.len(), 2);
    }
}
