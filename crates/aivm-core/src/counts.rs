//! Fixed-length vectors of modification counts.
//!
//! The paper models both system states (sizes of the delta tables
//! `ΔR_1..ΔR_n`) and maintenance actions as n-vectors of non-negative
//! integers. [`Counts`] is that n-vector.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// An n-vector of non-negative modification counts.
///
/// Component `i` is the number of modifications of base table `R_i`
/// represented by this vector (pending in a state, or processed by an
/// action).
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Counts(Vec<u64>);

impl Counts {
    /// Creates the zero vector of dimension `n`.
    pub fn zero(n: usize) -> Self {
        Counts(vec![0; n])
    }

    /// Creates a vector from explicit components.
    pub fn from_slice(v: &[u64]) -> Self {
        Counts(v.to_vec())
    }

    /// Number of components (the number of base tables `n`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True when every component is zero (`s = 0`: the view is up to date,
    /// or `p = 0`: the plan takes no action).
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Sum of all components.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Component-wise sum.
    pub fn add(&self, other: &Counts) -> Counts {
        debug_assert_eq!(self.len(), other.len());
        Counts(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Adds `other` into `self` in place.
    pub fn add_assign(&mut self, other: &Counts) {
        debug_assert_eq!(self.len(), other.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Component-wise difference. Returns `None` when any component would
    /// go negative, i.e. when `other` is not dominated by `self`.
    pub fn checked_sub(&self, other: &Counts) -> Option<Counts> {
        debug_assert_eq!(self.len(), other.len());
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| a.checked_sub(*b))
            .collect::<Option<Vec<_>>>()
            .map(Counts)
    }

    /// Component-wise `self ≤ other`.
    pub fn dominated_by(&self, other: &Counts) -> bool {
        debug_assert_eq!(self.len(), other.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Iterator over components.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0.iter().copied()
    }

    /// Underlying slice.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// Indices of the non-zero components.
    pub fn support(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Index<usize> for Counts {
    type Output = u64;
    fn index(&self, i: usize) -> &u64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Counts {
    fn index_mut(&mut self, i: usize) -> &mut u64 {
        &mut self.0[i]
    }
}

impl fmt::Debug for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

impl From<Vec<u64>> for Counts {
    fn from(v: Vec<u64>) -> Self {
        Counts(v)
    }
}

impl FromIterator<u64> for Counts {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Counts(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        let z = Counts::zero(3);
        assert!(z.is_zero());
        assert_eq!(z.len(), 3);
        assert_eq!(z.total(), 0);
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = Counts::from_slice(&[3, 0, 7]);
        let b = Counts::from_slice(&[1, 2, 3]);
        let s = a.add(&b);
        assert_eq!(s, Counts::from_slice(&[4, 2, 10]));
        assert_eq!(s.checked_sub(&b), Some(a.clone()));
        assert_eq!(a.checked_sub(&b), None, "component 1 would go negative");
    }

    #[test]
    fn dominated_by_is_componentwise() {
        let a = Counts::from_slice(&[1, 2]);
        let b = Counts::from_slice(&[2, 2]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert!(a.dominated_by(&a));
    }

    #[test]
    fn support_lists_nonzero_indices() {
        let a = Counts::from_slice(&[0, 5, 0, 1]);
        assert_eq!(a.support(), vec![1, 3]);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Counts::from_slice(&[1, 1]);
        let b = Counts::from_slice(&[4, 0]);
        let expect = a.add(&b);
        a.add_assign(&b);
        assert_eq!(a, expect);
    }

    #[test]
    fn debug_format_is_compact() {
        let a = Counts::from_slice(&[1, 2]);
        assert_eq!(format!("{a:?}"), "⟨1,2⟩");
    }
}
