//! Maintenance plans and their validity (§2, Definition 1) plus the
//! structural predicates of §3 (lazy, greedy, minimal).

use crate::cost::fits;
use crate::counts::Counts;
use crate::instance::Instance;
use std::fmt;

/// A maintenance plan `P = p_0, …, p_T`: one action vector per time step.
/// `actions[t][i]` is the number of `R_i` modifications flushed at `t`.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// One action per time step, `t ∈ [0, T]`.
    pub actions: Vec<Counts>,
}

/// Why a plan failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The plan's length disagrees with the instance horizon `T + 1`.
    WrongLength {
        /// Actions the instance requires (`T + 1`).
        expected: usize,
        /// Actions the plan has.
        got: usize,
    },
    /// An action removed more modifications than were pending.
    Overdraw {
        /// Time of the offending action.
        t: usize,
        /// Table whose pending count was exceeded.
        table: usize,
    },
    /// A post-action state before `T` busted the response-time budget.
    BudgetViolated {
        /// Time of the violation.
        t: usize,
        /// Refresh cost of the post-action state.
        cost: f64,
    },
    /// The final action did not empty every delta table.
    NotEmptiedAtT {
        /// The modifications left pending at `T`.
        leftover: Counts,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::WrongLength { expected, got } => {
                write!(f, "plan has {got} actions, instance needs {expected}")
            }
            PlanError::Overdraw { t, table } => {
                write!(
                    f,
                    "action at t={t} removes more than pending from table {table}"
                )
            }
            PlanError::BudgetViolated { t, cost } => {
                write!(f, "post-action state at t={t} costs {cost} > budget")
            }
            PlanError::NotEmptiedAtT { leftover } => {
                write!(f, "delta tables not empty at T: {leftover:?}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Summary statistics of a validated plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStats {
    /// Total maintenance cost `f(P) = Σ_t f(p_t)`.
    pub total_cost: f64,
    /// Number of non-zero actions.
    pub action_count: usize,
    /// `|P(i)|` for each table: the number of actions touching table `i`
    /// (the decisive quantity for linear costs, §3.3).
    pub actions_per_table: Vec<usize>,
    /// Largest post-action refresh cost observed before `T` (slack probe).
    pub max_post_cost: f64,
}

impl Plan {
    /// The all-zero plan of the right length for `inst` except that it is
    /// *not* valid unless no modifications arrive; mostly a builder seed.
    pub fn empty(inst: &Instance) -> Plan {
        Plan {
            actions: vec![Counts::zero(inst.n()); inst.horizon() + 1],
        }
    }

    /// The horizon `T` implied by the plan length.
    pub fn horizon(&self) -> usize {
        self.actions.len() - 1
    }

    /// Total maintenance cost `f(P)` under the instance's cost functions.
    /// Does not check validity.
    pub fn cost(&self, inst: &Instance) -> f64 {
        self.actions.iter().map(|p| inst.refresh_cost(p)).sum()
    }

    /// Replays the plan against the instance and returns the sequence of
    /// pre-action states `s_0, …, s_T` without checking validity.
    pub fn pre_action_states(&self, inst: &Instance) -> Vec<Counts> {
        let mut states = Vec::with_capacity(self.actions.len());
        let mut s = Counts::zero(inst.n());
        for t in 0..self.actions.len() {
            s.add_assign(&inst.arrivals.at(t));
            states.push(s.clone());
            if let Some(next) = s.checked_sub(&self.actions[t]) {
                s = next;
            } else {
                // Overdraw: clamp at zero per component so later states
                // remain meaningful for diagnostics; validate() reports
                // the error properly.
                s = Counts::from_iter(
                    s.iter()
                        .zip(self.actions[t].iter())
                        .map(|(a, b)| a.saturating_sub(b)),
                );
            }
        }
        states
    }

    /// Full validity check per Definition 1, returning statistics on
    /// success.
    pub fn validate(&self, inst: &Instance) -> Result<PlanStats, PlanError> {
        let horizon = inst.horizon();
        if self.actions.len() != horizon + 1 {
            return Err(PlanError::WrongLength {
                expected: horizon + 1,
                got: self.actions.len(),
            });
        }
        let mut s = Counts::zero(inst.n());
        let mut total_cost = 0.0;
        let mut action_count = 0;
        let mut actions_per_table = vec![0usize; inst.n()];
        let mut max_post_cost: f64 = 0.0;
        for t in 0..=horizon {
            s.add_assign(&inst.arrivals.at(t));
            let p = &self.actions[t];
            // In-place subtraction: `s` becomes the post-action state, with
            // no per-step allocation. On overdraw `s` is left unchanged.
            if !s.checked_sub_assign(p) {
                let table = (0..inst.n()).find(|&i| p[i] > s[i]).unwrap_or(0);
                return Err(PlanError::Overdraw { t, table });
            }
            if !p.is_zero() {
                action_count += 1;
                for i in 0..inst.n() {
                    if p[i] > 0 {
                        actions_per_table[i] += 1;
                    }
                }
                total_cost += inst.refresh_cost(p);
            }
            if t < horizon {
                let post_cost = inst.refresh_cost(&s);
                max_post_cost = max_post_cost.max(post_cost);
                if !fits(post_cost, inst.budget) {
                    return Err(PlanError::BudgetViolated { t, cost: post_cost });
                }
            } else if !s.is_zero() {
                return Err(PlanError::NotEmptiedAtT {
                    leftover: s.clone(),
                });
            }
        }
        Ok(PlanStats {
            total_cost,
            action_count,
            actions_per_table,
            max_post_cost,
        })
    }

    /// True when the plan is *lazy* (Definition 2): every non-zero action
    /// before `T` happens at a full pre-action state.
    pub fn is_lazy(&self, inst: &Instance) -> bool {
        let states = self.pre_action_states(inst);
        let horizon = self.horizon();
        self.actions
            .iter()
            .enumerate()
            .all(|(t, p)| t == horizon || p.is_zero() || inst.is_full(&states[t]))
    }

    /// True when every action is *greedy* (Definition 3): each action
    /// empties a delta table entirely or leaves it untouched.
    pub fn is_greedy(&self, inst: &Instance) -> bool {
        let states = self.pre_action_states(inst);
        self.actions
            .iter()
            .enumerate()
            .all(|(t, p)| (0..inst.n()).all(|i| p[i] == 0 || p[i] == states[t][i]))
    }

    /// True when every action before `T` is *minimal* (Definition 3): no
    /// non-zero component can be dropped while keeping the post-action
    /// state within budget.
    pub fn is_minimal(&self, inst: &Instance) -> bool {
        let states = self.pre_action_states(inst);
        let horizon = self.horizon();
        self.actions.iter().enumerate().all(|(t, p)| {
            if t == horizon || p.is_zero() {
                return true;
            }
            let s = &states[t];
            let post = match s.checked_sub(p) {
                Some(post) => post,
                None => return true, // invalid anyway; minimality moot
            };
            (0..inst.n()).all(|i| {
                if p[i] == 0 {
                    return true;
                }
                // Restore component i and re-check the budget; if it
                // still fits, the component was droppable → not minimal.
                let mut restored = post.clone();
                restored[i] += p[i];
                !fits(inst.refresh_cost(&restored), inst.budget)
            })
        })
    }

    /// True when the plan is LGM (Definition 3).
    pub fn is_lgm(&self, inst: &Instance) -> bool {
        self.is_lazy(inst) && self.is_greedy(inst) && self.is_minimal(inst)
    }

    /// A human-readable timeline of the plan's non-zero actions:
    /// one line per action with the pre-action state, the flushed
    /// counts, and the action's cost.
    pub fn describe(&self, inst: &Instance) -> String {
        use std::fmt::Write as _;
        let states = self.pre_action_states(inst);
        let mut out = String::new();
        let mut total = 0.0;
        for (t, p) in self.actions.iter().enumerate() {
            if p.is_zero() {
                continue;
            }
            let cost = inst.refresh_cost(p);
            total += cost;
            let _ = writeln!(
                out,
                "t={t:>5}  state {:?} → flush {:?}  (cost {cost:.3})",
                states[t], p
            );
        }
        let _ = writeln!(
            out,
            "total: {total:.3} over {} actions",
            self.actions.iter().filter(|p| !p.is_zero()).count()
        );
        out
    }
}

/// The NAIVE symmetric plan of §1/§5: whenever the pre-action state is
/// full, flush *everything*; always flush everything at `T`.
pub fn naive_plan(inst: &Instance) -> Plan {
    let horizon = inst.horizon();
    let mut actions = Vec::with_capacity(horizon + 1);
    let mut s = Counts::zero(inst.n());
    for t in 0..=horizon {
        s.add_assign(&inst.arrivals.at(t));
        if t == horizon || inst.is_full(&s) {
            actions.push(s.clone());
            s = Counts::zero(inst.n());
        } else {
            actions.push(Counts::zero(inst.n()));
        }
    }
    Plan { actions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::instance::Arrivals;

    /// Two tables; table 0 cheap per-mod, table 1 heavier setup.
    fn inst() -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 5),
            8.0,
        )
    }

    #[test]
    fn naive_plan_is_valid_and_lazy_greedy() {
        let inst = inst();
        let p = naive_plan(&inst);
        let stats = p.validate(&inst).expect("naive plan must be valid");
        assert!(p.is_lazy(&inst));
        assert!(p.is_greedy(&inst));
        assert!(stats.total_cost > 0.0);
        // Pre-action f(⟨k,k⟩) = k + (k+4) = 2k+4 > 8 ⟺ k ≥ 3; so NAIVE
        // acts at t = 2 (state ⟨3,3⟩) and again at T = 5.
        assert_eq!(stats.action_count, 2);
        assert_eq!(p.actions[2], Counts::from_slice(&[3, 3]));
    }

    #[test]
    fn validate_rejects_overdraw() {
        let inst = inst();
        let mut p = Plan::empty(&inst);
        p.actions[0] = Counts::from_slice(&[5, 0]);
        match p.validate(&inst) {
            Err(PlanError::Overdraw { t: 0, table: 0 }) => {}
            other => panic!("expected overdraw, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_budget_violation() {
        let inst = inst();
        // Take no action until T: at t=2 pre-action ⟨3,3⟩ costs 10 > 8.
        let mut p = Plan::empty(&inst);
        p.actions[5] = Counts::from_slice(&[6, 6]);
        match p.validate(&inst) {
            Err(PlanError::BudgetViolated { t: 2, .. }) => {}
            other => panic!("expected budget violation at t=2, got {other:?}"),
        }
    }

    #[test]
    fn validate_requires_empty_at_horizon() {
        let inst = inst();
        let mut p = naive_plan(&inst);
        let last = p.actions.len() - 1;
        p.actions[last] = Counts::zero(2);
        match p.validate(&inst) {
            Err(PlanError::NotEmptiedAtT { .. }) => {}
            other => panic!("expected leftover error, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let inst = inst();
        let p = Plan {
            actions: vec![Counts::zero(2); 3],
        };
        assert!(matches!(
            p.validate(&inst),
            Err(PlanError::WrongLength {
                expected: 6,
                got: 3
            })
        ));
    }

    #[test]
    fn asymmetric_plan_is_valid_but_naive_costlier() {
        // Longer horizon so the asymmetry pays: flushing table 0 (no
        // setup cost) every step lets table 1 batch to its solo limit of
        // 4 (f_1(k) = k + 4 ≤ 8), i.e. one setup per 5 arrivals, while
        // NAIVE pays table 1's setup every 3 steps.
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 11),
            8.0,
        );
        let mut p = Plan::empty(&inst);
        for t in 0..=11 {
            p.actions[t] = Counts::from_slice(&[1, 0]);
        }
        p.actions[4] = Counts::from_slice(&[1, 5]);
        p.actions[9] = Counts::from_slice(&[1, 5]);
        p.actions[11] = Counts::from_slice(&[1, 2]);
        let stats = p.validate(&inst).expect("asymmetric plan valid");
        let naive = naive_plan(&inst);
        let naive_cost = naive.validate(&inst).unwrap().total_cost;
        assert!((stats.total_cost - 36.0).abs() < 1e-9);
        assert!((naive_cost - 40.0).abs() < 1e-9);
        assert!(stats.total_cost < naive_cost);
    }

    #[test]
    fn lgm_predicates_on_handcrafted_plans() {
        let inst = inst();
        let naive = naive_plan(&inst);
        // NAIVE is lazy and greedy but *not* minimal: when forced at t=2
        // (state ⟨3,3⟩, cost 10), flushing only table 1 (post ⟨3,0⟩ cost
        // 3 ≤ 8) suffices, so flushing both is non-minimal.
        assert!(naive.is_lazy(&inst));
        assert!(naive.is_greedy(&inst));
        assert!(!naive.is_minimal(&inst));

        // A minimal variant: flush only table 1 at t=2 (post ⟨3,0⟩ costs
        // 3), then table 0 at t=3 where ⟨4,1⟩ costs 9 and dropping the
        // flush would bust the budget.
        let mut p = Plan::empty(&inst);
        p.actions[2] = Counts::from_slice(&[0, 3]);
        p.actions[3] = Counts::from_slice(&[4, 0]);
        p.actions[5] = Counts::from_slice(&[2, 3]);
        let _ = p.validate(&inst).expect("valid");
        assert!(p.is_lazy(&inst));
        assert!(p.is_greedy(&inst));
        assert!(p.is_minimal(&inst));
        assert!(p.is_lgm(&inst));
    }

    #[test]
    fn describe_renders_timeline() {
        let inst = inst();
        let p = naive_plan(&inst);
        let text = p.describe(&inst);
        assert!(text.contains("t=    2"), "{text}");
        assert!(text.contains("total:"));
        assert_eq!(text.lines().count(), 3, "two actions + total line: {text}");
    }

    #[test]
    fn non_lazy_plan_detected() {
        let inst = inst();
        let mut p = naive_plan(&inst);
        // Add an unforced action at t=0 (state ⟨1,1⟩ not full).
        p.actions[0] = Counts::from_slice(&[1, 0]);
        assert!(!p.is_lazy(&inst));
    }
}
