//! Problem instances: arrival sequences, cost functions, and the
//! response-time budget (§2 of the paper).

use crate::cost::{fits, total_cost, CostModel};
use crate::counts::Counts;

/// The modification arrival sequence `d_0, …, d_T`.
///
/// `arrivals.at(t)[i]` is the number of modifications on base table `R_i`
/// arriving at discrete time step `t`.
#[derive(Clone, Debug, PartialEq)]
pub struct Arrivals {
    n: usize,
    steps: Vec<Counts>,
}

impl Arrivals {
    /// Builds an arrival sequence from explicit per-step vectors. All
    /// vectors must share the same dimension.
    ///
    /// # Panics
    /// Panics when `steps` is empty or dimensions disagree.
    pub fn new(steps: Vec<Counts>) -> Self {
        assert!(!steps.is_empty(), "arrival sequence must cover t = 0");
        let n = steps[0].len();
        assert!(
            steps.iter().all(|d| d.len() == n),
            "all arrival vectors must have the same dimension"
        );
        Arrivals { n, steps }
    }

    /// A uniform sequence: `per_step` arrives at every `t ∈ [0, horizon]`.
    pub fn uniform(per_step: Counts, horizon: usize) -> Self {
        Arrivals {
            n: per_step.len(),
            steps: vec![per_step; horizon + 1],
        }
    }

    /// Number of base tables `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The horizon `T`; the sequence covers `t ∈ [0, T]`.
    pub fn horizon(&self) -> usize {
        self.steps.len() - 1
    }

    /// Arrivals at time `t`. Steps beyond the recorded horizon are zero.
    pub fn at(&self, t: usize) -> Counts {
        self.steps
            .get(t)
            .cloned()
            .unwrap_or_else(|| Counts::zero(self.n))
    }

    /// Total number of `R_i` modifications arriving during `(t, T]` —
    /// the `K_i` of the A* heuristic (§4.1).
    pub fn remaining_after(&self, t: usize, i: usize) -> u64 {
        self.steps.iter().skip(t + 1).map(|d| d[i]).sum()
    }

    /// Maximum number of `R_i` modifications arriving in any single step —
    /// the `m_i` of the A* heuristic (§4.1).
    pub fn max_step(&self, i: usize) -> u64 {
        self.steps.iter().map(|d| d[i]).max().unwrap_or(0)
    }

    /// Total arrivals per table over the whole horizon (the `K_i` of
    /// §3.3 when `t = -1`).
    pub fn totals(&self) -> Counts {
        let mut acc = Counts::zero(self.n);
        for d in &self.steps {
            acc.add_assign(d);
        }
        acc
    }

    /// Truncates the sequence to `[0, new_horizon]`.
    pub fn truncated(&self, new_horizon: usize) -> Arrivals {
        let end = (new_horizon + 1).min(self.steps.len());
        let mut steps: Vec<Counts> = self.steps[..end].to_vec();
        while steps.len() < new_horizon + 1 {
            steps.push(Counts::zero(self.n));
        }
        Arrivals { n: self.n, steps }
    }

    /// Repeats the sequence periodically to cover `[0, new_horizon]`
    /// (used by ADAPT when `T > T_0`, which assumes periodic arrivals).
    pub fn tiled(&self, new_horizon: usize) -> Arrivals {
        let period = self.steps.len();
        let steps = (0..=new_horizon)
            .map(|t| self.steps[t % period].clone())
            .collect();
        Arrivals { n: self.n, steps }
    }
}

/// A complete problem instance: `n` cost functions, an arrival sequence
/// over `[0, T]`, and the response-time budget `C`.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Per-table batch cost functions `f_1 … f_n`.
    pub costs: Vec<CostModel>,
    /// The modification arrival sequence.
    pub arrivals: Arrivals,
    /// The response-time constraint `C`: every post-action state `s` must
    /// satisfy `f(s) ≤ C`.
    pub budget: f64,
}

impl Instance {
    /// Builds an instance, checking dimensions agree.
    ///
    /// # Panics
    /// Panics when `costs.len() != arrivals.n()`.
    pub fn new(costs: Vec<CostModel>, arrivals: Arrivals, budget: f64) -> Self {
        assert_eq!(
            costs.len(),
            arrivals.n(),
            "one cost function per base table"
        );
        Instance {
            costs,
            arrivals,
            budget,
        }
    }

    /// Number of base tables.
    pub fn n(&self) -> usize {
        self.costs.len()
    }

    /// The refresh horizon `T`.
    pub fn horizon(&self) -> usize {
        self.arrivals.horizon()
    }

    /// Aggregate refresh cost `f(v) = Σ_i f_i(v[i])` of a state.
    pub fn refresh_cost(&self, v: &Counts) -> f64 {
        total_cost(&self.costs, v)
    }

    /// A state is *full* when refreshing from it would bust the budget:
    /// `f(s) > C`.
    pub fn is_full(&self, v: &Counts) -> bool {
        !fits(self.refresh_cost(v), self.budget)
    }

    /// True when the instance is *feasible*: a plan that flushes
    /// everything at every step keeps every post-action state empty, so
    /// feasibility only requires that each step's arrivals alone never
    /// exceed the budget... except arrivals land *before* the action, so
    /// any arrival burst can always be cleared immediately. Feasibility
    /// thus always holds; what can fail is *laziness-compatible*
    /// feasibility at `t = T` (the final flush may bust the budget — the
    /// paper permits this: the constraint binds only for `t < T`).
    /// This helper instead reports whether every *single-step* arrival is
    /// itself processable within budget, a useful sanity check when
    /// constructing instances where even NAIVE must act every step.
    pub fn single_step_processable(&self) -> bool {
        (0..=self.horizon()).all(|t| {
            let d = self.arrivals.at(t);
            fits(self.refresh_cost(&d), self.budget)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst2() -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 2.0), CostModel::linear(0.5, 5.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 9),
            10.0,
        )
    }

    #[test]
    fn uniform_arrivals_cover_horizon() {
        let a = Arrivals::uniform(Counts::from_slice(&[2, 3]), 4);
        assert_eq!(a.horizon(), 4);
        assert_eq!(a.at(0), Counts::from_slice(&[2, 3]));
        assert_eq!(a.at(4), Counts::from_slice(&[2, 3]));
        assert_eq!(a.at(5), Counts::zero(2), "beyond horizon is zero");
        assert_eq!(a.totals(), Counts::from_slice(&[10, 15]));
    }

    #[test]
    fn remaining_after_excludes_t_itself() {
        let a = Arrivals::uniform(Counts::from_slice(&[2]), 4);
        assert_eq!(a.remaining_after(1, 0), 6, "t in 2..=4");
        assert_eq!(a.remaining_after(4, 0), 0);
    }

    #[test]
    fn max_step_finds_burst() {
        let a = Arrivals::new(vec![
            Counts::from_slice(&[1]),
            Counts::from_slice(&[7]),
            Counts::from_slice(&[2]),
        ]);
        assert_eq!(a.max_step(0), 7);
    }

    #[test]
    fn truncated_pads_with_zeros() {
        let a = Arrivals::uniform(Counts::from_slice(&[1]), 2);
        let t = a.truncated(5);
        assert_eq!(t.horizon(), 5);
        assert_eq!(t.at(2), Counts::from_slice(&[1]));
        assert_eq!(t.at(3), Counts::zero(1));
    }

    #[test]
    fn tiled_repeats_periodically() {
        let a = Arrivals::new(vec![Counts::from_slice(&[1]), Counts::from_slice(&[5])]);
        let t = a.tiled(5);
        assert_eq!(
            (0..=5).map(|i| t.at(i)[0]).collect::<Vec<_>>(),
            vec![1, 5, 1, 5, 1, 5]
        );
    }

    #[test]
    fn fullness_matches_budget() {
        let inst = inst2();
        // f(⟨3, 2⟩) = (3+2) + (1+5) = 11 > 10 → full.
        assert!(inst.is_full(&Counts::from_slice(&[3, 2])));
        // f(⟨3, 0⟩) = 5 ≤ 10 → not full.
        assert!(!inst.is_full(&Counts::from_slice(&[3, 0])));
        assert!(!inst.is_full(&Counts::zero(2)));
    }

    #[test]
    fn single_step_processable_checks_each_step() {
        let inst = inst2();
        // Each step brings ⟨1,1⟩: f = 3 + 5.5 = 8.5 ≤ 10.
        assert!(inst.single_step_processable());
        let tight = Instance::new(
            inst.costs.clone(),
            Arrivals::uniform(Counts::from_slice(&[10, 10]), 3),
            10.0,
        );
        assert!(!tight.single_step_processable());
    }
}
