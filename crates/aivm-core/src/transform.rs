//! Plan transformations of §3: `MakeLazyPlan` (Lemma 1),
//! `MinimizeAction`, and `MakeLGMPlan` (Lemma 2 / Theorem 1).
//!
//! These procedures are constructive proofs in the paper; here they are
//! executable, which lets the test suite verify the paper's bounds
//! (`f(MakeLazyPlan(P)) ≤ f(P)`, `f(MakeLGMPlan(P)) ≤ 2·f(P)`) on
//! arbitrary randomly generated valid plans.

use crate::cost::{fits, CostFn};
use crate::counts::Counts;
use crate::instance::Instance;
use crate::plan::Plan;

/// `MakeLazyPlan` (§3.1): postpones every action of `plan` until an
/// action is forced (the pre-action state is full) or `t = T`, at which
/// point all accumulated actions are applied at once.
///
/// Guarantees (Lemma 1): the result is valid and lazy, and by
/// subadditivity costs no more than `plan`.
pub fn make_lazy_plan(inst: &Instance, plan: &Plan) -> Plan {
    let horizon = inst.horizon();
    let n = inst.n();
    let mut accumulated = Counts::zero(n);
    let mut actions = Vec::with_capacity(horizon + 1);
    let mut s = Counts::zero(n); // pre-action state under the lazy plan
    for t in 0..=horizon {
        accumulated.add_assign(&plan.actions[t]);
        s.add_assign(&inst.arrivals.at(t));
        if inst.is_full(&s) || t == horizon {
            actions.push(accumulated.clone());
            s = s.checked_sub(&accumulated).expect(
                "accumulated actions never exceed accumulated arrivals for a valid input plan",
            );
            accumulated = Counts::zero(n);
        } else {
            actions.push(Counts::zero(n));
        }
    }
    Plan { actions }
}

/// `MinimizeAction` (§3.2): given a greedy action `q` (a set of tables to
/// empty) and the pre-action state `s`, returns a *minimal* greedy action
/// that empties a subset of the tables emptied by `q` while still
/// satisfying `f(s − q') ≤ C`.
///
/// Components are considered for dropping in decreasing order of the cost
/// they would save if kept batched (`f_i(s[i])`), a deterministic choice
/// among the generally many minimal sub-actions.
pub fn minimize_action(inst: &Instance, q: &Counts, s: &Counts) -> Counts {
    let mut keep: Vec<usize> = q.support();
    debug_assert!(
        keep.iter().all(|&i| q[i] == s[i]),
        "minimize_action expects a greedy action"
    );
    // Try to drop the most expensive flushes first: dropping them saves
    // the most cost now, and if the budget still holds afterwards we have
    // found a cheaper minimal action.
    let mut order = keep.clone();
    order.sort_by(|&a, &b| {
        inst.costs[b]
            .eval(s[b])
            .partial_cmp(&inst.costs[a].eval(s[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for &i in &order {
        // Tentatively drop i from the flush set.
        let trial: Vec<usize> = keep.iter().copied().filter(|&j| j != i).collect();
        let mut post = s.clone();
        for &j in &trial {
            post[j] = 0;
        }
        if fits(inst.refresh_cost(&post), inst.budget) {
            keep = trial;
        }
    }
    let mut result = Counts::zero(s.len());
    for &i in &keep {
        result[i] = s[i];
    }
    result
}

/// `MakeLGMPlan` (§3.2): converts any valid plan into a valid LGM plan.
/// At each forced instant, table `i` is flushed iff the LGM plan's
/// pending count strictly exceeds the reference plan's post-action count
/// (`s_Q[i] > s_P⁺[i]`), then the flush set is minimized.
///
/// Guarantees (Lemma 2, Theorem 1): the result is valid, LGM, and costs
/// at most `2 · f(plan)`.
pub fn make_lgm_plan(inst: &Instance, plan: &Plan) -> Plan {
    let horizon = inst.horizon();
    let n = inst.n();
    // Post-action states of the reference plan P.
    let p_pre = plan.pre_action_states(inst);
    let mut actions = Vec::with_capacity(horizon + 1);
    let mut s_q = Counts::zero(n); // pre-action state under Q
    for (t, p_pre_t) in p_pre.iter().enumerate() {
        s_q.add_assign(&inst.arrivals.at(t));
        if t == horizon {
            actions.push(s_q.clone());
            break;
        }
        if inst.is_full(&s_q) {
            let p_post = p_pre_t
                .checked_sub(&plan.actions[t])
                .expect("reference plan must be valid");
            let mut q = Counts::zero(n);
            for i in 0..n {
                if s_q[i] > p_post[i] {
                    q[i] = s_q[i];
                }
            }
            let q = minimize_action(inst, &q, &s_q);
            s_q = s_q.checked_sub(&q).expect("q flushes at most s_q");
            actions.push(q);
        } else {
            actions.push(Counts::zero(n));
        }
    }
    Plan { actions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::instance::Arrivals;
    use crate::plan::naive_plan;

    fn inst() -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 1.0), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 9),
            8.0,
        )
    }

    /// An eager plan that flushes everything every step.
    fn eager(inst: &Instance) -> Plan {
        let mut actions = Vec::new();
        for t in 0..=inst.horizon() {
            actions.push(inst.arrivals.at(t));
        }
        Plan { actions }
    }

    #[test]
    fn make_lazy_never_increases_cost() {
        let inst = inst();
        let p = eager(&inst);
        p.validate(&inst).expect("eager plan valid");
        let q = make_lazy_plan(&inst, &p);
        q.validate(&inst).expect("lazy plan valid");
        assert!(q.is_lazy(&inst));
        assert!(q.cost(&inst) <= p.cost(&inst) + 1e-9);
        assert!(
            q.cost(&inst) < p.cost(&inst),
            "batching must strictly help with setup costs"
        );
    }

    #[test]
    fn make_lazy_is_identity_on_lazy_plans() {
        let inst = inst();
        let p = naive_plan(&inst);
        let q = make_lazy_plan(&inst, &p);
        assert_eq!(p, q);
    }

    #[test]
    fn minimize_action_drops_redundant_components() {
        let inst = inst();
        // State ⟨3,3⟩ costs 4 + 7 = 11 > 8. Flushing both is valid but
        // dropping table 0 leaves ⟨3,0⟩ = 4 ≤ 8, and dropping table 1
        // leaves ⟨0,3⟩ = 7 ≤ 8; minimality keeps exactly one.
        let s = Counts::from_slice(&[3, 3]);
        let q = minimize_action(&inst, &s.clone(), &s);
        let flushed = q.support();
        assert_eq!(flushed.len(), 1, "one flush suffices: {q:?}");
        // Deterministic tie-break: table 1 is the more expensive flush
        // (7 > 4) so it is dropped first, leaving table 0... dropping
        // table 1 leaves ⟨0,3⟩ (cost 7 ≤ 8) so table 1 IS dropped,
        // then dropping table 0 would leave ⟨3,3⟩ (11 > 8), kept.
        assert_eq!(q, Counts::from_slice(&[3, 0]));
    }

    #[test]
    fn minimize_action_keeps_necessary_components() {
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 0.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 3),
            4.0,
        );
        // ⟨5,5⟩ costs 10; flushing either alone leaves cost 5 > 4, so the
        // minimal action must flush both.
        let s = Counts::from_slice(&[5, 5]);
        let q = minimize_action(&inst, &s.clone(), &s);
        assert_eq!(q, s);
    }

    #[test]
    fn make_lgm_produces_valid_lgm_plan_within_2x() {
        let inst = inst();
        for reference in [eager(&inst), naive_plan(&inst)] {
            reference.validate(&inst).expect("reference valid");
            let q = make_lgm_plan(&inst, &reference);
            q.validate(&inst).expect("LGM plan valid");
            assert!(q.is_lgm(&inst), "plan must be LGM");
            assert!(
                q.cost(&inst) <= 2.0 * reference.cost(&inst) + 1e-9,
                "Theorem 1 bound violated: {} > 2 × {}",
                q.cost(&inst),
                reference.cost(&inst)
            );
        }
    }

    #[test]
    fn make_lgm_handles_single_table() {
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 2.0)],
            Arrivals::uniform(Counts::from_slice(&[2]), 7),
            9.0,
        );
        let p = eager(&inst);
        let q = make_lgm_plan(&inst, &p);
        q.validate(&inst).expect("valid");
        assert!(q.is_lgm(&inst));
        assert!(q.cost(&inst) <= 2.0 * p.cost(&inst) + 1e-9);
    }
}
