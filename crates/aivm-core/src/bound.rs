//! The bipartite-graph machinery behind Theorem 1 (§3.2).
//!
//! For a fixed base table `R_i`, actions of a reference plan `P` and of
//! its LGM transformation `Q` each process a contiguous FIFO range of
//! `R_i`'s modification stream. Two actions are connected when their
//! ranges intersect. Lemma 3 says every `P`-node has degree ≤ 2; Lemma 4
//! says each `Q`-node's cost is bounded by the sum of its neighbours'
//! costs. This module materializes that graph so tests (and the `repro
//! bounds` harness) can check the lemmas on arbitrary plan pairs.

use crate::cost::CostFn;
use crate::instance::Instance;
use crate::plan::Plan;

/// One action restricted to a single table: processed modifications form
/// the FIFO half-open range `[start, start + count)` of that table's
/// arrival stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableAction {
    /// Time of the action.
    pub t: usize,
    /// First processed modification (0-based position in arrival order).
    pub start: u64,
    /// Number of modifications processed.
    pub count: u64,
}

impl TableAction {
    /// End of the processed range (exclusive).
    pub fn end(&self) -> u64 {
        self.start + self.count
    }

    /// True when the two actions process at least one modification in
    /// common.
    pub fn intersects(&self, other: &TableAction) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// Extracts `P(i)` — the per-table action list with FIFO ranges — from a
/// plan.
pub fn table_actions(plan: &Plan, i: usize) -> Vec<TableAction> {
    let mut processed = 0u64;
    let mut out = Vec::new();
    for (t, p) in plan.actions.iter().enumerate() {
        let k = p[i];
        if k > 0 {
            out.push(TableAction {
                t,
                start: processed,
                count: k,
            });
            processed += k;
        }
    }
    out
}

/// The bipartite intersection graph `G = (V_P(i), V_Q(i), E)` for one
/// table.
#[derive(Clone, Debug)]
pub struct BipartiteBound {
    /// Actions of the reference plan on table `i`.
    pub p_nodes: Vec<TableAction>,
    /// Actions of the LGM plan on table `i`.
    pub q_nodes: Vec<TableAction>,
    /// Edges as `(p_index, q_index)` pairs.
    pub edges: Vec<(usize, usize)>,
}

impl BipartiteBound {
    /// Builds the graph for table `i` from a plan pair.
    pub fn build(p: &Plan, q: &Plan, i: usize) -> Self {
        let p_nodes = table_actions(p, i);
        let q_nodes = table_actions(q, i);
        let mut edges = Vec::new();
        for (pi, pa) in p_nodes.iter().enumerate() {
            for (qi, qa) in q_nodes.iter().enumerate() {
                if pa.intersects(qa) {
                    edges.push((pi, qi));
                }
            }
        }
        BipartiteBound {
            p_nodes,
            q_nodes,
            edges,
        }
    }

    /// Degree of each `P`-node.
    pub fn p_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.p_nodes.len()];
        for &(pi, _) in &self.edges {
            d[pi] += 1;
        }
        d
    }

    /// Lemma 3 check: every `P`-node has degree at most 2.
    pub fn lemma3_holds(&self) -> bool {
        self.p_degrees().iter().all(|&d| d <= 2)
    }

    /// Lemma 4 check under cost function `f`: for every `Q`-node `x`,
    /// `f(x) ≤ Σ_{y ∈ N(x)} f(y)`.
    pub fn lemma4_holds(&self, f: &dyn CostFn) -> bool {
        self.q_nodes.iter().enumerate().all(|(qi, qa)| {
            let neighbour_sum: f64 = self
                .edges
                .iter()
                .filter(|&&(_, q)| q == qi)
                .map(|&(p, _)| f.eval(self.p_nodes[p].count))
                .sum();
            f.eval(qa.count) <= neighbour_sum + crate::cost::COST_EPS
        })
    }
}

/// Verifies the per-table cost bound of Theorem 1's proof on a concrete
/// plan pair: for each table `i`,
/// `Σ_{x ∈ Q(i)} f_i(x) ≤ 2 · Σ_{y ∈ P(i)} f_i(y)`, and the Lemma 3/4
/// structural conditions. Returns the per-table `(q_cost, p_cost)` pairs.
pub fn verify_theorem1_structure(
    inst: &Instance,
    p: &Plan,
    q: &Plan,
) -> Result<Vec<(f64, f64)>, String> {
    let mut out = Vec::with_capacity(inst.n());
    for i in 0..inst.n() {
        let g = BipartiteBound::build(p, q, i);
        if !g.lemma3_holds() {
            return Err(format!(
                "Lemma 3 violated on table {i}: degrees {:?}",
                g.p_degrees()
            ));
        }
        if !g.lemma4_holds(&inst.costs[i]) {
            return Err(format!("Lemma 4 violated on table {i}"));
        }
        let pc: f64 = g.p_nodes.iter().map(|a| inst.costs[i].eval(a.count)).sum();
        let qc: f64 = g.q_nodes.iter().map(|a| inst.costs[i].eval(a.count)).sum();
        if qc > 2.0 * pc + crate::cost::COST_EPS {
            return Err(format!(
                "per-table 2x bound violated on table {i}: {qc} > 2×{pc}"
            ));
        }
        out.push((qc, pc));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::counts::Counts;
    use crate::instance::Arrivals;
    use crate::plan::naive_plan;
    use crate::transform::make_lgm_plan;

    fn inst() -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 1.0), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 19),
            8.0,
        )
    }

    #[test]
    fn table_actions_track_fifo_ranges() {
        let inst = inst();
        let p = naive_plan(&inst);
        let acts = table_actions(&p, 0);
        assert!(!acts.is_empty());
        // Ranges must tile the arrival stream without gaps.
        let mut pos = 0;
        for a in &acts {
            assert_eq!(a.start, pos);
            pos = a.end();
        }
        assert_eq!(pos, inst.arrivals.totals()[0]);
    }

    #[test]
    fn intersection_is_range_overlap() {
        let a = TableAction {
            t: 0,
            start: 0,
            count: 5,
        };
        let b = TableAction {
            t: 1,
            start: 4,
            count: 2,
        };
        let c = TableAction {
            t: 2,
            start: 5,
            count: 3,
        };
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
    }

    #[test]
    fn theorem1_structure_holds_for_lgm_of_naive() {
        let inst = inst();
        let p = naive_plan(&inst);
        let q = make_lgm_plan(&inst, &p);
        q.validate(&inst).expect("lgm valid");
        let per_table = verify_theorem1_structure(&inst, &p, &q).expect("bounds hold");
        assert_eq!(per_table.len(), 2);
        let q_total: f64 = per_table.iter().map(|(q, _)| q).sum();
        let p_total: f64 = per_table.iter().map(|(_, p)| p).sum();
        assert!(q_total <= 2.0 * p_total + 1e-9);
    }

    #[test]
    fn theorem1_structure_holds_for_lgm_of_eager() {
        let inst = inst();
        let eager = Plan {
            actions: (0..=inst.horizon()).map(|t| inst.arrivals.at(t)).collect(),
        };
        let q = make_lgm_plan(&inst, &eager);
        q.validate(&inst).expect("lgm valid");
        verify_theorem1_structure(&inst, &eager, &q).expect("bounds hold");
    }
}
