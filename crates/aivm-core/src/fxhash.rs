//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! Two inner loops hash keys constantly: the engine's executor (grouping
//! deltas by join key, consolidating Z-sets, maintaining bag state and
//! hash indexes) and the solver's state arena (one `(Counts, t)` intern
//! lookup per generated A\* edge). `std`'s default SipHash is
//! DoS-resistant but costs several times more per small write than
//! needed here, where every key is internal (no untrusted input reaches
//! these maps). This is the multiply-rotate scheme used by rustc's
//! `FxHasher`: one rotate, one xor and one multiply per 8 bytes.
//!
//! Determinism note: the hash function is fixed (no per-process random
//! seed), so map *iteration order* is stable across runs for identical
//! key sets. Nothing in the engine relies on that order — results that
//! reach reports are sorted — but it makes debugging reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from rustc's FxHasher (a.k.a. FireFox hash); chosen for
/// good avalanche behaviour on pointer-sized inputs.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. `Default` starts at zero, as `BuildHasherDefault`
/// requires.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// An `FxHashMap` pre-sized for `cap` entries.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Hashes a single value with [`FxHasher`]. Because the hasher has no
/// per-process seed, the result is stable across runs and processes —
/// the content checksums that durability tests compare between a crashed
/// and an uncrashed run are built on this.
pub fn hash_one<T: std::hash::Hash>(v: &T) -> u64 {
    use std::hash::BuildHasher;
    BuildHasherDefault::<FxHasher>::default().hash_one(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_one(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // Unaligned tail bytes still contribute.
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, i32> = map_with_capacity(4);
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
