//! The §3.2 tightness construction showing `OPT^LGM ≥ (2 − ε)·OPT`.
//!
//! One base table with the capped cost function
//! `f(x) = (ε·x/2)·C` for `x ≤ 2/ε`, `(1 + ε/2)·C` beyond, and
//! `2/ε + 1` arrivals at each of `2m` steps. Any LGM plan is forced to
//! flush all arrivals every step (cost `(1 + ε/2)·C` each), while a
//! non-greedy plan can leave `2/ε` modifications behind at even steps and
//! clear `4/ε + 1` at odd steps.

use crate::cost::CostModel;
use crate::counts::Counts;
use crate::instance::{Arrivals, Instance};
use crate::plan::Plan;

/// The tightness instance for a given `ε` (where `1/ε` must be integral)
/// and `m` (the horizon is `T = 2m − 1`).
pub fn tightness_instance(eps: f64, m: usize, c: f64) -> Instance {
    assert!(
        eps > 0.0 && (1.0 / eps).fract().abs() < 1e-9,
        "1/ε must be an integer"
    );
    assert!(m >= 1);
    let per_step = (2.0 / eps) as u64 + 1;
    Instance::new(
        vec![CostModel::Capped { eps, c }],
        Arrivals::uniform(Counts::from_slice(&[per_step]), 2 * m - 1),
        c,
    )
}

/// The (unique) LGM plan on the tightness instance: every step's arrivals
/// alone already bust the budget, so each step flushes everything.
/// Total cost: `2m · (1 + ε/2) · C = (2 + ε)·m·C`.
pub fn tightness_lgm_plan(inst: &Instance) -> Plan {
    let horizon = inst.horizon();
    let actions = (0..=horizon).map(|t| inst.arrivals.at(t)).collect();
    Plan { actions }
}

/// The non-LGM witness plan of §3.2: at even steps process all but `2/ε`
/// modifications (cost `f(1)`), at odd steps process the leftover plus the
/// new arrivals together (cost `f(4/ε + 1)`).
/// Total cost: `(f(1) + f(4/ε + 1))·m = (1 + ε)·m·C`.
pub fn tightness_witness_plan(inst: &Instance) -> Plan {
    let horizon = inst.horizon();
    let per_step = inst.arrivals.at(0)[0];
    let leave = per_step - 1; // 2/ε
    let mut actions = Vec::with_capacity(horizon + 1);
    for t in 0..=horizon {
        if t % 2 == 0 {
            // Process one modification, leave 2/ε pending.
            actions.push(Counts::from_slice(&[1]));
        } else {
            // Process the 2/ε leftovers plus the 2/ε + 1 new arrivals.
            actions.push(Counts::from_slice(&[leave + per_step]));
        }
    }
    Plan { actions }
}

/// Analytic costs `(OPT^LGM, witness upper bound on OPT)` of the
/// construction: `((2 + ε)·m·C, (1 + ε)·m·C)`.
pub fn tightness_analytic_costs(eps: f64, m: usize, c: f64) -> (f64, f64) {
    let m = m as f64;
    ((2.0 + eps) * m * c, (1.0 + eps) * m * c)
}

/// The ratio `OPT^LGM / OPT ≥ (2 + ε)/(1 + ε) ≥ 2 − ε` realized by the
/// construction.
pub fn tightness_ratio(eps: f64) -> f64 {
    (2.0 + eps) / (1.0 + eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFn;

    #[test]
    fn lgm_plan_is_forced_every_step() {
        let inst = tightness_instance(0.5, 3, 10.0);
        // 2/ε + 1 = 5 arrivals/step; f(5) = 12.5 > 10 so every pre-action
        // state is full even right after a flush.
        let plan = tightness_lgm_plan(&inst);
        plan.validate(&inst).expect("valid");
        assert!(plan.is_lgm(&inst));
        let (lgm_cost, _) = tightness_analytic_costs(0.5, 3, 10.0);
        assert!((plan.cost(&inst) - lgm_cost).abs() < 1e-9);
    }

    #[test]
    fn witness_plan_is_valid_and_cheaper() {
        let inst = tightness_instance(0.5, 3, 10.0);
        let lgm = tightness_lgm_plan(&inst);
        let witness = tightness_witness_plan(&inst);
        witness.validate(&inst).expect("witness valid");
        assert!(
            !witness.is_greedy(&inst),
            "the witness is deliberately non-greedy"
        );
        let (lgm_cost, witness_cost) = tightness_analytic_costs(0.5, 3, 10.0);
        assert!((lgm.cost(&inst) - lgm_cost).abs() < 1e-9);
        assert!((witness.cost(&inst) - witness_cost).abs() < 1e-9);
        let ratio = lgm.cost(&inst) / witness.cost(&inst);
        assert!((ratio - tightness_ratio(0.5)).abs() < 1e-9);
        assert!(ratio > 2.0 - 0.5);
    }

    #[test]
    fn ratio_approaches_two_as_eps_shrinks() {
        let mut prev = 0.0;
        for k in [2u32, 4, 10, 100, 1000] {
            let eps = 1.0 / k as f64;
            let r = tightness_ratio(eps);
            assert!(r > prev, "ratio must increase as ε shrinks");
            assert!(r < 2.0);
            assert!(r >= 2.0 - eps - 1e-12);
            prev = r;
        }
        assert!(tightness_ratio(0.001) > 1.998);
    }

    #[test]
    fn capped_cost_is_flat_beyond_threshold() {
        let inst = tightness_instance(0.25, 2, 8.0);
        let f = &inst.costs[0];
        // threshold 2/ε = 8
        assert!((f.eval(8) - 8.0).abs() < 1e-9);
        assert!((f.eval(9) - f.eval(10_000)).abs() < 1e-12);
    }
}
