//! Problem model for **asymmetric batch incremental view maintenance**.
//!
//! This crate implements the formal framework of He, Xie, Yang and Yu,
//! *Asymmetric Batch Incremental View Maintenance* (ICDE 2005): a
//! materialized view over base tables `R_1 … R_n` is maintained in
//! batches; modifications accumulate in delta tables and a *maintenance
//! plan* decides, at each discrete time step, how many pending
//! modifications of each table to flush into the view. Every post-action
//! state must be refreshable within a response-time budget `C`; the goal
//! is to minimize total maintenance cost, where flushing `k` pending
//! modifications of table `R_i` costs `f_i(k)` for a monotone,
//! subadditive cost function `f_i`.
//!
//! Layout:
//!
//! * [`counts`] — the n-vectors of pending/processed modification counts.
//! * [`cost`] — cost-function shapes (`Linear`, `Step`, `Power`,
//!   `Piecewise`, `Capped`) and the budget comparison helpers.
//! * [`instance`] — arrival sequences and complete problem instances.
//! * [`plan`] — plans, validity (Definition 1), the lazy/greedy/minimal
//!   predicates (Definitions 2–3), and the NAIVE baseline.
//! * [`transform`] — `MakeLazyPlan`, `MinimizeAction`, `MakeLGMPlan`
//!   (the constructive proofs of Lemma 1 and Theorem 1).
//! * [`bound`] — the bipartite intersection graph used by Theorem 1's
//!   proof, executable for verification.
//! * [`tightness`] — the §3.2 instance showing the factor-2 bound is
//!   tight.
//!
//! Plan *search* (A\*, the exhaustive optimum, ONLINE, ADAPT) lives in
//! the `aivm-solver` crate; execution substrates live in `aivm-engine`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bound;
pub mod cost;
pub mod counts;
pub mod fxhash;
pub mod instance;
pub mod plan;
pub mod tightness;
pub mod transform;

pub use cost::{fits, total_cost, CostFn, CostModel, COST_EPS};
pub use counts::Counts;
pub use instance::{Arrivals, Instance};
pub use plan::{naive_plan, Plan, PlanError, PlanStats};
pub use transform::{make_lazy_plan, make_lgm_plan, minimize_action};
