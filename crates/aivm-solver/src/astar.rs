//! The A\* search for an optimal LGM plan (§4.1).
//!
//! The space of LGM plans is modelled as a DAG: each node is a possible
//! post-action system state annotated with its time; edges lead from a
//! node to the first future instant where the pre-action state becomes
//! full, one edge per *minimal valid greedy* action there, weighted by
//! the action's cost. A special `source` (t = −1, empty state) and
//! `destination` (t = T, empty state, view refreshed) bracket the DAG;
//! shortest paths correspond exactly to minimum-cost LGM plans
//! (Theorem 3).
//!
//! The search supports three heuristics (see [`HeuristicMode`]):
//!
//! * **Paper** (§4.1): `h(x) = Σ_i ⌊(s[i] + K_i) / b_i⌋ · f_i(b_i)` with
//!   `b_i = m_i + max{b : f_i(b) ≤ C}` — the cost of processing each
//!   table's remaining modifications in maximal batches, ignoring other
//!   tables. **Reproduction finding:** contrary to the paper's Lemma 7,
//!   this heuristic is *not* consistent (a small flush can drop a
//!   table's floor term by a full `f_i(b_i)`), and for non-linear cost
//!   functions it is not even admissible (e.g. staircase costs where
//!   batches smaller than `b_i` are disproportionately cheap). It *is*
//!   admissible for linear costs — the case all of the paper's
//!   experiments use — because
//!   `⌊R/b⌋(a·b + b₀) ≤ a·R + b₀·⌈R/b⌉`. The search therefore reopens
//!   closed nodes when a cheaper path appears, which preserves optimality
//!   under any admissible heuristic.
//! * **Subadditive**: `h(x) = Σ_i f_i(s[i] + K_i)` — process each
//!   table's remainder in one batch. Subadditivity makes this bound both
//!   admissible and consistent for *every* valid cost function.
//! * **None**: uniform-cost search (Dijkstra), the ablation baseline.

use crate::actions::minimal_greedy_actions_into;
use aivm_core::fxhash::{self, FxHashMap};
use aivm_core::{CostFn, Counts, Instance, Plan};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;

/// Which lower bound guides the search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HeuristicMode {
    /// The paper's per-table maximal-batch bound (§4.1). Admissible for
    /// linear cost functions; combined with node reopening the search
    /// stays optimal there. Default for fidelity with the paper.
    #[default]
    Paper,
    /// The single-batch subadditive bound `Σ_i f_i(remaining_i)`:
    /// admissible and consistent for every monotone subadditive cost.
    Subadditive,
    /// No heuristic: uniform-cost search (Dijkstra).
    None,
}

/// A node in the LGM plan graph: a post-action state at a point in time.
/// `t = -1` is the source (before any arrivals).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    t: i64,
    state: Counts,
}

/// Sentinel for "no parent" (the source node).
const NO_PARENT: u32 = u32::MAX;

/// Arena of interned search nodes. Each distinct `(t, state)` key is
/// assigned a dense `u32` id on first sight; all per-node search state
/// (`g`, parent edge, closed flag) lives in flat vectors indexed by id,
/// so the hot loop does one hash lookup per generated edge and plain
/// array accesses everywhere else — no per-probe `Counts` clones, no
/// rehashing of keys on every relax.
struct Arena {
    index: FxHashMap<Key, u32>,
    /// id → key (time and post-action state).
    keys: Vec<Key>,
    /// id → best known path cost (`∞` until discovered).
    g: Vec<f64>,
    /// id → (parent id, action time, action) for path reconstruction.
    parent: Vec<(u32, i64, Counts)>,
    /// id → expanded flag.
    closed: Vec<bool>,
}

impl Arena {
    fn with_capacity(cap: usize) -> Self {
        Arena {
            index: fxhash::map_with_capacity(cap),
            keys: Vec::with_capacity(cap),
            g: Vec::with_capacity(cap),
            parent: Vec::with_capacity(cap),
            closed: Vec::with_capacity(cap),
        }
    }

    /// Returns the id for `key`, interning it if new.
    fn intern(&mut self, key: Key) -> u32 {
        match self.index.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = self.keys.len() as u32;
                self.keys.push(e.key().clone());
                self.g.push(f64::INFINITY);
                self.parent.push((NO_PARENT, 0, Counts::default()));
                self.closed.push(false);
                e.insert(id);
                id
            }
        }
    }
}

/// Search effort counters, used by the benchmarks to quantify how much
/// of the graph the heuristic prunes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes dequeued and expanded.
    pub nodes_expanded: usize,
    /// Edges generated (successor tuples produced).
    pub nodes_generated: usize,
    /// Largest frontier size observed.
    pub max_frontier: usize,
    /// Closed nodes reopened because a cheaper path appeared (only
    /// possible under an inconsistent heuristic such as the paper's).
    pub reopened: usize,
}

/// Result of a successful search.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The optimal LGM plan.
    pub plan: Plan,
    /// Its total maintenance cost (`OPT^LGM`).
    pub cost: f64,
    /// Search effort counters.
    pub stats: SearchStats,
}

struct HeapEntry {
    d: f64, // g + h
    g: f64,
    id: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.d == other.d
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on d; BinaryHeap is a max-heap, so reverse. Ties on d
        // break toward the LARGER g (the deeper node): uniform arrivals
        // with linear costs produce huge f-plateaus of equivalent
        // schedules, and expanding shallow plateau nodes first floods the
        // frontier breadth-first (hundreds of thousands of expansions at
        // T = 2000) where depth-first tie-breaking walks almost straight
        // to the goal.
        other
            .d
            .total_cmp(&self.d)
            .then_with(|| self.g.total_cmp(&other.g))
    }
}

/// Precomputed heuristic tables.
struct Heuristic {
    /// `b_i`: the largest batch that can ever need processing in one go.
    b: Vec<u64>,
    /// `f_i(b_i)` cached.
    fb: Vec<f64>,
    /// `suffix[i][t]` = number of `R_i` arrivals in `(t, T]`, indexed by
    /// `t + 1` so that `t = -1` works.
    suffix: Vec<Vec<u64>>,
    mode: HeuristicMode,
    costs: Vec<aivm_core::CostModel>,
}

impl Heuristic {
    fn new(inst: &Instance, mode: HeuristicMode) -> Self {
        let n = inst.n();
        let horizon = inst.horizon();
        let mut b = Vec::with_capacity(n);
        let mut fb = Vec::with_capacity(n);
        for i in 0..n {
            let m_i = inst.arrivals.max_step(i);
            let max_b = inst.costs[i].max_batch(inst.budget);
            let b_i = m_i.saturating_add(max_b);
            fb.push(if b_i == 0 || b_i == u64::MAX {
                0.0
            } else {
                inst.costs[i].eval(b_i)
            });
            b.push(b_i);
        }
        // suffix[i][t+1] = Σ_{u > t} d_u[i]
        let mut suffix = vec![vec![0u64; horizon + 2]; n];
        for (i, row) in suffix.iter_mut().enumerate() {
            for t in (0..=horizon).rev() {
                row[t] = row[t + 1] + inst.arrivals.at(t)[i];
            }
        }
        Heuristic {
            b,
            fb,
            suffix,
            mode,
            costs: inst.costs.clone(),
        }
    }

    /// `h(x)` for a node at time `t` (−1 for source) with post-action
    /// state `s`.
    fn eval(&self, t: i64, s: &Counts) -> f64 {
        if self.mode == HeuristicMode::None {
            return 0.0;
        }
        let mut h = 0.0;
        for i in 0..s.len() {
            let idx = (t + 1) as usize;
            let k_i = self.suffix[i].get(idx).copied().unwrap_or(0);
            let remaining = s[i] + k_i;
            if remaining == 0 {
                continue;
            }
            match self.mode {
                HeuristicMode::Paper => {
                    // The paper's maximal-batch floor term, strengthened
                    // per table with the single-batch bound
                    // `f_i(remaining)`. For linear costs both are lower
                    // bounds on table i's share of any plan's cost, so
                    // their max is admissible too — and the single-batch
                    // term carries the states where `remaining < b_i`
                    // zeroes the floor, which otherwise flood the
                    // frontier at large horizons (360k expansions at
                    // T = 2000 with the bare floor term vs ~20k with the
                    // max).
                    let single = self.costs[i].eval(remaining);
                    let b_i = self.b[i];
                    let floor = if b_i == 0 || b_i == u64::MAX {
                        0.0
                    } else {
                        (remaining / b_i) as f64 * self.fb[i]
                    };
                    h += floor.max(single);
                }
                HeuristicMode::Subadditive => {
                    h += self.costs[i].eval(remaining);
                }
                HeuristicMode::None => unreachable!(),
            }
        }
        h
    }
}

/// Finds an optimal LGM plan via A\* with the §4.1 heuristic (plus node
/// reopening; see the module docs).
pub fn optimal_lgm_plan(inst: &Instance) -> Solution {
    search(inst, HeuristicMode::Paper)
}

/// Same search with the heuristic disabled (uniform-cost / Dijkstra).
/// Exposed for the ablation benchmark comparing node expansions.
pub fn optimal_lgm_plan_dijkstra(inst: &Instance) -> Solution {
    search(inst, HeuristicMode::None)
}

/// A\* under an explicit heuristic mode.
pub fn optimal_lgm_plan_with(inst: &Instance, mode: HeuristicMode) -> Solution {
    search(inst, mode)
}

fn search(inst: &Instance, mode: HeuristicMode) -> Solution {
    let horizon = inst.horizon() as i64;
    let n = inst.n();
    let heur = Heuristic::new(inst, mode);

    let mut arena = Arena::with_capacity(1024);
    let source = arena.intern(Key {
        t: -1,
        state: Counts::zero(n),
    });
    let dest = arena.intern(Key {
        t: horizon,
        state: Counts::zero(n),
    });
    let mut queue: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(1024);
    let mut stats = SearchStats::default();

    arena.g[source as usize] = 0.0;
    queue.push(HeapEntry {
        d: heur.eval(-1, &arena.keys[source as usize].state),
        g: 0.0,
        id: source,
    });

    // Scratch buffers reused across expansions: the accumulated
    // pre-action state and the enumerated minimal actions.
    let mut cum = Counts::zero(n);
    let mut actions_buf: Vec<Counts> = Vec::new();

    while let Some(entry) = queue.pop() {
        stats.max_frontier = stats.max_frontier.max(queue.len() + 1);
        let id = entry.id;
        if arena.closed[id as usize] {
            continue; // stale duplicate
        }
        if entry.g > arena.g[id as usize] + 1e-12 {
            continue;
        }
        arena.closed[id as usize] = true;
        stats.nodes_expanded += 1;

        if id == dest {
            let plan = reconstruct(inst, &arena, dest);
            debug_assert!(plan.validate(inst).is_ok());
            return Solution {
                plan,
                cost: entry.g,
                stats,
            };
        }

        // Accumulate arrivals until the pre-action state becomes full.
        let key_t = arena.keys[id as usize].t;
        cum.copy_from(&arena.keys[id as usize].state);
        let mut reached_full_before_t = None;
        for t in (key_t + 1)..=horizon {
            cum.add_assign(&inst.arrivals.at(t as usize));
            if t < horizon && inst.is_full(&cum) {
                reached_full_before_t = Some(t);
                break;
            }
        }

        match reached_full_before_t {
            None => {
                // Single edge to destination: flush everything at T.
                let w = inst.refresh_cost(&cum);
                relax(
                    &heur,
                    &mut arena,
                    &mut queue,
                    &mut stats,
                    id,
                    Key {
                        t: horizon,
                        state: Counts::zero(n),
                    },
                    horizon,
                    cum.clone(),
                    entry.g + w,
                );
            }
            Some(t2) => {
                minimal_greedy_actions_into(&inst.costs, inst.budget, &cum, &mut actions_buf);
                for q in actions_buf.drain(..) {
                    let post = cum
                        .checked_sub(&q)
                        .expect("greedy action flushes at most the pending count");
                    let w = inst.refresh_cost(&q);
                    relax(
                        &heur,
                        &mut arena,
                        &mut queue,
                        &mut stats,
                        id,
                        Key { t: t2, state: post },
                        t2,
                        q,
                        entry.g + w,
                    );
                }
            }
        }
    }

    unreachable!(
        "destination is always reachable: flushing everything whenever forced is a valid LGM plan"
    );
}

#[allow(clippy::too_many_arguments)]
fn relax(
    heur: &Heuristic,
    arena: &mut Arena,
    queue: &mut BinaryHeap<HeapEntry>,
    stats: &mut SearchStats,
    from: u32,
    to_key: Key,
    action_t: i64,
    action: Counts,
    new_g: f64,
) {
    stats.nodes_generated += 1;
    let to = arena.intern(to_key);
    let i = to as usize;
    if new_g + 1e-12 >= arena.g[i] {
        return;
    }
    // A cheaper path into a closed node can only happen under an
    // inconsistent heuristic (the paper's); reopen to stay optimal.
    if arena.closed[i] {
        arena.closed[i] = false;
        stats.reopened += 1;
    }
    arena.g[i] = new_g;
    arena.parent[i] = (from, action_t, action);
    let h = heur.eval(arena.keys[i].t, &arena.keys[i].state);
    queue.push(HeapEntry {
        d: new_g + h,
        g: new_g,
        id: to,
    });
}

fn reconstruct(inst: &Instance, arena: &Arena, dest: u32) -> Plan {
    let mut actions = vec![Counts::zero(inst.n()); inst.horizon() + 1];
    let mut cur = dest;
    loop {
        let (prev, t, q) = &arena.parent[cur as usize];
        if *prev == NO_PARENT {
            break;
        }
        actions[*t as usize] = q.clone();
        cur = *prev;
    }
    Plan { actions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_core::{naive_plan, Arrivals, CostModel};

    fn two_table(horizon: usize, budget: f64) -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), horizon),
            budget,
        )
    }

    #[test]
    fn astar_plan_is_valid_and_lgm() {
        let inst = two_table(11, 8.0);
        let sol = optimal_lgm_plan(&inst);
        let stats = sol.plan.validate(&inst).expect("valid");
        assert!(sol.plan.is_lgm(&inst));
        assert!((stats.total_cost - sol.cost).abs() < 1e-9);
    }

    #[test]
    fn astar_beats_or_matches_naive() {
        for horizon in [5, 11, 23, 47] {
            let inst = two_table(horizon, 8.0);
            let sol = optimal_lgm_plan(&inst);
            let naive = naive_plan(&inst);
            let naive_cost = naive.validate(&inst).unwrap().total_cost;
            assert!(
                sol.cost <= naive_cost + 1e-9,
                "T={horizon}: A* {} must not exceed NAIVE {naive_cost}",
                sol.cost
            );
        }
    }

    #[test]
    fn astar_finds_asymmetric_optimum() {
        // From the plan.rs example: T=11, budget 8, f_0 = k, f_1 = k + 4.
        // The asymmetric plan costs 36 while NAIVE costs 40. The optimum
        // batches table 0 too (its budget-limited batch is 8): flushing
        // table 0 only when forced gives cost a·24 + b-terms = 24 + 3·4
        // at best... A* must find something ≤ 36.
        let inst = two_table(11, 8.0);
        let sol = optimal_lgm_plan(&inst);
        assert!(
            sol.cost <= 36.0 + 1e-9,
            "A* cost {} should be ≤ 36",
            sol.cost
        );
        let naive_cost = naive_plan(&inst).validate(&inst).unwrap().total_cost;
        assert!(sol.cost < naive_cost, "asymmetry must strictly win here");
    }

    #[test]
    fn all_heuristic_modes_agree_on_cost() {
        for horizon in [7, 15, 29] {
            let inst = two_table(horizon, 8.0);
            let a = optimal_lgm_plan(&inst);
            let s = optimal_lgm_plan_with(&inst, HeuristicMode::Subadditive);
            let d = optimal_lgm_plan_dijkstra(&inst);
            assert!(
                (a.cost - d.cost).abs() < 1e-9,
                "paper heuristic changed the optimum (T={horizon})"
            );
            assert!(
                (s.cost - d.cost).abs() < 1e-9,
                "subadditive heuristic changed the optimum (T={horizon})"
            );
        }
    }

    #[test]
    fn subadditive_heuristic_never_reopens() {
        // Consistent heuristics close each node once.
        for horizon in [15, 29, 61] {
            let inst = two_table(horizon, 8.0);
            let s = optimal_lgm_plan_with(&inst, HeuristicMode::Subadditive);
            assert_eq!(s.stats.reopened, 0, "T={horizon}");
            let d = optimal_lgm_plan_dijkstra(&inst);
            assert_eq!(d.stats.reopened, 0, "T={horizon}");
        }
    }

    #[test]
    fn single_table_optimum_is_forced_cadence() {
        // One table, f(k) = k + 2, budget 10 ⇒ max pending 8. One arrival
        // per step, T = 20 (21 arrivals). Forced flush whenever pending
        // hits 9, i.e. after every 9 arrivals: flushes of 9, 9, 3.
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 2.0)],
            Arrivals::uniform(Counts::from_slice(&[1]), 20),
            10.0,
        );
        let sol = optimal_lgm_plan(&inst);
        sol.plan.validate(&inst).expect("valid");
        // Cost = a·21 + b·(#actions) = 21 + 2·3 = 27.
        assert!((sol.cost - 27.0).abs() < 1e-9, "got {}", sol.cost);
    }

    #[test]
    fn paper_heuristic_is_admissible_at_source_for_linear_costs() {
        // h(source) must lower-bound the true optimum.
        let inst = two_table(11, 8.0);
        let heur = Heuristic::new(&inst, HeuristicMode::Paper);
        let h0 = heur.eval(-1, &Counts::zero(2));
        let sol = optimal_lgm_plan(&inst);
        assert!(h0 <= sol.cost + 1e-9, "h(source)={h0} > OPT={}", sol.cost);
    }

    #[test]
    fn subadditive_heuristic_is_consistent_along_solution_path() {
        // Along any edge (x → x') with action q: h(x) ≤ f(q) + h(x').
        // (The *paper* heuristic fails this check — see module docs —
        // which is why the search supports reopening.)
        let inst = two_table(23, 8.0);
        let sol = optimal_lgm_plan(&inst);
        let heur = Heuristic::new(&inst, HeuristicMode::Subadditive);
        let states = sol.plan.pre_action_states(&inst);
        let mut prev_key: (i64, Counts) = (-1, Counts::zero(2));
        for (t, q) in sol.plan.actions.iter().enumerate() {
            if q.is_zero() {
                continue;
            }
            let post = states[t].checked_sub(q).unwrap();
            let h_prev = heur.eval(prev_key.0, &prev_key.1);
            let h_next = heur.eval(t as i64, &post);
            let w = inst.refresh_cost(q);
            assert!(
                h_prev <= w + h_next + 1e-9,
                "consistency violated at t={t}: {h_prev} > {w} + {h_next}"
            );
            prev_key = (t as i64, post);
        }
    }

    #[test]
    fn bursty_arrivals_handled() {
        // Quiet stretches then bursts; checks the expansion's
        // accumulate-to-full logic with non-uniform arrivals.
        let mut steps = Vec::new();
        for t in 0..30 {
            steps.push(if t % 7 == 0 {
                Counts::from_slice(&[5, 2])
            } else {
                Counts::from_slice(&[0, 0])
            });
        }
        let inst = Instance::new(
            vec![CostModel::linear(0.5, 1.0), CostModel::linear(2.0, 3.0)],
            Arrivals::new(steps),
            9.0,
        );
        let sol = optimal_lgm_plan(&inst);
        sol.plan.validate(&inst).expect("valid");
        assert!(sol.plan.is_lgm(&inst));
    }
}
