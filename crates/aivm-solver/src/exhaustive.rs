//! Exhaustive ground-truth optimum for small instances.
//!
//! Searches the space of *lazy* plans with **arbitrary** (not necessarily
//! greedy or minimal) actions. By Lemma 1 the best lazy plan is globally
//! optimal, so this Dijkstra yields the true `OPT` — the reference the
//! test suite and the `repro bounds` harness compare `OPT^LGM` against
//! (Theorems 1 and 2).
//!
//! The state space is exponential in the pending counts, so this solver
//! enforces an explicit node budget and returns an error when exceeded.
//! It is a verification oracle, not a production planner.

use aivm_core::{fits, Counts, Instance, Plan};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

/// The search exceeded its node budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchBudgetExceeded {
    /// The configured maximum number of expanded nodes.
    pub limit: usize,
}

impl fmt::Display for SearchBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exhaustive search exceeded its node budget of {}",
            self.limit
        )
    }
}

impl std::error::Error for SearchBudgetExceeded {}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    t: i64,
    state: Counts,
}

struct HeapEntry {
    g: f64,
    key: Key,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.g == other.g
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.g.total_cmp(&self.g)
    }
}

/// Enumerates every valid action at full pre-action state `s`: all
/// vectors `p` with `0 ≤ p[i] ≤ s[i]` and `f(s − p) ≤ C`. The zero action
/// is excluded (the state is full, an action is forced).
fn all_valid_actions(inst: &Instance, s: &Counts) -> Vec<Counts> {
    let n = s.len();
    let mut out = Vec::new();
    let mut current = Counts::zero(n);
    // Depth-first product enumeration of per-component flush amounts.
    fn rec(inst: &Instance, s: &Counts, i: usize, current: &mut Counts, out: &mut Vec<Counts>) {
        if i == s.len() {
            if current.is_zero() {
                return;
            }
            let post = s.checked_sub(current).expect("p ≤ s by construction");
            if fits(inst.refresh_cost(&post), inst.budget) {
                out.push(current.clone());
            }
            return;
        }
        for k in 0..=s[i] {
            current[i] = k;
            rec(inst, s, i + 1, current, out);
        }
        current[i] = 0;
    }
    rec(inst, s, 0, &mut current, &mut out);
    out
}

/// Computes the globally optimal plan cost by Dijkstra over the lazy-plan
/// graph with arbitrary actions. `max_nodes` bounds expansions.
pub fn optimal_plan(
    inst: &Instance,
    max_nodes: usize,
) -> Result<(Plan, f64), SearchBudgetExceeded> {
    let horizon = inst.horizon() as i64;
    let n = inst.n();
    let source = Key {
        t: -1,
        state: Counts::zero(n),
    };
    let dest = Key {
        t: horizon,
        state: Counts::zero(n),
    };

    let mut g: HashMap<Key, f64> = HashMap::new();
    let mut parent: HashMap<Key, (Key, i64, Counts)> = HashMap::new();
    let mut closed: HashSet<Key> = HashSet::new();
    let mut queue = BinaryHeap::new();
    g.insert(source.clone(), 0.0);
    queue.push(HeapEntry {
        g: 0.0,
        key: source,
    });
    let mut expanded = 0usize;

    while let Some(entry) = queue.pop() {
        let key = entry.key;
        if closed.contains(&key) {
            continue;
        }
        closed.insert(key.clone());
        expanded += 1;
        if expanded > max_nodes {
            return Err(SearchBudgetExceeded { limit: max_nodes });
        }

        if key == dest {
            let mut actions = vec![Counts::zero(n); inst.horizon() + 1];
            let mut cur = dest.clone();
            while let Some((prev, t, q)) = parent.get(&cur) {
                actions[*t as usize] = q.clone();
                cur = prev.clone();
            }
            let plan = Plan { actions };
            debug_assert!(plan.validate(inst).is_ok());
            return Ok((plan, entry.g));
        }

        // Accumulate arrivals to the next forced instant.
        let mut cum = key.state.clone();
        let mut forced_at = None;
        for t in (key.t + 1)..=horizon {
            cum.add_assign(&inst.arrivals.at(t as usize));
            if t < horizon && inst.is_full(&cum) {
                forced_at = Some(t);
                break;
            }
        }

        let mut relax = |to: Key, action_t: i64, action: Counts, new_g: f64| {
            if closed.contains(&to) {
                return;
            }
            let best = g.get(&to).copied().unwrap_or(f64::INFINITY);
            if new_g + 1e-12 < best {
                g.insert(to.clone(), new_g);
                parent.insert(to.clone(), (key.clone(), action_t, action));
                queue.push(HeapEntry { g: new_g, key: to });
            }
        };

        match forced_at {
            None => {
                let w = inst.refresh_cost(&cum);
                relax(dest.clone(), horizon, cum.clone(), entry.g + w);
            }
            Some(t2) => {
                // The action space is the product of per-table pending
                // counts; bail out before enumerating an absurd one (the
                // node budget only counts expansions, not per-node work).
                let action_space: u128 = cum.iter().map(|k| k as u128 + 1).product();
                if action_space > 2_000_000 {
                    return Err(SearchBudgetExceeded { limit: max_nodes });
                }
                for p in all_valid_actions(inst, &cum) {
                    let post = cum.checked_sub(&p).expect("p ≤ cum");
                    let w = inst.refresh_cost(&p);
                    relax(Key { t: t2, state: post }, t2, p, entry.g + w);
                }
            }
        }
    }

    unreachable!("flushing everything whenever forced always reaches the destination");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::optimal_lgm_plan;
    use aivm_core::tightness::{tightness_analytic_costs, tightness_instance, tightness_lgm_plan};
    use aivm_core::{Arrivals, CostModel};

    #[test]
    fn all_valid_actions_enumerates_product() {
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 0.0)],
            Arrivals::uniform(Counts::zero(2), 0),
            2.0,
        );
        let s = Counts::from_slice(&[2, 1]);
        // f(s) = 3 > 2. Valid p: post sum ≤ 2, p ≠ 0. Posts: (0..=2, 0..=1)
        // with sum ≤ 2: (0,0),(0,1),(1,0),(1,1),(2,0) → 5 actions.
        let acts = all_valid_actions(&inst, &s);
        assert_eq!(acts.len(), 5);
    }

    #[test]
    fn optimum_matches_lgm_for_linear_costs() {
        // Theorem 2: for linear cost functions OPT^LGM = OPT.
        for (b0, b1, budget, horizon) in
            [(0.0, 4.0, 8.0, 9), (1.0, 3.0, 9.0, 12), (2.0, 2.0, 7.0, 8)]
        {
            let inst = Instance::new(
                vec![CostModel::linear(1.0, b0), CostModel::linear(1.0, b1)],
                Arrivals::uniform(Counts::from_slice(&[1, 1]), horizon),
                budget,
            );
            let lgm = optimal_lgm_plan(&inst);
            let (opt_plan, opt_cost) = optimal_plan(&inst, 500_000).expect("within budget");
            opt_plan.validate(&inst).expect("valid");
            assert!(
                (lgm.cost - opt_cost).abs() < 1e-9,
                "Theorem 2 violated (b0={b0}, b1={b1}): LGM {} vs OPT {opt_cost}",
                lgm.cost
            );
        }
    }

    #[test]
    fn lgm_within_factor_two_for_nonconcave_costs() {
        // Theorem 1 with a subadditive, non-concave step cost.
        let inst = Instance::new(
            vec![
                CostModel::Step {
                    block: 3,
                    cost_per_block: 2.0,
                },
                CostModel::linear(1.0, 1.0),
            ],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 7),
            6.0,
        );
        let lgm = optimal_lgm_plan(&inst);
        let (_, opt_cost) = optimal_plan(&inst, 500_000).expect("within budget");
        assert!(lgm.cost <= 2.0 * opt_cost + 1e-9);
        assert!(
            lgm.cost + 1e-9 >= opt_cost,
            "OPT can never beat LGM from above"
        );
    }

    #[test]
    fn tightness_instance_realizes_gap() {
        // ε = 0.5, m = 2: OPT^LGM = 2.5·m·C, OPT ≤ 1.5·m·C.
        let inst = tightness_instance(0.5, 2, 10.0);
        let lgm = optimal_lgm_plan(&inst);
        let analytic = tightness_analytic_costs(0.5, 2, 10.0);
        assert!(
            (lgm.cost - analytic.0).abs() < 1e-9,
            "LGM analytic mismatch"
        );
        // The forced LGM plan is the only LGM plan here.
        let forced = tightness_lgm_plan(&inst);
        assert!((forced.cost(&inst) - lgm.cost).abs() < 1e-9);
        let (_, opt_cost) = optimal_plan(&inst, 2_000_000).expect("within budget");
        assert!(
            opt_cost <= analytic.1 + 1e-9,
            "witness bounds OPT from above"
        );
        let ratio = lgm.cost / opt_cost;
        assert!(
            ratio >= 2.0 - 0.5 - 1e-9,
            "tightness ratio {ratio} below 2 − ε"
        );
        assert!(ratio <= 2.0 + 1e-9, "Theorem 1 upper bound");
    }

    #[test]
    fn oversized_action_space_is_rejected_not_hung() {
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 0.0)],
            Arrivals::uniform(Counts::from_slice(&[2000, 2000]), 3),
            10.0,
        );
        assert!(optimal_plan(&inst, 1_000_000).is_err());
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 1.0), CostModel::linear(1.0, 1.0)],
            Arrivals::uniform(Counts::from_slice(&[3, 3]), 20),
            10.0,
        );
        match optimal_plan(&inst, 5) {
            Err(SearchBudgetExceeded { limit: 5 }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
