//! The ONLINE heuristic algorithm (§4.3).
//!
//! ONLINE needs no advance knowledge of the arrival sequence or the
//! refresh time. Whenever the response-time constraint is violated at
//! time `t` (pre-action state `s_t` is full), it picks the greedy,
//! minimal, valid action `q_t` minimizing the *amortized cost to date*
//!
//! ```text
//! H(q_t) = (F_t + f(q_t)) / (t + TimeToFull(s_t − q_t))
//! ```
//!
//! where `F_t` is the maintenance cost already spent and `TimeToFull(s)`
//! predicts how many further steps of arrivals (at the recently observed
//! per-table rates) it takes to make state `s` full again.

use crate::actions::{minimal_greedy_actions_into, valid_greedy_actions_ctx};
use crate::policy::{Policy, PolicyContext};
use aivm_core::{fits, Counts};

/// Which candidate actions ONLINE scores with `H`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateSet {
    /// Only minimal valid greedy actions (the paper's definition).
    Minimal,
    /// All valid greedy actions (an ablation; strictly larger set).
    AllGreedy,
}

/// How ONLINE estimates per-table arrival rates for `TimeToFull`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateEstimator {
    /// Exponentially weighted moving average with the given smoothing
    /// factor `α ∈ (0, 1]` (weight of the newest observation).
    Ewma {
        /// Smoothing factor.
        alpha: f64,
    },
    /// Arithmetic mean of the last `window` steps.
    Window {
        /// Number of recent steps averaged.
        window: usize,
    },
}

/// Configuration for [`OnlinePolicy`].
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Candidate actions scored by `H`.
    pub candidates: CandidateSet,
    /// Arrival-rate estimator feeding `TimeToFull`.
    pub estimator: RateEstimator,
    /// Cap on the lookahead of `TimeToFull` (steps). Prevents unbounded
    /// simulation when predicted rates are (near) zero.
    pub time_to_full_cap: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            candidates: CandidateSet::Minimal,
            estimator: RateEstimator::Ewma { alpha: 0.2 },
            time_to_full_cap: 100_000,
        }
    }
}

/// The ONLINE policy of §4.3.
#[derive(Clone, Debug)]
pub struct OnlinePolicy {
    config: OnlineConfig,
    ctx: Option<PolicyContext>,
    /// Running total maintenance cost `F_t`.
    spent: f64,
    /// EWMA rates, or ring buffer of recent arrivals for Window mode.
    rates: Vec<f64>,
    history: Vec<Counts>,
    /// Pre-action state at the previous step, to recover this step's
    /// arrivals (`d_t = s_t − post_{t−1}`).
    prev_post: Counts,
    steps_seen: usize,
    /// Scratch buffer for candidate enumeration, reused across steps.
    candidates_buf: Vec<Counts>,
}

impl OnlinePolicy {
    /// Creates an ONLINE policy with the default configuration.
    pub fn new() -> Self {
        Self::with_config(OnlineConfig::default())
    }

    /// Creates an ONLINE policy with an explicit configuration.
    pub fn with_config(config: OnlineConfig) -> Self {
        OnlinePolicy {
            config,
            ctx: None,
            spent: 0.0,
            rates: Vec::new(),
            history: Vec::new(),
            prev_post: Counts::zero(0),
            steps_seen: 0,
            candidates_buf: Vec::new(),
        }
    }

    /// Total maintenance cost charged so far (`F_t`).
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Current per-table arrival-rate estimates.
    pub fn estimated_rates(&self) -> Vec<f64> {
        match self.config.estimator {
            RateEstimator::Ewma { .. } => self.rates.clone(),
            RateEstimator::Window { window } => {
                let n = self.prev_post.len();
                let take = self.history.len().min(window);
                if take == 0 {
                    return vec![0.0; n];
                }
                let mut sums = vec![0.0; n];
                for d in self.history.iter().rev().take(take) {
                    for i in 0..n {
                        sums[i] += d[i] as f64;
                    }
                }
                sums.iter().map(|s| s / take as f64).collect()
            }
        }
    }

    fn observe_arrivals(&mut self, d: &Counts) {
        match self.config.estimator {
            RateEstimator::Ewma { alpha } => {
                for i in 0..d.len() {
                    if self.steps_seen == 0 {
                        self.rates[i] = d[i] as f64;
                    } else {
                        self.rates[i] = alpha * d[i] as f64 + (1.0 - alpha) * self.rates[i];
                    }
                }
            }
            RateEstimator::Window { window } => {
                self.history.push(d.clone());
                if self.history.len() > window {
                    let excess = self.history.len() - window;
                    self.history.drain(..excess);
                }
            }
        }
        self.steps_seen += 1;
    }

    /// `TimeToFull(s)`: predicted number of steps of arrivals at the
    /// estimated rates needed to make `s` full. Returns the cap when the
    /// predicted rates cannot fill the budget (e.g. all-zero rates).
    pub fn time_to_full(&self, s: &Counts) -> usize {
        let ctx = self.ctx.as_ref().expect("reset before use");
        self.time_to_full_with(ctx, &self.estimated_rates(), s)
    }

    /// [`OnlinePolicy::time_to_full`] with the rate vector precomputed,
    /// so one `act` scores all its candidates against a single estimate.
    fn time_to_full_with(&self, ctx: &PolicyContext, rates: &[f64], s: &Counts) -> usize {
        if rates.iter().all(|&r| r <= 0.0) {
            return self.config.time_to_full_cap;
        }
        let mut pending: Vec<f64> = s.iter().map(|k| k as f64).collect();
        let mut state = Counts::zero(s.len());
        for step in 1..=self.config.time_to_full_cap {
            for (i, p) in pending.iter_mut().enumerate() {
                *p += rates[i];
                state[i] = p.round().max(0.0) as u64;
            }
            if ctx.is_full(&state) {
                return step;
            }
        }
        self.config.time_to_full_cap
    }
}

impl Default for OnlinePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for OnlinePolicy {
    fn reset(&mut self, ctx: &PolicyContext) {
        let n = ctx.n();
        self.rates = vec![0.0; n];
        self.history.clear();
        self.prev_post = Counts::zero(n);
        self.spent = 0.0;
        self.steps_seen = 0;
        self.ctx = Some(ctx.clone());
    }

    fn act(&mut self, t: usize, pre_state: &Counts) -> Counts {
        // Recover this step's arrivals from the state delta.
        let d = pre_state
            .checked_sub(&self.prev_post)
            .unwrap_or_else(|| Counts::zero(pre_state.len()));
        self.observe_arrivals(&d);

        let ctx = self.ctx.as_ref().expect("reset before act");
        if !ctx.is_full(pre_state) {
            self.prev_post.copy_from(pre_state);
            return Counts::zero(pre_state.len());
        }

        // Constraint violated: score candidate actions by H. The buffer
        // is reused across steps; candidate vectors are small (≤ 2^n).
        let mut candidates = std::mem::take(&mut self.candidates_buf);
        match self.config.candidates {
            CandidateSet::Minimal => {
                minimal_greedy_actions_into(&ctx.costs, ctx.budget, pre_state, &mut candidates);
            }
            CandidateSet::AllGreedy => {
                candidates.clear();
                candidates.extend(
                    valid_greedy_actions_ctx(&ctx.costs, ctx.budget, pre_state)
                        .into_iter()
                        .filter(|q| {
                            // Must resolve the violation (empty action
                            // stays full).
                            let post = pre_state.checked_sub(q).expect("greedy ≤ pending");
                            fits(ctx.refresh_cost(&post), ctx.budget)
                        }),
                );
            }
        }
        debug_assert!(!candidates.is_empty(), "full state always admits a flush");

        let rates = self.estimated_rates();
        let mut post = Counts::zero(pre_state.len());
        let mut best: Option<(f64, usize)> = None;
        for (idx, q) in candidates.iter().enumerate() {
            post.copy_from(pre_state);
            assert!(post.checked_sub_assign(q), "greedy ≤ pending");
            let fq = ctx.refresh_cost(q);
            let ttf = self.time_to_full_with(ctx, &rates, &post);
            let h = (self.spent + fq) / (t as f64 + ttf as f64).max(1.0);
            match &best {
                Some((best_h, _)) if *best_h <= h => {}
                _ => best = Some((h, idx)),
            }
        }
        let (_, idx) = best.expect("at least one candidate");
        let q = candidates[idx].clone();
        self.candidates_buf = candidates;
        self.spent += self.ctx.as_ref().expect("reset").refresh_cost(&q);
        self.prev_post.copy_from(pre_state);
        assert!(self.prev_post.checked_sub_assign(&q), "greedy ≤ pending");
        q
    }

    fn name(&self) -> &str {
        "ONLINE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::optimal_lgm_plan;
    use crate::policy::{run_policy, NaivePolicy};
    use aivm_core::{Arrivals, CostModel, Instance};

    fn paper_like_instance(horizon: usize) -> Instance {
        // Table 0: cheap per-mod, no setup (indexed side). Table 1:
        // expensive setup (scan side). Mirrors the paper's Fig. 1 shapes.
        Instance::new(
            vec![CostModel::linear(0.05, 0.2), CostModel::linear(0.02, 3.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), horizon),
            6.0,
        )
    }

    #[test]
    fn online_is_valid_and_beats_naive_on_asymmetric_instance() {
        let inst = paper_like_instance(400);
        let mut online = OnlinePolicy::new();
        let (_, online_stats) = run_policy(&inst, &mut online).expect("online valid");
        let mut naive = NaivePolicy::new();
        let (_, naive_stats) = run_policy(&inst, &mut naive).expect("naive valid");
        assert!(
            online_stats.total_cost < naive_stats.total_cost,
            "ONLINE {} should beat NAIVE {}",
            online_stats.total_cost,
            naive_stats.total_cost
        );
    }

    #[test]
    fn online_close_to_optimal_on_uniform_stream() {
        let inst = paper_like_instance(200);
        let mut online = OnlinePolicy::new();
        let (_, stats) = run_policy(&inst, &mut online).expect("valid");
        let opt = optimal_lgm_plan(&inst);
        assert!(stats.total_cost + 1e-9 >= opt.cost, "OPT is a lower bound");
        assert!(
            stats.total_cost <= 1.6 * opt.cost,
            "ONLINE {} too far from OPT {} on a stable stream",
            stats.total_cost,
            opt.cost
        );
    }

    #[test]
    fn time_to_full_tracks_rates() {
        let ctx = PolicyContext {
            costs: vec![CostModel::linear(1.0, 0.0)],
            budget: 10.0,
        };
        let mut p = OnlinePolicy::new();
        p.reset(&ctx);
        // Feed arrivals of 2/step so the EWMA converges toward 2,
        // simulating the runner's pending-state bookkeeping.
        let mut pending = Counts::from_slice(&[0]);
        for t in 0..50 {
            pending[0] += 2;
            let q = p.act(t, &pending);
            pending = pending.checked_sub(&q).unwrap();
        }
        let rates = p.estimated_rates();
        assert!(rates[0] > 0.5, "rate should be positive, got {rates:?}");
        let ttf_empty = p.time_to_full(&Counts::from_slice(&[0]));
        let ttf_near_full = p.time_to_full(&Counts::from_slice(&[9]));
        assert!(ttf_near_full < ttf_empty);
        assert!(ttf_near_full >= 1);
    }

    #[test]
    fn time_to_full_caps_on_zero_rates() {
        let ctx = PolicyContext {
            costs: vec![CostModel::linear(1.0, 0.0)],
            budget: 10.0,
        };
        let mut p = OnlinePolicy::with_config(OnlineConfig {
            time_to_full_cap: 500,
            ..OnlineConfig::default()
        });
        p.reset(&ctx);
        assert_eq!(p.time_to_full(&Counts::from_slice(&[0])), 500);
    }

    #[test]
    fn window_estimator_averages_recent_steps() {
        let ctx = PolicyContext {
            costs: vec![CostModel::linear(1.0, 0.0)],
            budget: 1000.0,
        };
        let mut p = OnlinePolicy::with_config(OnlineConfig {
            estimator: RateEstimator::Window { window: 4 },
            ..OnlineConfig::default()
        });
        p.reset(&ctx);
        // Arrivals 1,2,3,4,5 with window 4 → mean of {2,3,4,5}... the
        // policy sees cumulative pre-states; feed them accordingly.
        let mut cum = 0u64;
        for d in [1u64, 2, 3, 4, 5] {
            cum += d;
            let _ = p.act(0, &Counts::from_slice(&[cum]));
        }
        let rates = p.estimated_rates();
        assert!((rates[0] - 3.5).abs() < 1e-9, "got {rates:?}");
    }

    #[test]
    fn all_greedy_candidates_never_worse_than_forced_naive() {
        let inst = paper_like_instance(150);
        let mut minimal = OnlinePolicy::new();
        let (_, min_stats) = run_policy(&inst, &mut minimal).expect("valid");
        let mut allg = OnlinePolicy::with_config(OnlineConfig {
            candidates: CandidateSet::AllGreedy,
            ..OnlineConfig::default()
        });
        let (_, all_stats) = run_policy(&inst, &mut allg).expect("valid");
        // Both must respect the budget; their costs may differ but stay
        // in the same ballpark.
        assert!(all_stats.total_cost > 0.0 && min_stats.total_cost > 0.0);
    }
}
