//! Enumeration of greedy / minimal / valid actions at a full state.
//!
//! A *greedy* action empties a subset of the delta tables; a greedy
//! action is *valid* at pre-action state `s` when the un-flushed
//! remainder fits the budget, and *minimal* when no flushed table can be
//! dropped while staying valid (Definition 3). Both the A\* expansion
//! (§4.1) and the ONLINE heuristic (§4.3) enumerate these subsets; the
//! paper notes `n` is small in practice (≤ 5 for its TPC-R views), so an
//! exact `2^n` sweep is the intended implementation.

use aivm_core::{fits, CostFn, CostModel, Counts, Instance};

/// Hard cap on the number of base tables for exact subset enumeration.
/// `2^20` subsets is already ~1M; beyond that the exact sweep is a bug,
/// not a workload.
pub const MAX_TABLES_FOR_ENUM: usize = 20;

/// The cost of the state left by flushing `mask` from `s`, computed
/// without materializing the post-action vector.
fn post_mask_cost(costs: &[CostModel], s: &Counts, mask: u32) -> f64 {
    let mut total = 0.0;
    for (i, c) in s.iter().enumerate() {
        if mask & (1 << i) == 0 && c > 0 {
            total += costs[i].eval(c);
        }
    }
    total
}

/// Converts a flush mask into the corresponding greedy action vector.
fn mask_to_action(s: &Counts, mask: u32) -> Counts {
    let mut q = Counts::zero(s.len());
    for i in 0..s.len() {
        if mask & (1 << i) != 0 {
            q[i] = s[i];
        }
    }
    q
}

/// Enumerates every *valid greedy* action at pre-action state `s`
/// (including non-minimal ones). Only subsets of the non-empty tables are
/// considered; the empty action is included iff `s` itself fits the
/// budget.
pub fn valid_greedy_actions(inst: &Instance, s: &Counts) -> Vec<Counts> {
    valid_greedy_actions_ctx(&inst.costs, inst.budget, s)
}

/// [`valid_greedy_actions`] without an [`Instance`]: only cost functions
/// and the budget are needed, which is all an online policy knows.
pub fn valid_greedy_actions_ctx(costs: &[CostModel], budget: f64, s: &Counts) -> Vec<Counts> {
    assert!(
        s.len() <= MAX_TABLES_FOR_ENUM,
        "too many tables for exact enumeration"
    );
    let support = s.support();
    let mut out = Vec::new();
    // Iterate over subsets of the support only.
    let m = support.len();
    for bits in 0..(1u32 << m) {
        let mut mask = 0u32;
        for (j, &i) in support.iter().enumerate() {
            if bits & (1 << j) != 0 {
                mask |= 1 << i;
            }
        }
        if fits(post_mask_cost(costs, s, mask), budget) {
            out.push(mask_to_action(s, mask));
        }
    }
    out
}

/// Enumerates the *minimal valid greedy* actions at full pre-action state
/// `s` — the out-edges of a node in the LGM plan graph (§4.1).
///
/// A valid flush set `A` is minimal when for every `i ∈ A`, `A \ {i}` is
/// invalid. The full support set is always valid (flushing everything
/// leaves cost 0), so the result is never empty for a full state.
pub fn minimal_greedy_actions(inst: &Instance, s: &Counts) -> Vec<Counts> {
    minimal_greedy_actions_ctx(&inst.costs, inst.budget, s)
}

/// [`minimal_greedy_actions`] without an [`Instance`]; see
/// [`valid_greedy_actions_ctx`].
pub fn minimal_greedy_actions_ctx(costs: &[CostModel], budget: f64, s: &Counts) -> Vec<Counts> {
    let mut out = Vec::new();
    minimal_greedy_actions_into(costs, budget, s, &mut out);
    out
}

/// [`minimal_greedy_actions_ctx`] writing into a caller-owned buffer
/// (cleared first), so hot loops — the A\* expansion, the ONLINE policy
/// — reuse one allocation across calls.
pub fn minimal_greedy_actions_into(
    costs: &[CostModel],
    budget: f64,
    s: &Counts,
    out: &mut Vec<Counts>,
) {
    assert!(
        s.len() <= MAX_TABLES_FOR_ENUM,
        "too many tables for exact enumeration"
    );
    out.clear();
    // Gather the support without allocating (n ≤ MAX_TABLES_FOR_ENUM).
    let mut support = [0usize; MAX_TABLES_FOR_ENUM];
    let mut m = 0usize;
    for (i, c) in s.iter().enumerate() {
        if c > 0 {
            support[m] = i;
            m += 1;
        }
    }
    let support = &support[..m];
    for bits in 0..(1u32 << m) {
        // Build the table mask for this subset of the support.
        let mut mask = 0u32;
        for (j, &i) in support.iter().enumerate() {
            if bits & (1 << j) != 0 {
                mask |= 1 << i;
            }
        }
        if !fits(post_mask_cost(costs, s, mask), budget) {
            continue; // not valid
        }
        // Minimality: dropping any single flushed table must be invalid.
        let mut minimal = true;
        for (j, &i) in support.iter().enumerate() {
            if bits & (1 << j) == 0 {
                continue;
            }
            if fits(post_mask_cost(costs, s, mask & !(1u32 << i)), budget) {
                minimal = false;
                break;
            }
        }
        if minimal {
            out.push(mask_to_action(s, mask));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivm_core::{Arrivals, CostModel};

    fn inst(costs: Vec<CostModel>, budget: f64) -> Instance {
        let n = costs.len();
        Instance::new(costs, Arrivals::uniform(Counts::zero(n), 0), budget)
    }

    #[test]
    fn full_flush_always_among_valid_actions() {
        let inst = inst(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 0.0)],
            1.0,
        );
        let s = Counts::from_slice(&[10, 10]);
        let valid = valid_greedy_actions(&inst, &s);
        assert!(valid.contains(&s), "flush-everything is always valid");
        // Here nothing smaller fits (leaving either table costs 10 > 1).
        assert_eq!(valid.len(), 1);
        let minimal = minimal_greedy_actions(&inst, &s);
        assert_eq!(minimal, vec![s]);
    }

    #[test]
    fn minimal_excludes_supersets() {
        // f_0 = f_1 = identity, budget 5. State ⟨3,4⟩ costs 7: flushing
        // either table alone is valid (4 ≤ 5, 3 ≤ 5), so {0} and {1} are
        // minimal and {0,1} is not.
        let inst = inst(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 0.0)],
            5.0,
        );
        let s = Counts::from_slice(&[3, 4]);
        let minimal = minimal_greedy_actions(&inst, &s);
        assert_eq!(minimal.len(), 2);
        assert!(minimal.contains(&Counts::from_slice(&[3, 0])));
        assert!(minimal.contains(&Counts::from_slice(&[0, 4])));
        let valid = valid_greedy_actions(&inst, &s);
        assert_eq!(valid.len(), 3, "{{0}}, {{1}}, {{0,1}} are valid");
    }

    #[test]
    fn empty_action_valid_only_when_not_full() {
        let inst = inst(vec![CostModel::linear(1.0, 0.0)], 5.0);
        let below = Counts::from_slice(&[4]);
        assert!(valid_greedy_actions(&inst, &below).contains(&Counts::zero(1)));
        let above = Counts::from_slice(&[9]);
        assert!(!valid_greedy_actions(&inst, &above).contains(&Counts::zero(1)));
    }

    #[test]
    fn zero_components_never_flushed() {
        let inst = inst(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 0.0)],
            5.0,
        );
        let s = Counts::from_slice(&[0, 9]);
        let minimal = minimal_greedy_actions(&inst, &s);
        assert_eq!(minimal, vec![Counts::from_slice(&[0, 9])]);
    }

    #[test]
    fn three_table_minimal_combinations() {
        // Budget 10, state ⟨6,6,6⟩ (cost 18): must flush at least one
        // table; flushing any single leaves 12 > 10; flushing any pair
        // leaves 6 ≤ 10 → the three pairs are exactly the minimal set.
        let inst = inst(
            vec![
                CostModel::linear(1.0, 0.0),
                CostModel::linear(1.0, 0.0),
                CostModel::linear(1.0, 0.0),
            ],
            10.0,
        );
        let s = Counts::from_slice(&[6, 6, 6]);
        let minimal = minimal_greedy_actions(&inst, &s);
        assert_eq!(minimal.len(), 3);
        for q in &minimal {
            assert_eq!(q.support().len(), 2);
        }
    }
}
