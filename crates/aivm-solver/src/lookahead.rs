//! Rolling-horizon lookahead policy (extension).
//!
//! Between the paper's two extremes — A\* with perfect future knowledge
//! (§4.1) and the myopic ONLINE heuristic (§4.3) — sits receding-horizon
//! control: when an action is forced, *predict* the next `window` steps
//! of arrivals from recent rates, solve that small instance optimally
//! with A\*, execute only the first action, and repeat. No future
//! knowledge is required; the predictor is the same EWMA ONLINE uses.

use crate::astar::{optimal_lgm_plan_with, HeuristicMode};
use crate::policy::{Policy, PolicyContext};
use aivm_core::{Arrivals, Counts, Instance};

/// Configuration for [`LookaheadPolicy`].
#[derive(Clone, Debug)]
pub struct LookaheadConfig {
    /// Number of future steps planned over.
    pub window: usize,
    /// EWMA smoothing factor for the arrival-rate predictor.
    pub alpha: f64,
    /// Heuristic driving the inner A\* (Subadditive is safe for any
    /// cost model).
    pub heuristic: HeuristicMode,
}

impl Default for LookaheadConfig {
    fn default() -> Self {
        LookaheadConfig {
            window: 64,
            alpha: 0.2,
            heuristic: HeuristicMode::Subadditive,
        }
    }
}

/// The rolling-horizon policy.
#[derive(Clone, Debug)]
pub struct LookaheadPolicy {
    config: LookaheadConfig,
    ctx: Option<PolicyContext>,
    rates: Vec<f64>,
    prev_post: Counts,
    steps_seen: usize,
}

impl LookaheadPolicy {
    /// Creates a lookahead policy with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LookaheadConfig::default())
    }

    /// Creates a lookahead policy with an explicit configuration.
    pub fn with_config(config: LookaheadConfig) -> Self {
        LookaheadPolicy {
            config,
            ctx: None,
            rates: Vec::new(),
            prev_post: Counts::zero(0),
            steps_seen: 0,
        }
    }

    /// Builds the predicted window instance: the current pending state
    /// arrives at `t = 0`, then `window` steps at the predicted rates.
    fn window_instance(&self, ctx: &PolicyContext, pre_state: &Counts) -> Instance {
        let n = ctx.n();
        let mut steps = Vec::with_capacity(self.config.window + 1);
        steps.push(pre_state.clone());
        let predicted: Counts = self
            .rates
            .iter()
            .map(|&r| r.round().max(0.0) as u64)
            .collect();
        for _ in 0..self.config.window {
            steps.push(predicted.clone());
        }
        let _ = n;
        Instance::new(ctx.costs.clone(), Arrivals::new(steps), ctx.budget)
    }
}

impl Default for LookaheadPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for LookaheadPolicy {
    fn reset(&mut self, ctx: &PolicyContext) {
        self.rates = vec![0.0; ctx.n()];
        self.prev_post = Counts::zero(ctx.n());
        self.steps_seen = 0;
        self.ctx = Some(ctx.clone());
    }

    fn act(&mut self, _t: usize, pre_state: &Counts) -> Counts {
        let ctx = self.ctx.as_ref().expect("reset before act").clone();
        // Update the rate predictor from the observed arrivals.
        if let Some(d) = pre_state.checked_sub(&self.prev_post) {
            for i in 0..d.len() {
                if self.steps_seen == 0 {
                    self.rates[i] = d[i] as f64;
                } else {
                    self.rates[i] =
                        self.config.alpha * d[i] as f64 + (1.0 - self.config.alpha) * self.rates[i];
                }
            }
        }
        self.steps_seen += 1;

        if !ctx.is_full(pre_state) {
            self.prev_post = pre_state.clone();
            return Counts::zero(pre_state.len());
        }

        // Forced: plan the predicted window optimally, execute only the
        // first action.
        let window = self.window_instance(&ctx, pre_state);
        let sol = optimal_lgm_plan_with(&window, self.config.heuristic);
        let q = sol.plan.actions[0].clone();
        debug_assert!(
            !q.is_zero(),
            "window instance is full at t=0, the plan must act there"
        );
        self.prev_post = pre_state
            .checked_sub(&q)
            .expect("planned action flushes at most the pending count");
        q
    }

    fn name(&self) -> &str {
        "LOOKAHEAD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::optimal_lgm_plan;
    use crate::policy::{run_policy, NaivePolicy};
    use aivm_core::CostModel;

    fn asym_instance(horizon: usize) -> Instance {
        Instance::new(
            vec![
                CostModel::linear(0.06, 0.24),
                CostModel::linear(0.0048, 7.2),
            ],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), horizon),
            12.0,
        )
    }

    #[test]
    fn lookahead_is_valid_and_beats_naive() {
        let inst = asym_instance(400);
        let (_, la) = run_policy(&inst, &mut LookaheadPolicy::new()).expect("valid");
        let (_, nv) = run_policy(&inst, &mut NaivePolicy::new()).expect("valid");
        assert!(
            la.total_cost < nv.total_cost,
            "LOOKAHEAD {} vs NAIVE {}",
            la.total_cost,
            nv.total_cost
        );
    }

    #[test]
    fn lookahead_tracks_optimum_on_uniform_streams() {
        let inst = asym_instance(300);
        let (_, la) = run_policy(&inst, &mut LookaheadPolicy::new()).expect("valid");
        let opt = optimal_lgm_plan(&inst).cost;
        assert!(la.total_cost + 1e-9 >= opt);
        assert!(
            la.total_cost <= 1.25 * opt,
            "LOOKAHEAD {} too far from OPT {opt}",
            la.total_cost
        );
    }

    #[test]
    fn small_windows_still_respect_budget() {
        let inst = asym_instance(200);
        let mut policy = LookaheadPolicy::with_config(LookaheadConfig {
            window: 4,
            ..LookaheadConfig::default()
        });
        let (_, summary) = run_policy(&inst, &mut policy).expect("valid even with W=4");
        assert!(summary.total_cost > 0.0);
    }
}
