//! ADAPT (§4.2): executing a plan optimized for an estimated refresh
//! time `T_0` when the actual refresh happens at some other time `T`.
//!
//! * `T = T_0`: the precomputed optimal LGM plan runs as-is.
//! * `T < T_0`: execution stops at `T` and all remaining modifications
//!   are processed then.
//! * `T > T_0`: the plan is executed repeatedly (assuming arrivals are
//!   periodic with period `T_0 + 1` steps) until `T`, where everything
//!   remaining is processed.
//!
//! For linear cost functions Theorem 4 bounds the adapted plan's cost by
//! `OPT_T + Σ b_i` when `T < T_0` and `OPT_T + ⌈T/T_0⌉·Σ b_i` when
//! `T > T_0`; [`theorem4_bound`] computes that bound so experiments can
//! check it.

use crate::astar::optimal_lgm_plan;
use crate::policy::{Policy, PolicyContext};
use aivm_core::{CostModel, Counts, Instance, Plan};

/// A precomputed schedule adapted to arbitrary refresh times.
#[derive(Clone, Debug)]
pub struct AdaptSchedule {
    /// The horizon `T_0` the base plan was optimized for.
    pub t0: usize,
    /// Flush subsets per step `t ∈ [0, T_0]` of the base plan.
    pub subsets: Vec<Vec<usize>>,
    /// Cost of the base plan on its own instance (diagnostics).
    pub base_cost: f64,
}

impl AdaptSchedule {
    /// Computes the optimal LGM plan for the estimation instance
    /// (horizon `T_0`) and wraps it as an adaptable schedule.
    pub fn precompute(estimation_instance: &Instance) -> Self {
        let sol = optimal_lgm_plan(estimation_instance);
        AdaptSchedule {
            t0: estimation_instance.horizon(),
            subsets: sol.plan.actions.iter().map(|p| p.support()).collect(),
            base_cost: sol.cost,
        }
    }

    /// Builds the schedule from an explicit plan (e.g. for tests).
    pub fn from_plan(t0: usize, plan: &Plan, base_cost: f64) -> Self {
        AdaptSchedule {
            t0,
            subsets: plan.actions.iter().map(|p| p.support()).collect(),
            base_cost,
        }
    }

    /// The flush subset scheduled at absolute time `t`, repeating with
    /// period `T_0 + 1` beyond the base horizon.
    pub fn subset_at(&self, t: usize) -> &[usize] {
        &self.subsets[t % (self.t0 + 1)]
    }
}

/// The ADAPT policy: replays the precomputed flush subsets (cyclically
/// when `T > T_0`); the policy runner's forced final flush implements the
/// process-everything-at-`T` step for both `T < T_0` and `T > T_0`.
///
/// When the actual arrivals deviate from the predicted ones, the
/// scheduled subsets may no longer keep the budget; with `safe = true`
/// the policy falls back to flushing everything whenever a scheduled
/// action leaves the state full (a best-effort guard the paper does not
/// need because it assumes periodic arrivals).
#[derive(Clone, Debug)]
pub struct AdaptPolicy {
    schedule: AdaptSchedule,
    safe: bool,
    ctx: Option<PolicyContext>,
}

impl AdaptPolicy {
    /// Creates a strict ADAPT policy (paper semantics; assumes the real
    /// arrivals match the predicted periodic sequence).
    pub fn new(schedule: AdaptSchedule) -> Self {
        AdaptPolicy {
            schedule,
            safe: false,
            ctx: None,
        }
    }

    /// Creates an ADAPT policy with the full-flush fallback enabled.
    pub fn with_fallback(schedule: AdaptSchedule) -> Self {
        AdaptPolicy {
            schedule,
            safe: true,
            ctx: None,
        }
    }
}

impl Policy for AdaptPolicy {
    fn reset(&mut self, ctx: &PolicyContext) {
        self.ctx = Some(ctx.clone());
    }

    fn act(&mut self, t: usize, pre_state: &Counts) -> Counts {
        let mut p = Counts::zero(pre_state.len());
        for &i in self.schedule.subset_at(t) {
            p[i] = pre_state[i];
        }
        if self.safe {
            let ctx = self.ctx.as_ref().expect("reset before act");
            let post = pre_state.checked_sub(&p).expect("greedy ≤ pending");
            if ctx.is_full(&post) {
                return pre_state.clone();
            }
        }
        p
    }

    fn name(&self) -> &str {
        "ADAPT"
    }
}

/// Builds the adapted *plan* for an actual instance (horizon `T`) from a
/// schedule precomputed for `T_0`, using strict paper semantics. The
/// returned plan replays the scheduled subsets through `T − 1` and
/// flushes everything at `T`.
pub fn adapt_plan(schedule: &AdaptSchedule, actual: &Instance) -> Plan {
    let policy = ReplayPolicyCyclic {
        schedule: schedule.clone(),
    };
    // Reuse the runner logic manually to avoid the validity requirement:
    // callers validate explicitly.
    let horizon = actual.horizon();
    let mut actions = Vec::with_capacity(horizon + 1);
    let mut s = Counts::zero(actual.n());
    for t in 0..=horizon {
        s.add_assign(&actual.arrivals.at(t));
        let p = if t == horizon {
            s.clone()
        } else {
            policy.flush_at(t, &s)
        };
        s = s.checked_sub(&p).expect("greedy flush ≤ pending");
        actions.push(p);
    }
    Plan { actions }
}

struct ReplayPolicyCyclic {
    schedule: AdaptSchedule,
}

impl ReplayPolicyCyclic {
    fn flush_at(&self, t: usize, pre: &Counts) -> Counts {
        let mut p = Counts::zero(pre.len());
        for &i in self.schedule.subset_at(t) {
            p[i] = pre[i];
        }
        p
    }
}

/// The Theorem 4 additive bound for linear cost functions: given the
/// optimal cost `opt_t` over `[0, T]`, returns the upper bound on the
/// adapted plan's cost.
pub fn theorem4_bound(costs: &[CostModel], opt_t: f64, t: usize, t0: usize) -> f64 {
    let sum_b: f64 = costs
        .iter()
        .map(|c| match c {
            CostModel::Linear { b, .. } => *b,
            _ => panic!("Theorem 4 requires linear cost functions"),
        })
        .sum();
    if t <= t0 {
        opt_t + sum_b
    } else {
        opt_t + (t as f64 / t0 as f64).ceil() * sum_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::optimal_lgm_plan;
    use aivm_core::{Arrivals, CostModel};

    fn instance(horizon: usize) -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 0.5), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), horizon),
            8.0,
        )
    }

    #[test]
    fn adapt_at_t0_reproduces_base_plan_cost() {
        let inst = instance(20);
        let schedule = AdaptSchedule::precompute(&inst);
        let plan = adapt_plan(&schedule, &inst);
        let stats = plan.validate(&inst).expect("valid at T = T0");
        assert!((stats.total_cost - schedule.base_cost).abs() < 1e-9);
    }

    #[test]
    fn adapt_shorter_horizon_within_theorem4_bound() {
        let base = instance(500);
        let schedule = AdaptSchedule::precompute(&base);
        for t in [100usize, 250, 400] {
            let actual = instance(t);
            let plan = adapt_plan(&schedule, &actual);
            let stats = plan.validate(&actual).expect("valid for T < T0");
            let opt = optimal_lgm_plan(&actual); // linear ⇒ OPT^LGM = OPT
            let bound = theorem4_bound(&actual.costs, opt.cost, t, 500);
            assert!(
                stats.total_cost <= bound + 1e-9,
                "T={t}: adapted {} > bound {bound}",
                stats.total_cost
            );
            assert!(stats.total_cost + 1e-9 >= opt.cost);
        }
    }

    #[test]
    fn adapt_longer_horizon_within_theorem4_bound() {
        let base = instance(100);
        let schedule = AdaptSchedule::precompute(&base);
        for t in [150usize, 303, 500] {
            let actual = instance(t);
            let plan = adapt_plan(&schedule, &actual);
            let stats = plan.validate(&actual).expect("valid for T > T0");
            let opt = optimal_lgm_plan(&actual);
            let bound = theorem4_bound(&actual.costs, opt.cost, t, 100);
            assert!(
                stats.total_cost <= bound + 1e-9,
                "T={t}: adapted {} > bound {bound}",
                stats.total_cost
            );
        }
    }

    #[test]
    fn subset_cycles_with_period_t0_plus_one() {
        let inst = instance(10);
        let schedule = AdaptSchedule::precompute(&inst);
        for t in 0..=10 {
            assert_eq!(schedule.subset_at(t), schedule.subset_at(t + 11));
        }
    }

    #[test]
    fn fallback_policy_survives_heavier_arrivals() {
        let base = instance(50);
        let schedule = AdaptSchedule::precompute(&base);
        // Heavier arrivals than predicted: strict replay would violate
        // the budget; the fallback flushes everything instead.
        let heavy = Instance::new(
            base.costs.clone(),
            Arrivals::uniform(Counts::from_slice(&[2, 2]), 50),
            base.budget,
        );
        let mut policy = AdaptPolicy::with_fallback(schedule);
        let (_, stats) =
            crate::policy::run_policy(&heavy, &mut policy).expect("fallback keeps validity");
        assert!(stats.total_cost > 0.0);
    }

    #[test]
    #[should_panic(expected = "linear cost functions")]
    fn theorem4_bound_rejects_nonlinear() {
        theorem4_bound(
            &[CostModel::Step {
                block: 2,
                cost_per_block: 1.0,
            }],
            10.0,
            5,
            5,
        );
    }
}
