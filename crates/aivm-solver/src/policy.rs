//! Runtime maintenance policies and the policy runner.
//!
//! A [`Policy`] decides, step by step, which pending modifications to
//! flush. Unlike precomputed [`Plan`](aivm_core::Plan)s, policies see
//! only the past: the current time, the pre-action state, and whatever
//! they have recorded. This is the execution model of the paper's ONLINE
//! algorithm (§4.3) and of ADAPT (§4.2); NAIVE fits trivially.
//!
//! [`run_policy`] drives a policy over an instance's arrival sequence and
//! returns the realized plan, so every policy can be validated and costed
//! with the same machinery as precomputed plans.

use aivm_core::{Counts, Instance, Plan, PlanError, PlanStats};

/// What a policy is allowed to know about the problem *a priori*: the
/// cost functions and the budget, but not the arrival sequence or the
/// refresh time.
#[derive(Clone, Debug)]
pub struct PolicyContext {
    /// Per-table cost functions.
    pub costs: Vec<aivm_core::CostModel>,
    /// The response-time budget `C`.
    pub budget: f64,
}

impl PolicyContext {
    /// Extracts the policy-visible part of an instance.
    pub fn of(inst: &Instance) -> Self {
        PolicyContext {
            costs: inst.costs.clone(),
            budget: inst.budget,
        }
    }

    /// Number of base tables.
    pub fn n(&self) -> usize {
        self.costs.len()
    }

    /// Aggregate refresh cost of a state under the known cost functions.
    pub fn refresh_cost(&self, v: &Counts) -> f64 {
        aivm_core::total_cost(&self.costs, v)
    }

    /// Whether a state busts the budget.
    pub fn is_full(&self, v: &Counts) -> bool {
        !aivm_core::fits(self.refresh_cost(v), self.budget)
    }
}

/// A step-by-step maintenance decision procedure.
pub trait Policy {
    /// Called once before a run; resets internal state.
    fn reset(&mut self, ctx: &PolicyContext);

    /// Called at every time step *after* the step's arrivals have been
    /// appended. `pre_state` is the pre-action state `s_t`. Returns the
    /// action `p_t` (may be zero). The runner separately forces a
    /// flush-everything action at the refresh time `T`, so policies never
    /// see `t = T` — they only guarantee the budget for `t < T`.
    fn act(&mut self, t: usize, pre_state: &Counts) -> Counts;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

/// Drives `policy` over the instance's arrivals, forcing the final flush
/// at `T`, and validates the realized plan.
///
/// Returns the realized plan and its statistics, or the validation error
/// if the policy produced an invalid action (overdraw or budget
/// violation).
pub fn run_policy(
    inst: &Instance,
    policy: &mut dyn Policy,
) -> Result<(Plan, PlanStats), PlanError> {
    let ctx = PolicyContext::of(inst);
    policy.reset(&ctx);
    let horizon = inst.horizon();
    let mut actions = Vec::with_capacity(horizon + 1);
    let mut s = Counts::zero(inst.n());
    for t in 0..=horizon {
        s.add_assign(&inst.arrivals.at(t));
        let p = if t == horizon {
            s.clone() // forced refresh at T
        } else {
            policy.act(t, &s)
        };
        match s.checked_sub(&p) {
            Some(post) => s = post,
            None => {
                let table = (0..inst.n()).find(|&i| p[i] > s[i]).unwrap_or(0);
                return Err(PlanError::Overdraw { t, table });
            }
        }
        actions.push(p);
    }
    let plan = Plan { actions };
    let stats = plan.validate(inst)?;
    Ok((plan, stats))
}

/// The NAIVE symmetric policy (§1/§5): flush everything whenever the
/// pre-action state is full.
#[derive(Clone, Debug, Default)]
pub struct NaivePolicy {
    ctx: Option<PolicyContext>,
}

impl NaivePolicy {
    /// Creates a NAIVE policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Policy for NaivePolicy {
    fn reset(&mut self, ctx: &PolicyContext) {
        self.ctx = Some(ctx.clone());
    }

    fn act(&mut self, _t: usize, pre_state: &Counts) -> Counts {
        let ctx = self.ctx.as_ref().expect("reset before act");
        if ctx.is_full(pre_state) {
            pre_state.clone()
        } else {
            Counts::zero(pre_state.len())
        }
    }

    fn name(&self) -> &str {
        "NAIVE"
    }
}

/// A policy that replays a precomputed plan's *flush subsets*: at each
/// step where the plan flushed a set of tables, flush whatever is
/// currently pending on those tables. On the plan's own instance this
/// reproduces the plan exactly; under perturbed arrivals it is the
/// natural greedy replay.
#[derive(Clone, Debug)]
pub struct ReplayPolicy {
    name: String,
    /// For each time step, the set of tables the plan flushed.
    schedule: Vec<Vec<usize>>,
}

impl ReplayPolicy {
    /// Builds a replay policy from a plan.
    pub fn from_plan(name: impl Into<String>, plan: &Plan) -> Self {
        let schedule = plan.actions.iter().map(|p| p.support()).collect();
        ReplayPolicy {
            name: name.into(),
            schedule,
        }
    }
}

impl Policy for ReplayPolicy {
    fn reset(&mut self, _ctx: &PolicyContext) {}

    fn act(&mut self, t: usize, pre_state: &Counts) -> Counts {
        let mut p = Counts::zero(pre_state.len());
        if let Some(tables) = self.schedule.get(t) {
            for &i in tables {
                p[i] = pre_state[i];
            }
        }
        p
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::optimal_lgm_plan;
    use aivm_core::{naive_plan, Arrivals, CostModel};

    fn inst() -> Instance {
        Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 11),
            8.0,
        )
    }

    #[test]
    fn naive_policy_reproduces_naive_plan() {
        let inst = inst();
        let mut policy = NaivePolicy::new();
        let (plan, stats) = run_policy(&inst, &mut policy).expect("valid");
        let reference = naive_plan(&inst);
        assert_eq!(plan, reference);
        assert!((stats.total_cost - reference.validate(&inst).unwrap().total_cost).abs() < 1e-9);
    }

    #[test]
    fn replay_of_astar_plan_reproduces_it() {
        let inst = inst();
        let sol = optimal_lgm_plan(&inst);
        let mut policy = ReplayPolicy::from_plan("replay", &sol.plan);
        let (plan, stats) = run_policy(&inst, &mut policy).expect("valid");
        assert_eq!(plan, sol.plan);
        assert!((stats.total_cost - sol.cost).abs() < 1e-9);
    }

    #[test]
    fn replay_under_heavier_arrivals_can_fail_validation() {
        let inst = inst();
        let sol = optimal_lgm_plan(&inst);
        // Triple the arrivals; the replayed subsets no longer keep the
        // budget, and run_policy reports it instead of silently passing.
        let heavy = Instance::new(
            inst.costs.clone(),
            Arrivals::uniform(Counts::from_slice(&[3, 3]), 11),
            inst.budget,
        );
        let mut policy = ReplayPolicy::from_plan("replay", &sol.plan);
        match run_policy(&heavy, &mut policy) {
            Err(PlanError::BudgetViolated { .. }) => {}
            other => panic!("expected budget violation, got {other:?}"),
        }
    }

    #[test]
    fn runner_forces_final_flush() {
        // A do-nothing policy is valid when nothing ever fills up,
        // because the runner flushes everything at T.
        #[derive(Default)]
        struct Idle;
        impl Policy for Idle {
            fn reset(&mut self, _ctx: &PolicyContext) {}
            fn act(&mut self, _t: usize, s: &Counts) -> Counts {
                Counts::zero(s.len())
            }
            fn name(&self) -> &str {
                "IDLE"
            }
        }
        let small = Instance::new(
            vec![CostModel::linear(1.0, 0.0)],
            Arrivals::uniform(Counts::from_slice(&[1]), 3),
            100.0,
        );
        let (plan, stats) = run_policy(&small, &mut Idle).expect("valid");
        assert_eq!(stats.action_count, 1);
        assert_eq!(plan.actions[3], Counts::from_slice(&[4]));
    }
}
