//! Plan search and runtime policies for asymmetric batch incremental
//! view maintenance (He, Xie, Yang, Yu — ICDE 2005, §4).
//!
//! Four ways to decide *when to flush which delta table*:
//!
//! * [`astar`] — the optimal LGM plan via A\* over the plan graph, with
//!   the paper's consistent heuristic (§4.1). Needs full knowledge of the
//!   arrival sequence and the refresh time.
//! * [`adapt`] — ADAPT (§4.2): run a plan optimized for an estimated
//!   refresh time `T_0` at any actual refresh time, with Theorem 4's
//!   additive bounds for linear costs.
//! * [`online`] — the ONLINE heuristic (§4.3): no future knowledge,
//!   minimizes amortized cost with a `TimeToFull` rate predictor.
//! * [`lookahead`] — receding-horizon control (extension): plan a
//!   predicted window optimally, execute one action, repeat.
//! * [`policy::NaivePolicy`] — the symmetric flush-everything baseline.
//!
//! [`exhaustive`] provides a ground-truth optimal solver (all lazy plans,
//! arbitrary actions) for small instances, used to verify Theorems 1
//! and 2 empirically. [`actions`] holds the shared enumeration of
//! greedy/minimal/valid flush sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod adapt;
pub mod astar;
pub mod exhaustive;
pub mod lookahead;
pub mod online;
pub mod policy;

pub use actions::{minimal_greedy_actions, valid_greedy_actions};
pub use adapt::{adapt_plan, theorem4_bound, AdaptPolicy, AdaptSchedule};
pub use astar::{
    optimal_lgm_plan, optimal_lgm_plan_dijkstra, optimal_lgm_plan_with, HeuristicMode, SearchStats,
    Solution,
};
pub use exhaustive::optimal_plan;
pub use lookahead::{LookaheadConfig, LookaheadPolicy};
pub use online::{CandidateSet, OnlineConfig, OnlinePolicy, RateEstimator};
pub use policy::{run_policy, NaivePolicy, Policy, PolicyContext, ReplayPolicy};
