//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this in-repo crate
//! provides the exact API subset the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The generator is xoshiro256\*\* seeded
//! via SplitMix64 — deterministic for a given seed, statistically solid
//! for simulation workloads, **not** cryptographically secure (neither
//! is the real `StdRng` guaranteed stable across rand versions, so seeds
//! here define this repository's own reproducibility baseline).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a half-open or inclusive
/// range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Argument of [`Rng::gen_range`]: both `a..b` and `a..=b` are accepted,
/// mirroring the real crate's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits → uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! impl_sample_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(rng, span) as $ty)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $ty)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw from `[0, span)` via rejection sampling on the
/// top of the 128-bit multiply (Lemire's method).
fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 0 {
        return 0;
    }
    // span always fits in u64 + 1 here (integer ranges over 64-bit types).
    let span64 = span as u64;
    if span64 == 0 {
        // span == 2^64: the raw draw is already uniform.
        return rng.next_u64() as u128;
    }
    let threshold = span64.wrapping_neg() % span64;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span64 as u128);
        if (m as u64) >= threshold {
            return m >> 64;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range called with empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* (Blackman & Vigna), seeded through SplitMix64. The
    /// workspace's deterministic simulation generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same generator under the real crate's small-RNG name.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state;
            // guarantees a non-zero state for every seed.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17i64);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
            let f = r.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn extreme_probabilities() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn small_int_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
