//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] trait
//! subset the snapshot codec uses, backed by a plain `Vec<u8>` with a
//! read cursor instead of reference-counted slices. Semantics match the
//! real crate for every operation exercised here; cheap zero-copy
//! sharing is not reproduced (snapshots are cloned on `slice`).

use std::ops::{Deref, DerefMut, Range};

/// An immutable byte buffer with a consuming read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

/// A growable byte buffer for writing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

/// Read access with a consuming cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `n` raw bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_bytes(2).try_into().unwrap())
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
    /// Copies exactly `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take_bytes(dst.len()));
    }
}

/// Write access.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Bytes already consumed from the front — the read cursor's
    /// absolute position within the buffer this `Bytes` was created
    /// over. Decoders use it to report the byte offset of corruption.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// True when nothing is left to read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer over the given sub-range of the unread bytes.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Reads the next `n` bytes as a new `Bytes`.
    pub fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes {
            data: self.take_bytes(n).to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.remaining(), "buffer underflow");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-5);
        w.put_f64_le(2.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_copy_to_bytes() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let mut b2 = b.clone();
        let head = b2.copy_to_bytes(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(b2.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(b"x");
        let _ = b.get_u32_le();
    }

    #[test]
    fn bytesmut_is_indexable() {
        let mut w = BytesMut::from(&b"hello"[..]);
        w[0] = b'H';
        assert_eq!(&*w, b"Hello");
    }
}
