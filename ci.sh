#!/usr/bin/env bash
# Local CI gate: formatting, lints, tier-1 tests, and a smoke repro run.
#
#   ./ci.sh          # full gate (workspace tests + quick figure sweep)
#   ./ci.sh --fast   # skip the release workspace test pass (lint + tier-1)
#
# Mirrors what a hosted workflow would run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q --release

if [[ $fast -eq 0 ]]; then
  echo "==> workspace tests (release)"
  cargo test -q --release --workspace
fi

echo "==> smoke repro (quick scales, serial)"
cargo build --release -p aivm-bench --bin repro
./target/release/repro --quick --threads 1 intro fig6 bounds >/dev/null

echo "==> smoke repro (quick scales, 4 worker threads)"
./target/release/repro --quick --threads 4 fig6 fig7 >/dev/null

echo "==> serve runtime gate (violations or replay mismatch fail the run)"
cargo build --release -p aivm-serve
cargo test -q --release -p aivm-serve
for policy in naive online planned; do
  echo "    serve --policy $policy"
  ./target/release/repro serve --quick --policy "$policy" --duration 5s >/dev/null
done

echo "==> degradation smoke (injected policy panic must demote, zero violations)"
./target/release/repro serve --quick --policy planned --duration 5s \
  --inject-policy-panic 5 >/dev/null

echo "==> chaos gate (crash/recover equivalence at sampled kill indices)"
./target/release/repro chaos --seeds 8 --events 2000 >/dev/null

echo "==> net gate (wire codec + client tests, then a 5s loadgen smoke over TCP)"
cargo test -q --release -p aivm-net -p aivm-client
# Exits nonzero on any budget violation, protocol error, or a sustained
# throughput below the 50k events/s floor; appends BENCH_net.json.
AIVM_BENCH_LABEL=ci ./target/release/repro loadgen --quick --duration 5s \
  --min-throughput 50000 >/dev/null

echo "==> snapshot read gate (read-heavy Stale mix served wait-free from snapshots)"
# Fails on any Fresh budget violation, a reads/s rate below the floor, or
# a stale-read p99 above the ceiling; appends BENCH_net.json with the
# read mix, read latencies, and flush thread count.
AIVM_BENCH_LABEL=ci ./target/release/repro loadgen --quick --duration 5s \
  --mix read-heavy --read-mode stale --min-reads 5000 --max-stale-p99-ms 20 >/dev/null

echo "==> high-concurrency gate (1000 closed-loop clients over the event loop)"
# The event-loop server multiplexes 1000 connections over its fixed
# worker pool; the floor is well above the ~130k/s thread-per-connection
# plateau's *headroom* at this client count (typical: 105-145k ev/s).
# Any Fresh budget violation or protocol error also fails the run.
AIVM_BENCH_LABEL=ci ./target/release/repro loadgen --quick --duration 5s \
  --events 100000 --clients 1000 --min-throughput 80000 >/dev/null

echo "==> snapshot consistency + columnar/flush equivalence (release)"
# Property tests: concurrent snapshot reads only ever observe processed-
# prefix checksums; flushes at widths 1/2/4/8 are bit-identical; the
# columnar pending-delta layout matches the row-layout oracle; decoded
# Submit frames allocate nothing.
cargo test -q --release --test snapshot_consistency
cargo test -q --release --test columnar_delta
cargo test -q --release -p aivm-net --test zero_alloc

echo "==> shard gate (equivalence at widths 1/2/4/8, sharded loadgen, kill-one-shard)"
# Property tests: a key-partitioned ShardedRuntime is bit-identical to a
# single runtime at widths 1/2/4/8 under randomized partial flushes, and
# mis-keyed partitioners fail co-location validation.
cargo test -q --release --test shard_equivalence
# 4-shard serving over TCP: hashed submits, scatter-gather reads,
# per-shard budgets C/4, cost-proportional rebalancing. Fails on any
# budget violation, protocol error, or throughput under the floor.
AIVM_BENCH_LABEL=ci ./target/release/repro loadgen --quick --duration 5s \
  --shards 4 --min-throughput 40000 >/dev/null
# Kill one of three shards mid-stream over the wire: typed
# ShardUnavailable rejections, degraded reads, WAL recovery + rejoin,
# merged checksum equal to direct evaluation.
./target/release/repro chaos --seeds 2 --events 1000 --shards 3 >/dev/null

echo "==> failover gate (kill-the-leader, WAL tail-streamed follower promotion)"
# Kill shard 0's leader at a sampled WAL boundary, direct and through
# the deterministic fault proxy: zero acked-write loss, StaleEpoch
# fencing of the deposed lineage, follower staleness <= C + replication
# lag, merged checksum equal to direct evaluation. Timeboxed so a hung
# promotion fails the gate instead of wedging CI.
timeout 120 ./target/release/repro chaos --seeds 2 --events 1000 \
  --shards 2 --replicas --kill-leader >/dev/null
# Failover under live closed-loop load: --kill-leader murders a leader
# mid-run; the gate requires >= 1 promotion and every shard live at exit.
AIVM_BENCH_LABEL=ci timeout 120 ./target/release/repro loadgen --quick \
  --duration 5s --shards 2 --replicas --kill-leader >/dev/null

echo "==> multi-view registry gate (shared propagation + push subscriptions)"
# Property tests over real sockets: the registry is bit-identical to N
# independent single-view servers on the same stream; a subscriber
# killed and resumed at every seq folds each batch exactly once with no
# gap or duplicate; off-ring and never-draining subscribers degrade to
# snapshot resync without stalling the flush path.
cargo test -q --release -p aivm-net --test multiview_equivalence --test subscription_resume
# Engine-level head-to-head: one registry serving 32 views must beat 32
# independent runtimes, bit-identical checksums, zero violations.
AIVM_BENCH_LABEL=ci ./target/release/repro --quick multiview --views 32 >/dev/null
# One base-delta stream fanning to 32 registered views and 64 live push
# subscribers over TCP: every folded delta checksum-verified, zero
# per-view staleness violations, events/s floor enforced. Timeboxed.
AIVM_BENCH_LABEL=ci timeout 120 ./target/release/repro loadgen --quick \
  --duration 5s --views 32 --subscribers 64 --min-throughput 20000 >/dev/null

echo "==> skew gate (heavy-light equivalence + zipfian skewsweep smoke)"
# Property tests: heavy-light partitioned maintenance is bit-identical
# to the unpartitioned engine across random promotion thresholds, flush
# widths 1/2/4/8, mid-stream reclassification points, and WAL
# recovery-replay.
cargo test -q --release --test heavy_light_equivalence
# Quick zipfian sweep over PartSupp ⋈ Supplier: paired plain/heavy runs
# must agree bit-for-bit at every skew, with zero freshness violations,
# zero scan fallbacks, heavy p99 within a fixed resilience factor of
# the uniform baseline, and a p99 win at the top skew. Timeboxed so a
# wedged classifier fails the gate instead of hanging CI.
AIVM_BENCH_LABEL=ci timeout 180 ./target/release/repro --quick skewsweep >/dev/null

echo "==> serve throughput baseline (BENCH_serve.json)"
AIVM_BENCH_FAST=1 AIVM_BENCH_LABEL=ci cargo bench -p aivm-bench --bench serve >/dev/null

echo "CI gate passed."
