//! **aivm** — asymmetric batch incremental view maintenance.
//!
//! A Rust reproduction of He, Xie, Yang and Yu, *Asymmetric Batch
//! Incremental View Maintenance* (ICDE 2005): maintaining a materialized
//! view under a refresh response-time constraint by *selectively*
//! flushing some base tables' pending modifications while batching
//! others, exploiting asymmetries in per-table maintenance costs.
//!
//! # Quickstart
//!
//! ```
//! use aivm::core::{Arrivals, CostModel, Counts, Instance, naive_plan};
//! use aivm::solver::optimal_lgm_plan;
//!
//! // Two base tables: R0 is probe-cheap (tiny setup), R1 pays a scan
//! // per batch (big setup). One modification each per time step.
//! let inst = Instance::new(
//!     vec![CostModel::linear(0.06, 0.2), CostModel::linear(0.005, 7.0)],
//!     Arrivals::uniform(Counts::from_slice(&[1, 1]), 500),
//!     12.0, // refresh must never cost more than 12 units
//! );
//!
//! let naive = naive_plan(&inst).validate(&inst).unwrap().total_cost;
//! let opt = optimal_lgm_plan(&inst);
//! assert!(opt.cost < naive, "asymmetric batching beats flush-everything");
//! ```
//!
//! # Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | problem model: cost functions, states, plans, validity, the LGM transformations (Lemma 1, Theorem 1), the §3.2 tightness instance |
//! | [`solver`] | A\* optimal LGM search (§4.1), ADAPT (§4.2), ONLINE (§4.3), NAIVE, exhaustive ground truth |
//! | [`engine`] | in-memory relational engine: tables, hash/B-tree indexes, Z-set executor, SQL subset, state-bug-safe IVM, cost estimation & measurement |
//! | [`tpcr`] | deterministic TPC-R-style generator + the paper's evaluation view and update stream |
//! | [`workload`] | arrival-sequence generators (uniform, the paper's truncated-normal streams, bursty) |
//! | [`sim`] | counts-only simulator, engine-backed actual execution, experiment drivers for every paper figure, trace replay |
//! | [`serve`] | live streaming maintenance runtime: bounded-queue ingest, pluggable flush policies, stale/fresh reads, metrics, trace recording |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record; the `repro` binary (in `aivm-bench`)
//! regenerates every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Problem model (re-export of `aivm-core`).
pub use aivm_core as core;
/// Relational engine with IVM (re-export of `aivm-engine`).
pub use aivm_engine as engine;
/// Live serving runtime (re-export of `aivm-serve`).
pub use aivm_serve as serve;
/// Simulator and experiment drivers (re-export of `aivm-sim`).
pub use aivm_sim as sim;
/// Plan search and policies (re-export of `aivm-solver`).
pub use aivm_solver as solver;
/// TPC-R-style generator (re-export of `aivm-tpcr`).
pub use aivm_tpcr as tpcr;
/// Arrival-sequence generators (re-export of `aivm-workload`).
pub use aivm_workload as workload;

/// The most commonly used items in one import.
pub mod prelude {
    pub use aivm_core::{
        fits, make_lazy_plan, make_lgm_plan, naive_plan, Arrivals, CostFn, CostModel, Counts,
        Instance, Plan, PlanError, PlanStats,
    };
    pub use aivm_engine::{
        Database, EngineError, MaterializedView, MinStrategy, Modification, Row, Schema, Value,
    };
    pub use aivm_solver::{
        adapt_plan, optimal_lgm_plan, run_policy, AdaptPolicy, AdaptSchedule, NaivePolicy,
        OnlinePolicy, Policy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let inst = Instance::new(
            vec![CostModel::linear(1.0, 0.0), CostModel::linear(1.0, 4.0)],
            Arrivals::uniform(Counts::from_slice(&[1, 1]), 11),
            8.0,
        );
        let sol = optimal_lgm_plan(&inst);
        assert!(sol.plan.validate(&inst).is_ok());
        let naive = naive_plan(&inst).validate(&inst).unwrap().total_cost;
        assert!(sol.cost <= naive);
    }
}
